//! Parity of the histogram (binned) split-finding path against the exact
//! sorted-scan reference (proptest): on low-cardinality data — where the
//! bin budget covers every distinct value — binned training must be
//! **bit-identical** to exact training; on continuous data the two
//! forests must agree within a tolerance on the training task. Plus unit
//! checks of the bin-edge construction and the sibling-subtraction
//! identity the per-node histograms rely on.

use learners::binned::{accumulate_class, accumulate_reg, subtract_class, subtract_reg};
use learners::{
    BinnedColumn, BinnedDataset, ForestConfig, RandomForestClassifier, SplitMethod, TreeConfig,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn forest_config(split: SplitMethod, seed: u64) -> ForestConfig {
    // No bootstrap: every predicted row is then a training row, whose
    // path through the tree is pinned by the identical train partitions.
    // (With bootstrap, an out-of-bag row may legitimately fall between an
    // exact node-local midpoint and the corresponding global bin
    // boundary and land on different sides.)
    ForestConfig {
        n_trees: 5,
        tree: TreeConfig {
            max_depth: 6,
            split,
            ..TreeConfig::default()
        },
        bootstrap: false,
        seed,
        ..ForestConfig::default()
    }
}

/// Column-major matrix with `n_features` columns; values drawn by `gen`.
fn matrix(
    rng: &mut StdRng,
    n_rows: usize,
    n_features: usize,
    mut gen: impl FnMut(&mut StdRng) -> f64,
) -> Vec<Vec<f64>> {
    (0..n_features)
        .map(|_| (0..n_rows).map(|_| gen(rng)).collect())
        .collect()
}

/// A learnable label: does the first feature pair sum above its median?
fn threshold_labels(x: &[Vec<f64>]) -> Vec<usize> {
    let sums: Vec<f64> = (0..x[0].len()).map(|r| x[0][r] + x[1][r]).collect();
    let mut sorted = sums.clone();
    sorted.sort_by(f64::total_cmp);
    let median = sorted[sorted.len() / 2];
    sums.iter().map(|&s| usize::from(s > median)).collect()
}

fn train_accuracy(f: &RandomForestClassifier, x: &[Vec<f64>], y: &[usize]) -> f64 {
    let pred = f.predict(x).expect("predict");
    let hits = pred.iter().zip(y).filter(|(p, t)| p == t).count();
    hits as f64 / y.len() as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// With ≤ 12 distinct values per column and the default 256-bin
    /// budget, every distinct value gets its own bin, so the histogram
    /// scan enumerates exactly the boundaries the sorted scan does:
    /// the two forests must be the same tree ensemble, bit for bit.
    #[test]
    fn hist_forest_bit_identical_on_low_cardinality_data(
        seed in 0u64..1_000_000,
        n_rows in 50usize..120,
        n_features in 3usize..7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = matrix(&mut rng, n_rows, n_features, |r| r.gen_range(0..12) as f64);
        let y = threshold_labels(&x);

        let mut exact = RandomForestClassifier::new(forest_config(SplitMethod::Exact, seed));
        exact.fit(&x, &y, 2).expect("exact fit");
        let mut hist = RandomForestClassifier::new(forest_config(SplitMethod::Histogram, seed));
        hist.fit(&x, &y, 2).expect("hist fit");

        let (pe, ph) = (exact.predict(&x).unwrap(), hist.predict(&x).unwrap());
        prop_assert_eq!(pe, ph);
        let (ie, ih) = (
            exact.feature_importances().unwrap(),
            hist.feature_importances().unwrap(),
        );
        prop_assert_eq!(ie.len(), ih.len());
        for (a, b) in ie.iter().zip(&ih) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "importances differ: {} vs {}", a, b);
        }
    }

    /// On continuous data the bin boundaries quantise split thresholds,
    /// so the ensembles differ — but both must learn the same easy
    /// threshold concept to comparable training accuracy.
    #[test]
    fn hist_forest_within_tolerance_on_continuous_data(
        seed in 0u64..1_000_000,
        n_rows in 60usize..140,
        n_features in 3usize..7,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = matrix(&mut rng, n_rows, n_features, |r| r.gen_range(-3.0f64..3.0));
        let y = threshold_labels(&x);

        let mut exact = RandomForestClassifier::new(forest_config(SplitMethod::Exact, seed));
        exact.fit(&x, &y, 2).expect("exact fit");
        let mut hist = RandomForestClassifier::new(forest_config(SplitMethod::Histogram, seed));
        hist.fit(&x, &y, 2).expect("hist fit");

        let (acc_e, acc_h) = (train_accuracy(&exact, &x, &y), train_accuracy(&hist, &x, &y));
        prop_assert!(
            (acc_e - acc_h).abs() <= 0.15,
            "train accuracy diverged: exact {} vs hist {}",
            acc_e,
            acc_h
        );
    }

    /// Sibling subtraction is exact: for any parent row set and any
    /// left/right split of it, `parent − left == right` on both the
    /// class-count and the regression-sum histograms.
    #[test]
    fn sibling_subtraction_identity(
        seed in 0u64..1_000_000,
        n_rows in 20usize..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let values: Vec<f64> = (0..n_rows).map(|_| rng.gen_range(-5.0f64..5.0)).collect();
        let col = BinnedColumn::build(&values, 16);
        let rows: Vec<usize> = (0..n_rows).collect();
        let cut = rng.gen_range(0..=n_rows);
        let (left, right) = rows.split_at(cut);

        let yc: Vec<usize> = (0..n_rows).map(|_| rng.gen_range(0..3)).collect();
        let (mut hp, mut hl, mut hr) = (Vec::new(), Vec::new(), Vec::new());
        accumulate_class(&col, &rows, &yc, 3, &mut hp);
        accumulate_class(&col, left, &yc, 3, &mut hl);
        accumulate_class(&col, right, &yc, 3, &mut hr);
        prop_assert_eq!(subtract_class(&hp, &hl), hr);

        let yr: Vec<f64> = (0..n_rows).map(|_| rng.gen_range(-1.0f64..1.0)).collect();
        let (mut gp, mut gl, mut gr) = (Vec::new(), Vec::new(), Vec::new());
        accumulate_reg(&col, &rows, &yr, &mut gp);
        accumulate_reg(&col, left, &yr, &mut gl);
        accumulate_reg(&col, right, &yr, &mut gr);
        let sub = subtract_reg(&gp, &gl);
        prop_assert_eq!(sub.len(), gr.len());
        for (s, r) in sub.iter().zip(&gr) {
            prop_assert_eq!(s.n, r.n);
            // Sums come out of a subtraction, not a re-accumulation, so
            // compare to the float tolerance the scan itself tolerates.
            prop_assert!((s.sum - r.sum).abs() <= 1e-9 * (1.0 + r.sum.abs()));
            prop_assert!((s.sumsq - r.sumsq).abs() <= 1e-9 * (1.0 + r.sumsq.abs()));
        }
    }

    /// Bin-edge invariant on arbitrary finite columns: codes are
    /// monotone in the value, and `v <= threshold(b) ⇔ code(v) <= b`
    /// for every (value, boundary) pair — the property the histogram
    /// scan needs for its thresholds to mean what the tree thinks.
    #[test]
    fn bin_codes_respect_thresholds(
        values in prop::collection::vec(-100.0f64..100.0, 2..200),
        max_bins in 2usize..32,
    ) {
        let col = BinnedColumn::build(&values, max_bins);
        prop_assert!(col.n_bins() >= 1 && col.n_bins() <= max_bins);
        for (row, &v) in values.iter().enumerate() {
            let code = col.codes().get(row);
            prop_assert!(code < col.n_bins());
            for b in 0..col.n_bins() - 1 {
                prop_assert_eq!(
                    v <= col.threshold(b),
                    code <= b,
                    "value {} code {} disagrees with threshold({}) = {}",
                    v, code, b, col.threshold(b)
                );
            }
        }
    }
}

#[test]
fn constant_column_gets_single_bin() {
    let col = BinnedColumn::build(&[7.5; 40], 256);
    assert_eq!(col.n_bins(), 1);
    assert!((0..40).all(|r| col.codes().get(r) == 0));
}

#[test]
fn duplicate_heavy_column_stays_within_budget_with_distinct_codes() {
    // 1000 rows, 5 distinct values: one bin per distinct value, and
    // equal values always share a code.
    let values: Vec<f64> = (0..1000).map(|i| (i % 5) as f64).collect();
    let col = BinnedColumn::build(&values, 8);
    assert_eq!(col.n_bins(), 5);
    for (i, &v) in values.iter().enumerate() {
        assert_eq!(col.codes().get(i), v as usize);
    }
}

#[test]
fn binned_dataset_rejects_ragged_matrix() {
    let x = vec![vec![1.0, 2.0, 3.0], vec![1.0, 2.0]];
    assert!(BinnedDataset::build(&x, 16).is_err());
}
