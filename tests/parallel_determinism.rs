//! Determinism of the shared parallel evaluation runtime: a fixed-seed
//! E-AFE / NFS run must produce **bit-identical** scores whether the
//! runtime executes on one thread or many, and whether the score cache is
//! private or shared. The runtime guarantees this by deriving every
//! task's RNG seed from (root seed, stream, task index) instead of from
//! thread identity or scheduling order, and by returning `WorkerPool`
//! results in submission order.
//!
//! `runtime::set_global_threads` is process-global, so the single- vs
//! multi-threaded comparisons run sequentially inside one `#[test]` per
//! scenario rather than as separate tests.

use std::sync::Arc;

use eafe::{bootstrap_fpe, EafeConfig, Engine, FpeSearchSpace, RunResult};
use minhash::HashFamily;
use runtime::ScoreCache;
use tabular::{DataFrame, SynthSpec, Task};

fn fast_config() -> EafeConfig {
    let mut cfg = EafeConfig::fast();
    cfg.stage1_epochs = 2;
    cfg.stage2_epochs = 3;
    cfg.steps_per_epoch = 3;
    cfg
}

fn frame() -> DataFrame {
    SynthSpec::new("par-det", 180, 5, Task::Classification)
        .with_seed(41)
        .generate()
        .unwrap()
}

fn fpe() -> eafe::FpeModel {
    let cfg = fast_config();
    let space = FpeSearchSpace {
        families: vec![HashFamily::Ccws],
        dims: vec![16],
        thre: 0.01,
        seed: 9,
    };
    bootstrap_fpe(4, 2, &space, &cfg.evaluator, 9).expect("FPE bootstrap")
}

/// Exact equality on everything score-bearing: seeds are fixed, so the
/// parallel schedule must not leak into any reported number.
fn assert_bit_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(
        a.base_score.to_bits(),
        b.base_score.to_bits(),
        "{what}: base"
    );
    assert_eq!(
        a.best_score.to_bits(),
        b.best_score.to_bits(),
        "{what}: best"
    );
    assert_eq!(a.downstream_evals, b.downstream_evals, "{what}: evals");
    assert_eq!(
        a.generated_features, b.generated_features,
        "{what}: generated"
    );
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
    for (x, y) in a.trace.iter().zip(&b.trace) {
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "{what}: trace score");
    }
}

#[test]
fn nfs_scores_identical_across_thread_counts() {
    let frame = frame();
    runtime::set_global_threads(1);
    let single = Engine::nfs(fast_config()).run(&frame).unwrap();
    runtime::set_global_threads(4);
    let multi = Engine::nfs(fast_config()).run(&frame).unwrap();
    runtime::set_global_threads(0);
    assert_bit_identical(&single, &multi, "NFS 1-vs-4 threads");
}

#[test]
fn e_afe_scores_identical_across_thread_counts() {
    let frame = frame();
    let fpe = fpe();
    runtime::set_global_threads(1);
    let single = Engine::e_afe(fast_config(), fpe.clone())
        .run(&frame)
        .unwrap();
    runtime::set_global_threads(4);
    let multi = Engine::e_afe(fast_config(), fpe).run(&frame).unwrap();
    runtime::set_global_threads(0);
    assert_bit_identical(&single, &multi, "E-AFE 1-vs-4 threads");
}

#[test]
fn fpe_gated_engine_identical_with_warm_signature_cache() {
    // The FPE gate now sketches through the table-driven kernels and the
    // process-wide signature cache. Two invariants: (1) a warm-cache
    // 4-thread re-run of the fixed-seed FPE-gated engine is bit-identical
    // to the cold 1-thread run, and (2) the re-run re-sketches nothing —
    // every column of the identical run is already cached, so the sketch
    // path contributes zero cache misses (mirroring the PR-1 score-cache
    // zero-miss rerun test).
    let frame = frame();
    let fpe = fpe();
    runtime::set_global_threads(1);
    let cold = Engine::e_afe(fast_config(), fpe.clone())
        .run(&frame)
        .unwrap();
    let before = runtime::sig_cache_stats();
    runtime::set_global_threads(4);
    let warm = Engine::e_afe(fast_config(), fpe).run(&frame).unwrap();
    runtime::set_global_threads(0);
    let after = runtime::sig_cache_stats();
    assert_bit_identical(&cold, &warm, "E-AFE warm-sig-cache 1-vs-4 threads");
    // Note: the sig cache is process-global and other tests in this binary
    // sketch the *same* fixed-seed columns, so concurrent tests can only
    // add hits here, not misses.
    assert_eq!(
        after.misses, before.misses,
        "warm re-run must serve every sketch from the signature cache"
    );
    assert!(
        after.hits > before.hits,
        "warm re-run should actually exercise the signature cache"
    );
}

#[test]
fn binned_forest_identical_across_thread_counts() {
    // The histogram (binned) training path must be as schedule-oblivious
    // as the exact path: per-tree seeds and bootstrap draws are fixed up
    // front and the pool returns trees in submission order, so a 1-thread
    // and a 4-thread fit of the same forest are the same ensemble —
    // checked at both the raw-forest and the CV-evaluator level.
    use learners::{Evaluator, ForestConfig, RandomForestClassifier, SplitMethod};

    let frame = frame();
    let x = learners::feature_matrix(&frame);
    let y = frame.label().classes().unwrap().to_vec();
    let n_classes = frame.label().n_classes();

    let cfg = ForestConfig {
        n_trees: 12,
        tree: learners::TreeConfig {
            split: SplitMethod::Histogram,
            ..learners::TreeConfig::default()
        },
        seed: 17,
        ..ForestConfig::default()
    };
    let mut evaluator = Evaluator::default();
    evaluator.forest.tree.split = SplitMethod::Histogram;

    runtime::set_global_threads(1);
    let mut single = RandomForestClassifier::new(cfg);
    single.fit(&x, &y, n_classes).unwrap();
    let score_single = evaluator.evaluate(&frame).unwrap();
    runtime::set_global_threads(4);
    let mut multi = RandomForestClassifier::new(cfg);
    multi.fit(&x, &y, n_classes).unwrap();
    let score_multi = evaluator.evaluate(&frame).unwrap();
    runtime::set_global_threads(0);

    assert_eq!(single.predict(&x).unwrap(), multi.predict(&x).unwrap());
    for (a, b) in single
        .feature_importances()
        .unwrap()
        .iter()
        .zip(&multi.feature_importances().unwrap())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "binned importances: {a} vs {b}");
    }
    assert_eq!(
        score_single.to_bits(),
        score_multi.to_bits(),
        "binned CV score 1-vs-4 threads: {score_single} vs {score_multi}"
    );
}

#[test]
fn feature_parallel_histograms_identical_across_thread_counts() {
    // The feature-parallel histogram batch (one worker-pool task per
    // feature, merged in fixed feature-index order — DESIGN.md §13) must
    // be invisible: the 4-thread batch, the 1-thread batch, and a plain
    // per-column serial accumulation are all bitwise the same histograms.
    // 8 features × 12k rows clears HIST_PARALLEL_GRAIN, so the 4-thread
    // run genuinely fans out.
    use learners::binned::{
        accumulate_class, accumulate_class_parallel, accumulate_reg, accumulate_reg_parallel,
        HIST_PARALLEL_GRAIN,
    };
    use learners::BinnedColumn;

    let n_rows = 12_000usize;
    let n_features = 8usize;
    assert!(n_rows * n_features >= HIST_PARALLEL_GRAIN);
    let cols: Vec<BinnedColumn> = (0..n_features)
        .map(|f| {
            let vals: Vec<f64> = (0..n_rows)
                .map(|r| (((r * (13 + f * 7)) % 997) as f64 * 0.37).sin() * 50.0)
                .collect();
            BinnedColumn::build(&vals, 64)
        })
        .collect();
    let col_refs: Vec<&BinnedColumn> = cols.iter().collect();
    let rows: Vec<usize> = (0..n_rows).filter(|r| r % 5 != 2).collect();
    let yc: Vec<usize> = (0..n_rows).map(|r| (r * 11) % 4).collect();
    let yr: Vec<f64> = (0..n_rows).map(|r| (r as f64 * 0.01).cos()).collect();

    runtime::set_global_threads(1);
    let class_1t = accumulate_class_parallel(&col_refs, &rows, &yc, 4);
    let reg_1t = accumulate_reg_parallel(&col_refs, &rows, &yr);
    runtime::set_global_threads(4);
    let class_4t = accumulate_class_parallel(&col_refs, &rows, &yc, 4);
    let reg_4t = accumulate_reg_parallel(&col_refs, &rows, &yr);
    runtime::set_global_threads(0);

    assert_eq!(class_1t, class_4t, "class histograms 1-vs-4 threads");
    for (f, (a, b)) in reg_1t.iter().zip(&reg_4t).enumerate() {
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.n, y.n, "reg counts feature {f}");
            assert_eq!(x.sum.to_bits(), y.sum.to_bits(), "reg sums feature {f}");
            assert_eq!(
                x.sumsq.to_bits(),
                y.sumsq.to_bits(),
                "reg sumsq feature {f}"
            );
        }
    }
    // Both match a plain per-column serial pass.
    for (f, col) in col_refs.iter().enumerate() {
        let mut hc = Vec::new();
        accumulate_class(col, &rows, &yc, 4, &mut hc);
        assert_eq!(class_4t[f], hc, "batched class vs serial, feature {f}");
        let mut hr = Vec::new();
        accumulate_reg(col, &rows, &yr, &mut hr);
        for (x, y) in reg_4t[f].iter().zip(&hr) {
            assert_eq!((x.n, x.sum.to_bits()), (y.n, y.sum.to_bits()));
        }
    }
}

#[test]
fn gp_predict_identical_across_thread_counts() {
    // GP posterior-mean prediction chunks test rows over the worker pool
    // and reduces each row's RBF distances through the pinned SIMD lane
    // tree; neither may move a bit between thread counts. 700 test rows ×
    // 400 capped training rows clears the predict grain, so the 4-thread
    // run genuinely fans out.
    use learners::{GaussianProcess, GpConfig};

    let n = 700usize;
    let xs: Vec<Vec<f64>> = (0..3)
        .map(|f| {
            (0..n)
                .map(|r| (r as f64 * 0.013 + f as f64).sin() * 3.0)
                .collect()
        })
        .collect();
    let y: Vec<f64> = (0..n).map(|r| (r as f64 * 0.02).cos() * 2.0).collect();
    let mut gp = GaussianProcess::new(GpConfig::default());
    gp.fit(&xs, &y).unwrap();

    runtime::set_global_threads(1);
    let single = gp.predict(&xs).unwrap();
    runtime::set_global_threads(4);
    let multi = gp.predict(&xs).unwrap();
    runtime::set_global_threads(0);
    for (a, b) in single.iter().zip(&multi) {
        assert_eq!(a.to_bits(), b.to_bits(), "gp predict 1-vs-4 threads");
    }
}

#[test]
fn mlp_training_identical_across_thread_counts() {
    // The batched NN trainer splits every minibatch into fixed-size
    // microbatches and reduces their gradient partials serially in chunk
    // index order, so the parallel schedule cannot move a bit: a 1-thread
    // and a 4-thread fit are the same network. The config is sized past
    // the trainer's parallel grain (batch 128 × ~2.9k params) so the
    // 4-thread run genuinely exercises the worker pool.
    use learners::{MlpClassifier, MlpConfig};

    let frame = SynthSpec::new("nn-det", 384, 20, Task::Classification)
        .with_seed(77)
        .generate()
        .unwrap();
    let x = learners::feature_matrix(&frame);
    let y = frame.label().classes().unwrap().to_vec();
    let n_classes = frame.label().n_classes();
    let cfg = MlpConfig {
        hidden: 128,
        epochs: 3,
        batch_size: 128,
        seed: 23,
        ..MlpConfig::default()
    };

    runtime::set_global_threads(1);
    let mut single = MlpClassifier::new(cfg);
    single.fit(&x, &y, n_classes).unwrap();
    runtime::set_global_threads(4);
    let mut multi = MlpClassifier::new(cfg);
    multi.fit(&x, &y, n_classes).unwrap();
    let mut refit = MlpClassifier::new(cfg);
    refit.fit(&x, &y, n_classes).unwrap();
    runtime::set_global_threads(0);

    for (name, other) in [("1-vs-4 threads", &multi), ("4-thread refit", &refit)] {
        for (a, b) in single
            .trained_params()
            .unwrap()
            .iter()
            .zip(other.trained_params().unwrap())
        {
            assert_eq!(a.to_bits(), b.to_bits(), "mlp params {name}: {a} vs {b}");
        }
        assert_eq!(
            single.predict(&x).unwrap(),
            other.predict(&x).unwrap(),
            "mlp predictions {name}"
        );
    }
}

#[test]
fn resnet_training_identical_across_thread_counts() {
    // Same invariant for the tabular ResNet (and the embedding the RTDL_N
    // re-heading consumes): width 48 × 2 blocks ≈ 10.5k params at batch 64
    // clears the parallel grain, so the 4-thread fit runs microbatches on
    // the pool and must still match the 1-thread fit bit for bit.
    use learners::{ResNetClassifier, ResNetConfig};

    let frame = SynthSpec::new("nn-det-rn", 192, 20, Task::Classification)
        .with_seed(78)
        .generate()
        .unwrap();
    let x = learners::feature_matrix(&frame);
    let y = frame.label().classes().unwrap().to_vec();
    let n_classes = frame.label().n_classes();
    let cfg = ResNetConfig {
        width: 48,
        n_blocks: 2,
        epochs: 2,
        batch_size: 64,
        seed: 24,
        ..ResNetConfig::default()
    };

    runtime::set_global_threads(1);
    let mut single = ResNetClassifier::new(cfg);
    single.fit(&x, &y, n_classes).unwrap();
    runtime::set_global_threads(4);
    let mut multi = ResNetClassifier::new(cfg);
    multi.fit(&x, &y, n_classes).unwrap();
    runtime::set_global_threads(0);

    for (a, b) in single
        .trained_params()
        .unwrap()
        .iter()
        .zip(multi.trained_params().unwrap())
    {
        assert_eq!(a.to_bits(), b.to_bits(), "resnet params: {a} vs {b}");
    }
    assert_eq!(single.predict(&x).unwrap(), multi.predict(&x).unwrap());
    let (es, em) = (single.embed(&x).unwrap(), multi.embed(&x).unwrap());
    for (cs, cm) in es.iter().zip(&em) {
        for (a, b) in cs.iter().zip(cm) {
            assert_eq!(a.to_bits(), b.to_bits(), "resnet embedding: {a} vs {b}");
        }
    }
}

#[test]
fn telemetry_collection_does_not_change_scores() {
    // Instrumentation must be a pure observer: running the same
    // fixed-seed engine with a live telemetry sink (and across thread
    // counts) cannot move a single bit of any reported score.
    let frame = frame();
    let baseline = Engine::nfs(fast_config()).run(&frame).unwrap();

    let sink = Arc::new(telemetry::MemorySink::new());
    telemetry::install(Arc::clone(&sink) as Arc<dyn telemetry::Sink>);
    runtime::set_global_threads(1);
    let traced_single = Engine::nfs(fast_config()).run(&frame).unwrap();
    runtime::set_global_threads(4);
    let traced_multi = Engine::nfs(fast_config()).run(&frame).unwrap();
    runtime::set_global_threads(0);
    telemetry::uninstall();

    assert_bit_identical(&baseline, &traced_single, "NFS untraced-vs-traced");
    assert_bit_identical(&baseline, &traced_multi, "NFS traced 1-vs-4 threads");
    // The trace actually observed the runs it must not perturb.
    let engine_spans = sink
        .events()
        .iter()
        .filter_map(telemetry::Event::as_span)
        .filter(|s| s.name == "engine.run")
        .count();
    assert!(
        engine_spans >= 2,
        "expected engine.run spans from both traced runs, saw {engine_spans}"
    );
}

#[test]
fn shared_cache_does_not_change_scores() {
    // A shared content-addressed cache may only short-circuit evaluations
    // whose inputs fingerprint identically — so scores cannot move.
    let frame = frame();
    let cold = Engine::nfs(fast_config()).run(&frame).unwrap();
    let cache = Arc::new(ScoreCache::new(4096));
    let warm1 = Engine::nfs(fast_config())
        .with_cache(Arc::clone(&cache))
        .run(&frame)
        .unwrap();
    let warm2 = Engine::nfs(fast_config())
        .with_cache(Arc::clone(&cache))
        .run(&frame)
        .unwrap();
    assert_bit_identical(&cold, &warm1, "NFS private-vs-shared cache");
    assert_bit_identical(&cold, &warm2, "NFS cold-vs-warm shared cache");
    // The second identical run must be served largely from cache.
    assert!(
        warm2.cache_hits > 0,
        "repeated fixed-seed run should hit the shared cache (hits = {})",
        warm2.cache_hits
    );
    assert_eq!(
        warm2.cache_misses, 0,
        "every evaluation of an identical rerun is cached"
    );
}

#[test]
fn checkpoint_resume_is_bit_identical_across_thread_counts() {
    // The stepped engine's search state serializes completely — raw RNG
    // stream words, policy parameters, replay buffer, adaptive-gate
    // window — so a run that is checkpointed to JSON and restored at
    // EVERY epoch boundary (the worst case a server restart can produce)
    // must match the uninterrupted blocking run bit for bit, on one
    // thread and on four.
    let frame = frame();
    for threads in [1usize, 4] {
        runtime::set_global_threads(threads);
        let uninterrupted = Engine::nfs(fast_config()).run(&frame).unwrap();

        let mut engine = Engine::nfs(fast_config());
        let mut state = engine.start(&frame).unwrap();
        let cap = eafe::max_slices(&fast_config(), false);
        let mut slices = 0usize;
        while !state.is_done() {
            // Full restart: engine + state → JSON → fresh objects.
            let engine_json = serde_json::to_string(&engine).unwrap();
            let state_json = serde_json::to_string(&state).unwrap();
            engine = serde_json::from_str(&engine_json).unwrap();
            state = serde_json::from_str(&state_json).unwrap();
            engine.step(&mut state).unwrap();
            slices += 1;
            assert!(slices <= cap, "stepped run exceeded {cap} slices");
        }
        let (resumed, _frame) = engine.finish(&state).unwrap();
        runtime::set_global_threads(0);
        assert_bit_identical(
            &uninterrupted,
            &resumed,
            &format!("NFS checkpoint-every-epoch vs blocking, {threads} threads"),
        );
    }
}

#[test]
fn chunked_engine_matches_flat_across_thread_counts() {
    // The out-of-core driver (DESIGN.md §14) replays the exact RNG
    // streams, candidate draws, and evaluation order of the in-RAM
    // engine, so a full fixed-seed run over compressed chunks — even
    // under a budget tight enough to force spill/evict churn — must be
    // bit-identical to `Engine::run` on the flat frame, at 1 and at 4
    // worker threads.
    use tabular::{ChunkOptions, ChunkedFrame, FrameBudget, InMemoryStore};

    let frame = frame();
    let opts = ChunkOptions::default()
        .with_chunk_rows(32)
        .with_budget(FrameBudget::from_bytes(2048));
    for threads in [1usize, 4] {
        runtime::set_global_threads(threads);
        let flat = Engine::nfs(fast_config()).run(&frame).unwrap();
        let chunked =
            ChunkedFrame::from_dataframe(&frame, opts, Box::new(InMemoryStore::new())).unwrap();
        let (out, engineered) = Engine::nfs(fast_config()).run_chunked(chunked).unwrap();
        runtime::set_global_threads(0);
        assert_bit_identical(
            &flat,
            &out,
            &format!("chunked-vs-flat engine, {threads} threads"),
        );
        // The engineered chunked frame holds the same columns bit for bit.
        let back = engineered.to_dataframe().unwrap();
        assert_eq!(back.n_rows(), frame.n_rows());
        assert!(
            engineered.stats().chunks_spilled > 0,
            "the 2 KiB budget must actually exercise the spill path"
        );
    }
}

#[test]
fn chunked_engine_mmap_rerun_matches_memory_store() {
    // Same engine, same seed, different column store: a rerun backed by
    // an on-disk `.eafc` mmap store must reproduce the in-memory-store
    // run bit for bit — the storage backend is invisible to the search.
    use tabular::{ChunkOptions, ChunkedFrame, FrameBudget, InMemoryStore, MmapStore};

    let frame = frame();
    let opts = ChunkOptions::default()
        .with_chunk_rows(32)
        .with_budget(FrameBudget::from_bytes(2048));
    let dir = std::env::temp_dir().join(format!("eafe-det-mmap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mem_frame =
        ChunkedFrame::from_dataframe(&frame, opts, Box::new(InMemoryStore::new())).unwrap();
    let (mem_out, _) = Engine::nfs(fast_config()).run_chunked(mem_frame).unwrap();

    let store = MmapStore::create(dir.join("det.eafc")).unwrap();
    let mapped_frame = ChunkedFrame::from_dataframe(&frame, opts, Box::new(store)).unwrap();
    let (mmap_out, _) = Engine::nfs(fast_config())
        .run_chunked(mapped_frame)
        .unwrap();

    assert_bit_identical(&mem_out, &mmap_out, "mmap-store rerun vs memory store");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_observability_is_a_pure_observer() {
    // Full observability on — per-tenant scoped metrics, SLO thresholds
    // set low enough to trip on every slice, the status server being
    // scraped while the scheduler runs — must not move a bit of any
    // served result relative to the same engine run solo with
    // observability off. (The global telemetry sink is deliberately NOT
    // installed here: other tests in this binary own it.)
    use serve::{Budget, JobServer, JobStatus, ServerConfig, SloConfig};

    let frame = frame();
    let cfg_a = fast_config();
    let mut cfg_b = fast_config();
    cfg_b.seed = cfg_a.seed.wrapping_add(303);
    let solo_a = Engine::nfs(cfg_a.clone()).run(&frame).unwrap();
    let solo_b = Engine::nfs(cfg_b.clone()).run(&frame).unwrap();

    let server = JobServer::new(ServerConfig {
        status_addr: Some("127.0.0.1:0".to_string()),
        slo: SloConfig {
            epoch_p99_us: Some(1), // trips on every slice
            admission_wait_p99_us: Some(1),
        },
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.status_addr().unwrap();
    let a = server
        .submit("tenant-a", &frame, Engine::nfs(cfg_a), Budget::unlimited())
        .unwrap();
    let b = server
        .submit("tenant-b", &frame, Engine::nfs(cfg_b), Budget::unlimited())
        .unwrap();
    // Scrape both endpoints while the scheduler is live: reads must be
    // pure observers too.
    a.next_event();
    serve::scrape(addr, "/metrics").unwrap();
    serve::scrape(addr, "/status").unwrap();
    let oa = a.wait().unwrap();
    let ob = b.wait().unwrap();
    assert_eq!(oa.status, JobStatus::Completed);
    assert_eq!(ob.status, JobStatus::Completed);

    assert_bit_identical(
        &solo_a,
        &oa.result.unwrap(),
        "tenant-a observed-vs-solo scores",
    );
    assert_bit_identical(
        &solo_b,
        &ob.result.unwrap(),
        "tenant-b observed-vs-solo scores",
    );
    // The observability plane actually saw the run it must not perturb.
    let snap = server.metrics().snapshot();
    for tenant in ["tenant-a", "tenant-b"] {
        let scope = snap.get(&[("tenant", tenant)]).unwrap();
        assert!(scope.counter("serve.epochs") > 0, "{tenant} epochs counted");
        assert!(
            scope.counter("serve.slo.epoch_us_breaches") > 0,
            "{tenant}: a 1 us epoch SLO must have tripped"
        );
    }
}

#[test]
fn server_restart_with_two_tenants_matches_solo_runs() {
    // Two tenants share one server — one scheduler interleaving their
    // epochs round-robin, one content-addressed score cache — and the
    // server is shut down mid-run and resumed from its checkpoint
    // directory. Wherever the restart lands, each tenant's final result
    // must be bit-identical to running its engine alone, at 1 and 4
    // worker threads.
    use serve::{Budget, JobServer, JobStatus, ServerConfig};

    let frame = frame();
    let cfg_a = fast_config();
    let mut cfg_b = fast_config();
    cfg_b.seed = cfg_a.seed.wrapping_add(101);

    let root = std::env::temp_dir().join(format!("eafe-serve-det-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    for threads in [1usize, 4] {
        runtime::set_global_threads(threads);
        let solo_a = Engine::nfs(cfg_a.clone()).run(&frame).unwrap();
        let solo_b = Engine::nfs(cfg_b.clone()).run(&frame).unwrap();

        let dir = root.join(format!("t{threads}"));
        let config = ServerConfig {
            checkpoint_dir: Some(dir.clone()),
            ..ServerConfig::default()
        };
        let mut server = JobServer::new(config.clone()).unwrap();
        let a = server
            .submit(
                "tenant-a",
                &frame,
                Engine::nfs(cfg_a.clone()),
                Budget::unlimited(),
            )
            .unwrap();
        let b = server
            .submit(
                "tenant-b",
                &frame,
                Engine::nfs(cfg_b.clone()),
                Budget::unlimited(),
            )
            .unwrap();
        // Let both tenants make some progress, then stop the server at
        // an arbitrary point and restart it from the checkpoints.
        a.next_event();
        b.next_event();
        server.shutdown().unwrap();

        let (_server2, handles) = JobServer::resume(config).unwrap();
        let finish = |handle: &serve::JobHandle, tenant: &str| -> eafe::RunResult {
            // A tenant that completed before the shutdown has no
            // checkpoint; its outcome lives on the original handle.
            let outcome = match handle.wait() {
                Ok(o) => o,
                Err(_) => handles
                    .iter()
                    .find(|h| h.id() == handle.id())
                    .unwrap_or_else(|| panic!("{tenant}: no resumed handle"))
                    .wait()
                    .unwrap(),
            };
            assert_eq!(outcome.status, JobStatus::Completed, "{tenant}");
            assert_eq!(outcome.tenant, tenant);
            outcome.result.unwrap()
        };
        let got_a = finish(&a, "tenant-a");
        let got_b = finish(&b, "tenant-b");
        runtime::set_global_threads(0);

        assert_bit_identical(
            &solo_a,
            &got_a,
            &format!("tenant-a served-with-restart vs solo, {threads} threads"),
        );
        assert_bit_identical(
            &solo_b,
            &got_b,
            &format!("tenant-b served-with-restart vs solo, {threads} threads"),
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

// ---------------------------------------------------------------------------
// Multi-process distribution (crates/dist): a coordinator in this process
// drives real `dist_worker` child processes over TCP. The determinism
// contract extends across process boundaries: solo ≡ N worker processes,
// bitwise, at any per-worker thread count, even when a worker is killed
// mid-search and its shard is reassigned.
// ---------------------------------------------------------------------------

fn spawn_worker_process(addr: &str, threads: usize) -> std::process::Child {
    std::process::Command::new(env!("CARGO_BIN_EXE_dist_worker"))
        .args(["--connect", addr, "--threads", &threads.to_string()])
        .stdout(std::process::Stdio::null())
        .spawn()
        .expect("spawn dist_worker")
}

/// Run `engine` through a coordinator with `n_workers` child processes
/// (`threads` pool threads each). `kill_after_ms` kills the first child
/// that long into the search to exercise shard reassignment.
fn dist_run(
    engine: &Engine,
    frame: &DataFrame,
    n_workers: usize,
    threads: usize,
    kill_after_ms: Option<u64>,
) -> (RunResult, DataFrame) {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let mut children: Vec<std::process::Child> = (0..n_workers)
        .map(|_| spawn_worker_process(&addr, threads))
        .collect();
    let transports: Vec<dist::TcpTransport> = (0..n_workers)
        .map(|_| dist::TcpTransport::from_stream(listener.accept().unwrap().0))
        .collect();
    let killer = kill_after_ms.map(|ms| {
        let mut victim = children.remove(0);
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            let _ = victim.kill();
            let _ = victim.wait();
        })
    });
    let mut coordinator = dist::Coordinator::new(transports);
    let out = coordinator.run(engine, frame).unwrap();
    drop(coordinator); // orderly Bye; surviving workers exit cleanly
    for mut child in children {
        let status = child.wait().expect("wait for dist_worker");
        assert!(status.success(), "surviving worker exited with {status}");
    }
    if let Some(handle) = killer {
        handle.join().unwrap();
    }
    out
}

#[test]
fn multi_process_distribution_matches_solo_bitwise() {
    let frame = frame();
    let (solo, solo_frame) = Engine::nfs(fast_config()).run_full(&frame).unwrap();
    let solo_fp = runtime::fingerprint_frame(&solo_frame);
    for threads in [1usize, 4] {
        let before = runtime::global_dist_stats();
        let (result, engineered) = dist_run(&Engine::nfs(fast_config()), &frame, 2, threads, None);
        let after = runtime::global_dist_stats();
        assert_bit_identical(
            &solo,
            &result,
            &format!("multi-process NFS, 2 workers x {threads} threads"),
        );
        assert_eq!(
            solo_fp,
            runtime::fingerprint_frame(&engineered),
            "multi-process NFS, {threads} threads/worker: engineered frame"
        );
        assert_eq!(solo.selected, result.selected);
        assert!(
            after.shards_completed > before.shards_completed,
            "worker processes must complete shards ({threads} threads)"
        );
    }
}

#[test]
fn multi_process_fpe_distribution_matches_solo_bitwise() {
    // The two-stage FPE engine exercises both dispatch rounds: stage-1
    // slices warm signatures (round 0), stage-2 slices warm signatures
    // and downstream scores (rounds 0 and 1) — all shipped back across
    // the process boundary as fingerprint-keyed snapshots.
    let frame = frame();
    let fpe = fpe();
    let (solo, solo_frame) = Engine::e_afe(fast_config(), fpe.clone())
        .run_full(&frame)
        .unwrap();
    let (result, engineered) = dist_run(&Engine::e_afe(fast_config(), fpe), &frame, 2, 4, None);
    assert_bit_identical(&solo, &result, "multi-process E-AFE, 2 workers");
    assert_eq!(
        runtime::fingerprint_frame(&solo_frame),
        runtime::fingerprint_frame(&engineered),
        "multi-process E-AFE: engineered frame"
    );
}

#[test]
fn multi_process_worker_killed_mid_search_is_reassigned() {
    let frame = frame();
    let (solo, solo_frame) = Engine::nfs(fast_config()).run_full(&frame).unwrap();
    let before = runtime::global_dist_stats();
    let (result, engineered) = dist_run(&Engine::nfs(fast_config()), &frame, 2, 1, Some(200));
    let after = runtime::global_dist_stats();
    assert_bit_identical(&solo, &result, "multi-process NFS with a killed worker");
    assert_eq!(
        runtime::fingerprint_frame(&solo_frame),
        runtime::fingerprint_frame(&engineered),
        "killed-worker run: engineered frame"
    );
    assert!(
        after.shards_retried > before.shards_retried,
        "the killed worker's in-flight shard must be re-dispatched"
    );
}
