//! Telemetry across the runtime boundary: spans opened inside
//! `WorkerPool` workers must parent to the span that submitted the work,
//! events from every worker thread must reach the installed sink, and the
//! JSON-lines wire format must round-trip what the sink saw.
//!
//! The sink slot is process-global, so every test that installs one takes
//! the [`sink_lock`] mutex first; tests in this binary otherwise run
//! concurrently and would cross-pollute each other's collectors.

use std::sync::{Arc, Mutex, OnceLock};

use runtime::WorkerPool;
use telemetry::{Event, MemorySink, Summary};

fn sink_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

/// Install a fresh collector for the duration of one closure, returning
/// the events it captured.
fn with_collector<R>(body: impl FnOnce() -> R) -> (R, Vec<Event>) {
    let _guard = sink_lock().lock().unwrap();
    let sink = Arc::new(MemorySink::new());
    telemetry::install(Arc::clone(&sink) as Arc<dyn telemetry::Sink>);
    let out = body();
    telemetry::uninstall();
    (out, sink.take())
}

#[test]
fn pool_task_spans_parent_to_the_submitting_span() {
    let pool = WorkerPool::new().with_threads(4);
    let ((), events) = with_collector(|| {
        let outer = telemetry::span("test.submit");
        let results = pool.map((0..16).collect::<Vec<i64>>(), |_, i| {
            let mut s = telemetry::span("test.unit");
            s.field("i", i as f64);
            i * 2
        });
        assert_eq!(results, (0..16).map(|i| i * 2).collect::<Vec<i64>>());
        drop(outer);
    });
    let spans: Vec<_> = events.iter().filter_map(Event::as_span).collect();
    let submit = spans
        .iter()
        .find(|s| s.name == "test.submit")
        .expect("submitting span recorded");
    let map_span = spans
        .iter()
        .find(|s| s.name == "pool.map")
        .expect("pool.map span recorded");
    assert_eq!(
        map_span.parent, submit.id,
        "pool.map must nest under the caller's span"
    );
    // Every worker-side task span must chain back to the submitting span
    // even though it ran on another thread: unit -> task -> map -> submit.
    let units: Vec<_> = spans.iter().filter(|s| s.name == "test.unit").collect();
    assert_eq!(units.len(), 16, "one unit span per item");
    for unit in &units {
        let task = spans
            .iter()
            .find(|s| s.id == unit.parent && s.name == "pool.task")
            .expect("unit nests under a pool.task span");
        assert_eq!(
            task.parent, map_span.id,
            "pool.task must parent to pool.map across the thread boundary"
        );
    }
    // Aggregation sees the same tree: all rows present, exact counts.
    let summary = Summary::from_events(&events);
    assert_eq!(summary.row("pool.task").unwrap().count, 16);
    assert_eq!(summary.row("test.unit").unwrap().count, 16);
    assert_eq!(summary.row("pool.map").unwrap().count, 1);
}

#[test]
fn every_worker_event_reaches_the_sink() {
    let pool = WorkerPool::new().with_threads(8);
    let ((), events) = with_collector(|| {
        pool.map((0..200usize).collect::<Vec<_>>(), |_, i| {
            telemetry::count("test.worker_units", 1);
            let _s = telemetry::span("test.busy");
            i
        });
    });
    let busy = events
        .iter()
        .filter_map(Event::as_span)
        .filter(|s| s.name == "test.busy")
        .count();
    assert_eq!(busy, 200, "no span dropped under contention");
    assert_eq!(
        telemetry::global().counter("test.worker_units").get(),
        200,
        "counter increments are exact"
    );
    telemetry::global().clear();
}

#[test]
fn captured_events_round_trip_through_json_lines() {
    let pool = WorkerPool::new().with_threads(4);
    let ((), events) = with_collector(|| {
        pool.map((0..8i64).collect::<Vec<_>>(), |_, i| {
            let mut s = telemetry::span("test.rt");
            s.field("i", i as f64);
        });
    });
    assert!(!events.is_empty());
    let wire: String = events.iter().map(|e| e.to_json() + "\n").collect();
    let parsed: Vec<Event> = wire
        .lines()
        .map(|l| Event::from_json(l).expect("every line parses"))
        .collect();
    assert_eq!(parsed, events, "wire format is lossless");
}

#[test]
fn disabled_telemetry_records_nothing_from_pool_runs() {
    let _guard = sink_lock().lock().unwrap();
    assert!(!telemetry::enabled());
    let pool = WorkerPool::new().with_threads(4);
    let before = telemetry::global().counter("test.disabled_units").get();
    pool.map((0..32usize).collect::<Vec<_>>(), |_, i| {
        telemetry::count("test.disabled_units", 1);
        let _s = telemetry::span("test.disabled");
        i
    });
    assert_eq!(
        telemetry::global().counter("test.disabled_units").get(),
        before,
        "count() is a no-op while disabled"
    );
}
