//! Integration tests for the full Table III method matrix: every method
//! the paper compares must run on the same dataset and produce sane,
//! mutually-comparable results.

use eafe::baselines::{run_autofs_r, run_dl_fe, run_fe_dl, run_rtdl_n, DlBaselineConfig};
use eafe::{bootstrap_fpe, EafeConfig, Engine, FpeSearchSpace};
use learners::{ModelKind, ResNetConfig};
use minhash::HashFamily;
use tabular::{DataFrame, SynthSpec, Task};

fn frame() -> DataFrame {
    SynthSpec::new("matrix", 180, 6, Task::Classification)
        .with_seed(3)
        .generate()
        .unwrap()
}

fn cfg() -> EafeConfig {
    EafeConfig::fast()
}

fn fpe(family: HashFamily) -> eafe::FpeModel {
    let space = FpeSearchSpace {
        families: vec![family],
        dims: vec![16],
        thre: 0.01,
        seed: 9,
    };
    bootstrap_fpe(4, 2, &space, &cfg().evaluator, 9).expect("FPE")
}

fn dl_cfg() -> DlBaselineConfig {
    DlBaselineConfig {
        resnet: ResNetConfig {
            epochs: 5,
            width: 16,
            n_blocks: 1,
            ..ResNetConfig::default()
        },
        dlfe_keep: 8,
        ..DlBaselineConfig::default()
    }
}

#[test]
fn all_eleven_table3_methods_run() {
    let frame = frame();
    let fpe_ccws = fpe(HashFamily::Ccws);
    let (eafe_result, engineered) = Engine::e_afe(cfg(), fpe_ccws.clone())
        .run_full(&frame)
        .unwrap();

    let results = vec![
        run_autofs_r(&cfg(), &frame).unwrap(),
        run_rtdl_n(&dl_cfg(), &frame).unwrap(),
        Engine::nfs(cfg()).run(&frame).unwrap(),
        run_fe_dl(&dl_cfg(), &engineered).unwrap(),
        run_dl_fe(&dl_cfg(), &frame).unwrap(),
        Engine::e_afe_r(cfg(), fpe_ccws.clone())
            .run(&frame)
            .unwrap(),
        Engine::e_afe_d(cfg(), 0.5).run(&frame).unwrap(),
        Engine::e_afe_variant(cfg(), fpe(HashFamily::ZeroBitCws), "E-AFE^L")
            .run(&frame)
            .unwrap(),
        Engine::e_afe_variant(cfg(), fpe(HashFamily::Pcws), "E-AFE^P")
            .run(&frame)
            .unwrap(),
        Engine::e_afe_variant(cfg(), fpe(HashFamily::Icws), "E-AFE^I")
            .run(&frame)
            .unwrap(),
        eafe_result,
    ];
    let names: Vec<&str> = results.iter().map(|r| r.method.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "AutoFS_R", "RTDL_N", "NFS", "FE|DL", "DL|FE", "E-AFE_R", "E-AFE_D", "E-AFE^L",
            "E-AFE^P", "E-AFE^I", "E-AFE"
        ]
    );
    for r in &results {
        assert!(r.best_score.is_finite(), "{} produced NaN", r.method);
        assert!(
            (-1.0..=1.0).contains(&r.best_score),
            "{} score {} out of metric range",
            r.method,
            r.best_score
        );
        assert!(r.total_secs >= 0.0);
    }
    // RL-based AFE methods never end below their own baseline.
    for r in &results {
        if !matches!(r.method.as_str(), "RTDL_N" | "FE|DL" | "DL|FE") {
            assert!(
                r.best_score >= r.base_score,
                "{}: best {} < base {}",
                r.method,
                r.best_score,
                r.base_score
            );
        }
    }
}

#[test]
fn table5_reevaluation_of_cached_features() {
    let frame = frame();
    let (_, engineered) = Engine::e_afe(cfg(), fpe(HashFamily::Ccws))
        .run_full(&frame)
        .unwrap();
    let mut config = cfg();
    config.evaluator.mlp.epochs = 5;
    for kind in [ModelKind::Svm, ModelKind::NaiveBayesGp, ModelKind::Mlp] {
        let score = eafe::reevaluate(&engineered, kind, &config).unwrap();
        assert!(score.is_finite(), "{kind:?}");
    }
}

#[test]
fn dropout_rate_extremes() {
    let frame = frame();
    // rate 0 behaves like NFS (evaluates all structurally valid).
    let none = Engine::e_afe_d(cfg(), 0.0).run(&frame).unwrap();
    let nfs = Engine::nfs(cfg()).run(&frame).unwrap();
    assert_eq!(none.downstream_evals, nfs.downstream_evals);
    // rate 1 evaluates nothing beyond the base score.
    let all = Engine::e_afe_d(cfg(), 1.0).run(&frame).unwrap();
    assert_eq!(all.downstream_evals, 1);
    assert_eq!(all.best_score, all.base_score);
}

#[test]
fn minhash_variant_engines_differ_only_in_label() {
    let frame = frame();
    let l = Engine::e_afe_variant(cfg(), fpe(HashFamily::ZeroBitCws), "E-AFE^L")
        .run(&frame)
        .unwrap();
    assert_eq!(l.method, "E-AFE^L");
    assert!(l.best_score >= l.base_score);
}
