//! Cross-crate property-based tests (proptest): algebraic invariants of the
//! operator set, similarity preservation of the sample compressor (the
//! paper's Eq. 2), return-computation recurrences, metric identities, and
//! CSV round-trips under arbitrary inputs.

use eafe::{GeneratedFeature, Operator};
use minhash::{generalized_jaccard, HashFamily, SampleCompressor, WeightedMinHasher};
use proptest::prelude::*;
use rl::{discounted_returns, lambda_return, rewards_to_go, score_gains};
use tabular::{Column, DataFrame, Label, Task};

fn finite_vec(len: std::ops::Range<usize>) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every operator is total over finite inputs: outputs are always
    /// finite regardless of zeros, negatives, or magnitude.
    #[test]
    fn operators_are_total(values_a in finite_vec(1..64), op_idx in 0usize..9) {
        let values_b: Vec<f64> = values_a.iter().rev().copied().collect();
        let op = Operator::ALL[op_idx];
        let out = op.apply(&values_a, &values_b);
        prop_assert_eq!(out.len(), values_a.len());
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    /// Min-max normalisation lands in [0, 1].
    #[test]
    fn minmax_bounds(values in finite_vec(2..64)) {
        let out = Operator::MinMaxNorm.apply(&values, &[]);
        prop_assert!(out.iter().all(|&v| (0.0..=1.0 + 1e-12).contains(&v)));
    }

    /// Generated features record order = max(parent orders) + 1.
    #[test]
    fn generated_order_rule(
        values in finite_vec(2..32),
        op_idx in 0usize..9,
        oa in 0usize..4,
        ob in 0usize..4,
    ) {
        let a = Column::new("a", values.clone());
        let b = Column::new("b", values.iter().map(|v| v + 1.0).collect());
        let op = Operator::ALL[op_idx];
        let g = GeneratedFeature::generate(op, &a, oa, &b, ob);
        if op.is_unary() {
            prop_assert_eq!(g.order, oa + 1);
        } else {
            prop_assert_eq!(g.order, oa.max(ob) + 1);
        }
        prop_assert!(g.column.is_finite());
    }

    /// The sample compressor maps any input length to exactly d values,
    /// all finite, drawn from the input (fixed-size projection, Eq. 2's
    /// prerequisite).
    #[test]
    fn compressor_fixed_size(values in finite_vec(1..300), d in 1usize..64) {
        let c = SampleCompressor::new(HashFamily::Ccws, d, 7).unwrap();
        let out = c.compress(&values).unwrap();
        prop_assert_eq!(out.len(), d);
        prop_assert!(out.iter().all(|v| v.is_finite()));
    }

    /// Identical weighted sets collide on every signature element for
    /// every family; the estimator then reports similarity exactly 1.
    #[test]
    fn identical_sets_full_collision(values in finite_vec(2..100), fam in 0usize..5) {
        let weights = SampleCompressor::to_weights(&values);
        let hasher = WeightedMinHasher::new(HashFamily::ALL[fam], 16, 3).unwrap();
        let s1 = hasher.signature(&weights).unwrap();
        let s2 = hasher.signature(&weights).unwrap();
        prop_assert_eq!(s1.similarity(&s2).unwrap(), 1.0);
    }

    /// Eq. (2): the signature-collision similarity estimate of two related
    /// weight vectors stays within ε of the exact generalised Jaccard
    /// similarity (ICWS, large d, tolerance from Chernoff at d = 1024).
    #[test]
    fn similarity_preservation(seed_vals in finite_vec(8..40), bump in 0.0f64..2.0) {
        let a = SampleCompressor::to_weights(&seed_vals);
        let mut b = a.clone();
        for (i, v) in b.iter_mut().enumerate() {
            if i % 3 == 0 { *v += bump; }
        }
        let truth = generalized_jaccard(&a, &b).unwrap();
        let hasher = WeightedMinHasher::new(HashFamily::Icws, 1024, 11).unwrap();
        let est = hasher
            .signature(&a).unwrap()
            .similarity(&hasher.signature(&b).unwrap())
            .unwrap();
        prop_assert!((est - truth).abs() < 0.12, "est {} vs truth {}", est, truth);
    }

    /// Eq. (9) recurrence: U_t = γ·U_{t−1} + r_t, checked against the
    /// direct double-sum definition.
    #[test]
    fn discounted_return_recurrence(rewards in finite_vec(1..24), gamma in 0.0f64..1.0) {
        let u = discounted_returns(&rewards, gamma);
        for (t, &ut) in u.iter().enumerate() {
            let direct: f64 = (0..=t)
                .map(|k| gamma.powi((t - k) as i32) * rewards[k])
                .sum();
            prop_assert!((ut - direct).abs() < 1e-6 * (1.0 + direct.abs()));
        }
    }

    /// Eq. (10) closed form equals the expanded geometric sum.
    #[test]
    fn lambda_return_closed_form(ut in -100.0f64..100.0, lambda in 0.0f64..0.999, n in 1usize..64) {
        let closed = lambda_return(ut, lambda, n);
        let direct: f64 = (1..=n).map(|k| (1.0 - lambda) * lambda.powi(k as i32 - 1) * ut).sum();
        prop_assert!((closed - direct).abs() < 1e-9 * (1.0 + direct.abs()));
    }

    /// Rewards-to-go of constant rewards is a geometric series.
    #[test]
    fn rewards_to_go_geometric(r in -10.0f64..10.0, gamma in 0.0f64..0.999, n in 1usize..32) {
        let rewards = vec![r; n];
        let g = rewards_to_go(&rewards, gamma);
        let expected = r * (1.0 - gamma.powi(n as i32)) / (1.0 - gamma).max(1e-12);
        prop_assert!((g[0] - expected).abs() < 1e-6 * (1.0 + expected.abs()));
    }

    /// score_gains telescopes: the sum of gains equals last − baseline.
    #[test]
    fn score_gains_telescope(scores in finite_vec(1..32), baseline in -10.0f64..10.0) {
        let gains = score_gains(&scores, baseline);
        let total: f64 = gains.iter().sum();
        let expected = scores.last().unwrap() - baseline;
        prop_assert!((total - expected).abs() < 1e-6 * (1.0 + expected.abs()));
    }

    /// Weighted F1 is bounded in [0, 1] and exactly 1 for perfect
    /// predictions.
    #[test]
    fn f1_bounds(y in prop::collection::vec(0usize..3, 2..64)) {
        let perfect = learners::f1_score(&y, &y, 3).unwrap();
        prop_assert!((perfect - 1.0).abs() < 1e-12);
        let shifted: Vec<usize> = y.iter().map(|&c| (c + 1) % 3).collect();
        let wrong = learners::f1_score(&y, &shifted, 3).unwrap();
        prop_assert!((0.0..=1.0).contains(&wrong));
    }

    /// 1-RAE is 1 for perfect predictions and ≤ 1 always.
    #[test]
    fn one_minus_rae_bounds(y in finite_vec(2..64)) {
        let perfect = learners::one_minus_rae(&y, &y).unwrap();
        prop_assert!((perfect - 1.0).abs() < 1e-12);
        let preds: Vec<f64> = y.iter().map(|v| v + 1.0).collect();
        let score = learners::one_minus_rae(&y, &preds).unwrap();
        prop_assert!(score <= 1.0 + 1e-12);
    }

    /// CSV round-trip preserves shape and classification labels exactly,
    /// and feature values to f64 precision.
    #[test]
    fn csv_round_trip(
        cols in prop::collection::vec(finite_vec(3..12), 1..5),
    ) {
        let n = cols[0].len();
        let columns: Vec<Column> = cols
            .iter()
            .enumerate()
            .map(|(j, v)| Column::new(format!("c{j}"), v.iter().take(n).copied().collect()))
            .collect();
        // Only keep frames where all columns share the first column's len.
        prop_assume!(columns.iter().all(|c| c.len() == n));
        let y: Vec<usize> = (0..n).map(|i| i % 2).collect();
        let frame = DataFrame::new("p", columns, Label::Class { y, n_classes: 2 }).unwrap();
        let mut buf = Vec::new();
        tabular::csv::write_csv(&frame, &mut buf).unwrap();
        let back = tabular::csv::read_csv("p", Task::Classification, &buf[..]).unwrap();
        prop_assert_eq!(back.n_rows(), frame.n_rows());
        prop_assert_eq!(back.n_cols(), frame.n_cols());
        prop_assert_eq!(back.label().classes().unwrap(), frame.label().classes().unwrap());
        for (a, b) in frame.columns().iter().zip(back.columns()) {
            for (x, y) in a.values.iter().zip(&b.values) {
                prop_assert!((x - y).abs() <= 1e-9 * (1.0 + x.abs()), "{} vs {}", x, y);
            }
        }
    }

    /// Surrogate reward (Eq. 8) is monotone in the effectiveness
    /// probability and bounded by the gain extremes.
    #[test]
    fn surrogate_reward_monotone(base in 0.0f64..1.0, p1 in 0.0f64..1.0, p2 in 0.0f64..1.0) {
        let sr = eafe::SurrogateReward::new(base, 0.01);
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        prop_assert!(sr.pseudo_score(lo) <= sr.pseudo_score(hi) + 1e-12);
        prop_assert!(sr.pseudo_score(1.0) <= base + sr.delta_max + 1e-12);
        prop_assert!(sr.pseudo_score(0.0) >= base + sr.delta_min - sr.thre - 1e-12);
    }
}
