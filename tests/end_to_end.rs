//! End-to-end integration tests spanning all crates: the full E-AFE
//! pipeline against a plantable synthetic dataset, determinism, and the
//! core efficiency claim relative to NFS.

use eafe::{bootstrap_fpe, EafeConfig, Engine, FpeSearchSpace};
use minhash::HashFamily;
use tabular::{SynthSpec, Task};

fn fast_config() -> EafeConfig {
    let mut cfg = EafeConfig::fast();
    cfg.stage1_epochs = 3;
    cfg.stage2_epochs = 4;
    cfg.steps_per_epoch = 3;
    cfg
}

fn fpe() -> eafe::FpeModel {
    let cfg = fast_config();
    let space = FpeSearchSpace {
        families: vec![HashFamily::Ccws],
        dims: vec![16],
        thre: 0.01,
        seed: 5,
    };
    bootstrap_fpe(5, 2, &space, &cfg.evaluator, 5).expect("FPE bootstrap")
}

#[test]
fn e_afe_full_pipeline_improves_plantable_dataset() {
    // Low-noise, deep compositions: feature engineering must help here.
    let frame = SynthSpec::new("e2e-plant", 250, 6, Task::Classification)
        .with_noise(0.1)
        .with_depth(2)
        .with_seed(17)
        .generate()
        .unwrap();
    let result = Engine::e_afe(fast_config(), fpe()).run(&frame).unwrap();
    assert!(
        result.best_score >= result.base_score,
        "E-AFE must never end below the raw-feature score"
    );
    assert!(result.generated_features > 0);
    assert!(!result.trace.is_empty());
    // Monotone non-decreasing learning curve of best-so-far.
    for w in result.trace.windows(2) {
        assert!(w[1].score >= w[0].score);
    }
}

#[test]
fn e_afe_is_more_evaluation_efficient_than_nfs() {
    let frame = SynthSpec::new("e2e-eff", 200, 6, Task::Classification)
        .with_seed(19)
        .generate()
        .unwrap();
    let nfs = Engine::nfs(fast_config()).run(&frame).unwrap();
    let eafe = Engine::e_afe(fast_config(), fpe()).run(&frame).unwrap();
    // Evaluations per generated candidate: E-AFE's FPE gate plus stage-1
    // surrogate evaluation must reduce the ratio below NFS's.
    let nfs_ratio = nfs.downstream_evals as f64 / nfs.generated_features as f64;
    let eafe_ratio = eafe.downstream_evals as f64 / eafe.generated_features as f64;
    assert!(
        eafe_ratio < nfs_ratio,
        "E-AFE {eafe_ratio:.2} evals/feature vs NFS {nfs_ratio:.2}"
    );
}

#[test]
fn runs_are_deterministic_across_invocations() {
    let frame = SynthSpec::new("e2e-det", 150, 5, Task::Classification)
        .with_seed(23)
        .generate()
        .unwrap();
    let model = fpe();
    let a = Engine::e_afe(fast_config(), model.clone())
        .run(&frame)
        .unwrap();
    let b = Engine::e_afe(fast_config(), model).run(&frame).unwrap();
    assert_eq!(a.best_score, b.best_score);
    assert_eq!(a.selected, b.selected);
    assert_eq!(a.downstream_evals, b.downstream_evals);
}

#[test]
fn regression_pipeline_end_to_end() {
    let frame = SynthSpec::new("e2e-reg", 200, 5, Task::Regression)
        .with_seed(29)
        .generate()
        .unwrap();
    let (result, engineered) = Engine::e_afe(fast_config(), fpe())
        .run_full(&frame)
        .unwrap();
    assert!(result.best_score >= result.base_score);
    assert_eq!(engineered.n_rows(), frame.n_rows());
    assert_eq!(
        engineered.n_cols(),
        frame.n_cols() + result.selected.len(),
        "engineered frame = original + selected generated columns"
    );
}

#[test]
fn engineered_features_survive_csv_round_trip() {
    // The engineered frame can be persisted and reloaded losslessly enough
    // to reproduce the downstream score.
    let frame = SynthSpec::new("e2e-csv", 150, 4, Task::Classification)
        .with_seed(31)
        .generate()
        .unwrap();
    let cfg = fast_config();
    let (_, engineered) = Engine::e_afe(cfg.clone(), fpe()).run_full(&frame).unwrap();
    let mut buf = Vec::new();
    tabular::csv::write_csv(&engineered, &mut buf).unwrap();
    let reloaded = tabular::csv::read_csv("reloaded", Task::Classification, &buf[..]).unwrap();
    assert_eq!(reloaded.n_cols(), engineered.n_cols());
    let s1 = cfg.evaluator.evaluate(&engineered).unwrap();
    let s2 = cfg.evaluator.evaluate(&reloaded).unwrap();
    assert!((s1 - s2).abs() < 1e-9, "{s1} vs {s2}");
}

#[test]
fn failure_injection_nan_and_constant_columns() {
    // A dataset with a NaN-riddled column and a constant column must not
    // crash any engine.
    let mut frame = SynthSpec::new("e2e-nan", 120, 4, Task::Classification)
        .with_seed(37)
        .generate()
        .unwrap();
    frame
        .push_column(tabular::Column::new("const", vec![5.0; 120]))
        .unwrap();
    let mut bad = vec![f64::NAN; 120];
    bad[0] = 1.0;
    bad[1] = f64::INFINITY;
    frame.push_column(tabular::Column::new("bad", bad)).unwrap();

    let result = Engine::e_afe(fast_config(), fpe()).run(&frame).unwrap();
    assert!(result.best_score.is_finite());
    let nfs = Engine::nfs(fast_config()).run(&frame).unwrap();
    assert!(nfs.best_score.is_finite());
}

#[test]
fn tiny_dataset_edge_case() {
    // 30 rows is the floor for 3-fold stratified CV with 2 classes.
    let frame = SynthSpec::new("e2e-tiny", 30, 3, Task::Classification)
        .with_seed(41)
        .generate()
        .unwrap();
    let result = Engine::e_afe(fast_config(), fpe()).run(&frame).unwrap();
    assert!(result.best_score.is_finite());
}
