//! Integration tests of the FPE model's cross-dataset transfer: the whole
//! point of Algorithm 1 is that a classifier pre-trained on public datasets
//! carries over to unseen target datasets through the fixed-size MinHash
//! representation.

use eafe::fpe::{search, FpeSearchSpace, RawLabels};
use eafe::FpeModel;
use learners::Evaluator;
use minhash::HashFamily;
use tabular::registry::public_corpus;

fn evaluator() -> Evaluator {
    let mut e = Evaluator {
        folds: 3,
        ..Evaluator::default()
    };
    e.forest.n_trees = 8;
    e.forest.tree.max_depth = 6;
    e
}

fn labels(seed: u64, n_class: usize, n_reg: usize) -> RawLabels {
    let corpus = public_corpus(n_class, n_reg, seed).unwrap();
    RawLabels::compute_augmented(&corpus, &runtime::Evaluator::new(evaluator()), 6, 3, seed)
        .unwrap()
}

#[test]
fn fpe_transfers_to_unseen_corpus() {
    // Train on one corpus, validate on a disjoint one (different seed →
    // different datasets): recall must beat the trivial all-negative
    // classifier and precision must be non-zero (paper Eq. 6 constraints).
    let train = labels(100, 6, 3);
    let val = labels(200, 3, 2);
    let space = FpeSearchSpace {
        families: vec![HashFamily::Ccws],
        dims: vec![32],
        thre: 0.01,
        seed: 1,
    };
    let result = search(&space, &train, &val).unwrap();
    let m = result.model.metrics;
    assert!(m.recall > 0.0, "recall {}", m.recall);
    assert!(m.precision > 0.0, "precision {}", m.precision);
    assert!(
        m.positive_rate < 0.95,
        "gate passes almost everything: {}",
        m.positive_rate
    );
}

#[test]
fn search_prefers_higher_recall_candidates() {
    let train = labels(300, 6, 3);
    let val = labels(400, 3, 2);
    let space = FpeSearchSpace {
        families: vec![HashFamily::Ccws, HashFamily::Icws],
        dims: vec![16, 48],
        thre: 0.01,
        seed: 2,
    };
    let result = search(&space, &train, &val).unwrap();
    let winner_recall = result.model.metrics.recall;
    for outcome in result.outcomes.iter().filter(|o| o.feasible) {
        assert!(
            winner_recall + 1e-12 >= outcome.recall,
            "winner recall {winner_recall} < feasible candidate {outcome:?}"
        );
    }
}

#[test]
fn persisted_fpe_model_is_identical_in_the_engine() {
    use eafe::{EafeConfig, Engine};
    use tabular::{SynthSpec, Task};

    let train = labels(500, 5, 2);
    let val = labels(600, 2, 1);
    let space = FpeSearchSpace {
        families: vec![HashFamily::Ccws],
        dims: vec![16],
        thre: 0.01,
        seed: 3,
    };
    let model = search(&space, &train, &val).unwrap().model;
    let reloaded = FpeModel::from_json(&model.to_json().unwrap()).unwrap();

    let frame = SynthSpec::new("transfer", 150, 5, Task::Classification)
        .with_seed(61)
        .generate()
        .unwrap();
    let cfg = EafeConfig::fast();
    let a = Engine::e_afe(cfg.clone(), model).run(&frame).unwrap();
    let b = Engine::e_afe(cfg, reloaded).run(&frame).unwrap();
    assert_eq!(a.best_score, b.best_score);
    assert_eq!(a.downstream_evals, b.downstream_evals);
    assert_eq!(a.selected, b.selected);
}

#[test]
fn augmented_labelling_supersets_plain_labelling() {
    let corpus = public_corpus(3, 1, 700).unwrap();
    let ev = runtime::Evaluator::new(evaluator());
    let plain = RawLabels::compute(&corpus, &ev).unwrap();
    let augmented = RawLabels::compute_augmented(&corpus, &ev, 4, 3, 7).unwrap();
    assert!(augmented.len() > plain.len());
    // The plain (leave-one-out) labels are a prefix of the augmented set.
    for (p, a) in plain.features.iter().zip(&augmented.features) {
        assert_eq!(p.0, a.0);
        assert!((p.1 - a.1).abs() < 1e-12);
    }
}
