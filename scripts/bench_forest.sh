#!/usr/bin/env bash
# Regenerate bench_results/BENCH_forest.json: exact vs histogram forest
# training wall-clock at the paper's dataset shapes.
# Usage: scripts/bench_forest.sh [extra flags passed to perf_forest]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin perf_forest

echo "=== perf_forest ==="
./target/release/perf_forest --quiet "$@" | tee bench_results/perf_forest_run.log
echo "artifact written to bench_results/BENCH_forest.json"
