#!/usr/bin/env bash
# Regenerate bench_results/BENCH_minhash.json: naive vs table-driven vs
# batch MinHash sketching wall-clock (plus signature-cache cold/warm) at
# the paper's shapes (d=48, 1k-10k rows, 100-1000 columns).
# Usage: scripts/bench_minhash.sh [extra flags passed to perf_minhash]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin perf_minhash

echo "=== perf_minhash ==="
# --threads 1: the committed speedups are single-thread kernel numbers
# (the acceptance criterion), not pool-parallel ones.
./target/release/perf_minhash --quiet --threads 1 "$@" | tee bench_results/perf_minhash_run.log
echo "artifact written to bench_results/BENCH_minhash.json"
