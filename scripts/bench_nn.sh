#!/usr/bin/env bash
# Regenerate bench_results/BENCH_nn.json: flat batched dense kernels vs
# the per-sample scalar reference (MLP / tabular ResNet / GP linalg),
# plus the end-to-end RTDL_N A/B. Timed on one thread by default so the
# committed numbers isolate the kernel-level speedup; pass --threads 0
# to measure with the worker pool.
# Usage: scripts/bench_nn.sh [extra flags passed to perf_nn]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin perf_nn

echo "=== perf_nn ==="
./target/release/perf_nn --quiet --threads 1 "$@" | tee bench_results/perf_nn_run.log
echo "artifact written to bench_results/BENCH_nn.json"
