#!/usr/bin/env bash
# Regenerate bench_results/BENCH_frame.json: the out-of-core chunked
# columnar data layer (compressed chunks, mmap-backed .eafc spill under a
# FrameBudget) vs the flat in-RAM DataFrame baseline, plus a full chunked
# NFS engine pass at 10M rows under a 64 MiB budget (vs a 320 MiB f64
# footprint). Peak RSS per mode is VmHWM measured in per-mode child
# processes. Timed on one worker thread: the artifact isolates the data
# layer, not the parallel runtime.
# Usage: scripts/bench_frame.sh [extra flags passed to perf_frame]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin perf_frame

echo "=== perf_frame ==="
./target/release/perf_frame --quiet --threads 1 \
    --engine-rows 10000000 --engine-budget-mb 64 "$@" \
    | tee bench_results/perf_frame_run.log
echo "artifact written to bench_results/BENCH_frame.json"
