#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test sweep
# (ROADMAP.md). Run from anywhere inside the repo; fails fast.
#
#   ./scripts/ci.sh          # full gate
#   ./scripts/ci.sh --quick  # skip the release build (debug test run only)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> split-method parity suite"
cargo test -q --test hist_parity

echo "==> minhash table/batch parity suite"
cargo test -q -p minhash --test table_parity

echo "==> NN batched-vs-scalar parity suite"
cargo test -q -p learners --test nn_parity

echo "==> serve integration suite"
cargo test -q -p serve --test integration

echo "==> trace_tool golden-output suite"
cargo test -q -p bench --test trace_golden

if [[ "$quick" -eq 0 ]]; then
    echo "==> serve smoke (release): live cancel bound, tenant fairness, status scrapes"
    # Single-threaded: the cancel-bound test is timing-sensitive and the
    # status test loads every core with two live tenants.
    cargo test -q -p serve --release --test smoke -- --test-threads=1

    echo "==> observability end-to-end (release): serve_demo trace -> trace_tool"
    cargo build --release -q --example serve_demo -p e-afe
    cargo build --release -q -p bench --bin trace_tool
    obs_dir="$(mktemp -d)"
    ./target/release/examples/serve_demo --quiet --status \
        --trace-out "$obs_dir/serve_trace.jsonl" > "$obs_dir/demo.out"
    grep -q 'serve_epochs{tenant="tenant-a"}' "$obs_dir/demo.out" \
        || { echo "serve_demo self-scrape missing per-tenant metrics"; exit 1; }
    grep -q '"budget_remaining"' "$obs_dir/demo.out" \
        || { echo "serve_demo /status missing budget burn-down"; exit 1; }
    ./target/release/trace_tool "$obs_dir/serve_trace.jsonl" \
        --folded "$obs_dir/serve.folded" --critical-path > "$obs_dir/trace.out"
    [[ -s "$obs_dir/serve.folded" ]] \
        || { echo "trace_tool produced an empty folded flamegraph"; exit 1; }
    grep -q 'critical path' "$obs_dir/trace.out" \
        || { echo "trace_tool produced no critical-path report"; exit 1; }
    rm -rf "$obs_dir"

    echo "==> perf_serve smoke (release): served scores bit-identical to direct"
    cargo build --release -q -p bench --bin perf_serve
    ./target/release/perf_serve --smoke --quiet

    echo "==> perf_forest smoke (release): histogram must not lose to exact"
    cargo build --release -q -p bench --bin perf_forest
    ./target/release/perf_forest --smoke --quiet

    echo "==> perf_minhash smoke (release): table path must not lose to naive"
    cargo build --release -q -p bench --bin perf_minhash
    ./target/release/perf_minhash --smoke --quiet

    echo "==> perf_nn smoke (release): batched kernels must not lose to scalar"
    cargo build --release -q -p bench --bin perf_nn
    ./target/release/perf_nn --smoke --quiet --threads 1

    echo "==> telemetry overhead smoke (release)"
    # Disabled-telemetry instrumentation must stay near-free; the test
    # asserts a generous per-site ceiling and only means anything with
    # optimisations on.
    cargo test -q -p telemetry --release --test overhead
fi

echo "==> cargo doc --no-deps (warnings denied, first-party crates)"
# vendor/ stand-ins are workspace members but not ours to lint.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p e-afe -p telemetry -p runtime -p tabular -p learners \
    -p minhash -p rl -p eafe -p eafe-stats -p serve -p bench

echo "CI gate passed."
