#!/usr/bin/env bash
# Local CI gate: formatting, lints, and the tier-1 build + test sweep
# (ROADMAP.md). Run from anywhere inside the repo; fails fast.
#
#   ./scripts/ci.sh          # full gate
#   ./scripts/ci.sh --quick  # skip the release build (debug test run only)

set -euo pipefail
cd "$(dirname "$0")/.."

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

if [[ "$quick" -eq 0 ]]; then
    echo "==> cargo build --release (tier-1)"
    cargo build --release
fi

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

# The kernel parity suites run twice: once on the portable SIMD tier
# (no features) and once with the `simd-arch` std::arch tier compiled in
# and runtime-dispatched — both must hold bit-for-bit (DESIGN.md §13).
run_kernel_parity() {
    echo "==> split-method parity suite $1"
    cargo test -q $2 --test hist_parity

    echo "==> minhash table/batch parity suite $1"
    cargo test -q -p minhash $2 --test table_parity

    echo "==> NN batched-vs-scalar parity suite $1"
    cargo test -q -p learners $2 --test nn_parity

    echo "==> simd dispatch/reduction-tree parity suite $1"
    cargo test -q -p simd $2
}
run_kernel_parity "(portable tier)" ""
run_kernel_parity "(simd-arch tier)" "--features simd-arch"

echo "==> out-of-core chunk parity suite (encode/decode, spill, histogram)"
cargo test -q -p tabular --test chunk_parity

echo "==> serve integration suite"
cargo test -q -p serve --test integration

echo "==> dist loopback determinism suite (solo == 1 worker == N workers)"
cargo test -q -p dist --test loopback

echo "==> multi-process distributed determinism suite (real worker processes)"
cargo test -q --test parallel_determinism multi_process

echo "==> trace_tool golden-output suite"
cargo test -q -p bench --test trace_golden

if [[ "$quick" -eq 0 ]]; then
    echo "==> serve smoke (release): live cancel bound, tenant fairness, status scrapes"
    # Single-threaded: the cancel-bound test is timing-sensitive and the
    # status test loads every core with two live tenants.
    cargo test -q -p serve --release --test smoke -- --test-threads=1

    echo "==> observability end-to-end (release): serve_demo trace -> trace_tool"
    cargo build --release -q --example serve_demo -p e-afe
    cargo build --release -q -p bench --bin trace_tool
    obs_dir="$(mktemp -d)"
    ./target/release/examples/serve_demo --quiet --status \
        --trace-out "$obs_dir/serve_trace.jsonl" > "$obs_dir/demo.out"
    grep -q 'serve_epochs{tenant="tenant-a"}' "$obs_dir/demo.out" \
        || { echo "serve_demo self-scrape missing per-tenant metrics"; exit 1; }
    grep -q '"budget_remaining"' "$obs_dir/demo.out" \
        || { echo "serve_demo /status missing budget burn-down"; exit 1; }
    ./target/release/trace_tool "$obs_dir/serve_trace.jsonl" \
        --folded "$obs_dir/serve.folded" --critical-path > "$obs_dir/trace.out"
    [[ -s "$obs_dir/serve.folded" ]] \
        || { echo "trace_tool produced an empty folded flamegraph"; exit 1; }
    grep -q 'critical path' "$obs_dir/trace.out" \
        || { echo "trace_tool produced no critical-path report"; exit 1; }
    rm -rf "$obs_dir"

    # Every perf_* bin carries a --smoke mode asserting its optimised
    # path does not lose to its retained reference (and, where relevant,
    # stays bit-identical to it).
    run_perf_smoke() {
        local bin="$1" why="$2"; shift 2
        echo "==> $bin smoke (release): $why"
        cargo build --release -q -p bench --bin "$bin"
        "./target/release/$bin" --smoke --quiet "$@"
    }
    run_perf_smoke perf_serve  "served scores bit-identical to direct"
    run_perf_smoke perf_forest "histogram must not lose to exact"
    run_perf_smoke perf_minhash "table path must not lose to naive"
    run_perf_smoke perf_nn     "batched kernels must not lose to scalar" --threads 1
    run_perf_smoke perf_simd   "lane-tree kernels must not lose to naive loops" --threads 1
    run_perf_smoke perf_frame  "chunked pipeline bit-identical to flat, <=1.15x, budget spills" --threads 1
    run_perf_smoke perf_dist   "2-worker run bitwise == solo and no slower" --threads 1

    echo "==> telemetry overhead smoke (release)"
    # Disabled-telemetry instrumentation must stay near-free; the test
    # asserts a generous per-site ceiling and only means anything with
    # optimisations on.
    cargo test -q -p telemetry --release --test overhead
fi

echo "==> cargo doc --no-deps (warnings denied, first-party crates)"
# vendor/ stand-ins are workspace members but not ours to lint.
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -q \
    -p e-afe -p telemetry -p runtime -p tabular -p learners \
    -p minhash -p rl -p eafe -p eafe-stats -p serve -p bench -p simd -p dist

echo "CI gate passed."
