#!/usr/bin/env bash
# Regenerate every table/figure artifact at the committed settings.
# Usage: scripts/run_all_benches.sh [extra flags passed to every bin]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bins

run() {
  local bin="$1"; shift
  echo "=== $bin ==="
  # --quiet keeps the captured log free of progress chatter so reruns at
  # identical settings produce byte-identical logs (timestamps live in
  # each artifact's JSON header instead).
  ./target/release/"$bin" --quiet "$@" | tee "bench_results/${bin}_run.log"
}

run table1 --scale 0.3 --steps 4 "$@"
run fig1   --scale 0.5 "$@"
run fig6   "$@"
# table3 is the long one; the committed artifact uses a 12-dataset subset:
run table3 --datasets "PimaIndian,credit-a,diabetes,German Credit,SpectF,SVMGuide3,Ionosphere,Wine Q. Red,Housing Boston,Airfoil,Openml 589,Openml 620" --scale 0.1 --epochs1 3 --epochs2 6 "$@"
run table4 --scale 0.2 "$@"
run table5 --scale 0.2 --epochs1 2 --epochs2 4 "$@"
run table6 "$@"
run fig7   --scale 0.3 --epochs2 10 "$@"
run fig8   --scale 0.2 --epochs1 2 --epochs2 4 "$@"
run fig9   --epochs1 2 --epochs2 4 "$@"
run ablation_replay --scale 0.2 "$@"
run ablation_lambda --scale 0.2 "$@"
run ablation_representation --scale 0.2 --epochs1 2 --epochs2 4 "$@"
# perf_minhash takes its own flag set (see scripts/bench_minhash.sh), so the
# forwarded "$@" (table/figure flags) is deliberately not passed through.
echo "=== perf_minhash ==="
./target/release/perf_minhash --quiet --threads 1 | tee bench_results/perf_minhash_run.log
# perf_simd likewise, and its committed artifact is built with the
# simd-arch feature so it reports the std::arch tier (scripts/bench_simd.sh).
echo "=== perf_simd ==="
cargo build --release -q -p bench --features simd-arch --bin perf_simd
./target/release/perf_simd --quiet --threads 1 | tee bench_results/perf_simd_run.log
echo "all artifacts written to bench_results/"
