#!/usr/bin/env bash
# Regenerate bench_results/BENCH_dist.json: the distributed speculative
# cache-warming coordinator (real worker child processes over loopback
# TCP) vs the identical solo search, at 1/2/4 workers, with the bitwise
# determinism contract asserted at every worker count. The workload's
# downstream evaluator carries a synthetic per-evaluation latency (the
# regime where distribution pays: evaluation cost is latency a worker
# pool overlaps, not local CPU), recorded in the artifact alongside the
# host CPU count and a delay-free CPU-bound contrast ratio.
# Usage: scripts/bench_dist.sh [extra flags passed to perf_dist]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --bin perf_dist

echo "=== perf_dist ==="
./target/release/perf_dist --quiet "$@" \
    | tee bench_results/perf_dist_run.log
echo "artifact written to bench_results/BENCH_dist.json"
