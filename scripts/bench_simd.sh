#!/usr/bin/env bash
# Regenerate bench_results/BENCH_simd.json: the pinned-reduction-tree
# SIMD kernels (dot / sq_dist / axpy) vs naive strict-order sequential
# loops, at the vector lengths the learners use. Built with the
# `simd-arch` feature so the committed numbers show the std::arch tier
# the CPU dispatches to (the artifact header records the active ISA and
# detected CPU features); pass nothing extra for the portable tier via
# `cargo build --release -p bench --bin perf_simd` by hand.
# Timed on one thread: these are single-core kernel microbenchmarks.
# Usage: scripts/bench_simd.sh [extra flags passed to perf_simd]
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p bench --features simd-arch --bin perf_simd

echo "=== perf_simd ==="
./target/release/perf_simd --quiet --threads 1 "$@" | tee bench_results/perf_simd_run.log
echo "artifact written to bench_results/BENCH_simd.json"
