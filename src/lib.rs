//! # e-afe
//!
//! Umbrella crate for the E-AFE reproduction (*Toward Efficient Automated
//! Feature Engineering*, ICDE 2023). Re-exports the whole workspace so
//! downstream users depend on one crate:
//!
//! - [`eafe`] — the E-AFE framework (engine, FPE model, baselines);
//! - [`tabular`] — data frames, splits, synthetic dataset registry;
//! - [`learners`] — the from-scratch ML substrate (RF, SVM, NB, GP, MLP,
//!   tabular ResNet);
//! - [`minhash`] — the weighted-MinHash family and sample compressor;
//! - [`rl`] — RNN policies, REINFORCE, returns, replay buffer;
//! - [`stats`] — significance tests for the improvement analysis.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `crates/bench` for the binaries regenerating every table and figure of
//! the paper.

#![warn(missing_docs)]

pub use eafe;
pub use learners;
pub use minhash;
pub use rl;
pub use tabular;

/// Statistical tests (re-exported under a short name).
pub use eafe_stats as stats;
