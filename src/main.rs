//! `e-afe` — command-line interface for running automated feature
//! engineering on a CSV table or a registry dataset.
//!
//! ```text
//! e-afe --input data.csv --task classification --output engineered.csv
//! e-afe --dataset "German Credit" --method nfs --epochs2 10
//! ```
//!
//! CSV format: a header row, numeric feature columns, and a final label
//! column named `__label__` (class index for classification, real value
//! for regression) — see `tabular::csv`.

use eafe::{bootstrap_fpe, preselect_features, EafeConfig, Engine, FpeModel, FpeSearchSpace};
use minhash::HashFamily;
use std::path::PathBuf;
use std::process::ExitCode;
use tabular::{DataFrame, Task};

struct Cli {
    input: Option<PathBuf>,
    dataset: Option<String>,
    task: Task,
    method: String,
    output: Option<PathBuf>,
    fpe_path: Option<PathBuf>,
    epochs1: usize,
    epochs2: usize,
    steps: usize,
    max_features: usize,
    scale: f64,
    seed: u64,
}

impl Default for Cli {
    fn default() -> Self {
        Self {
            input: None,
            dataset: None,
            task: Task::Classification,
            method: "e-afe".into(),
            output: None,
            fpe_path: None,
            epochs1: 4,
            epochs2: 8,
            steps: 3,
            max_features: 16,
            scale: 0.2,
            seed: 0xE_AFE,
        }
    }
}

const USAGE: &str = "\
e-afe: efficient automated feature engineering (ICDE 2023 reproduction)

usage: e-afe [--input FILE.csv | --dataset NAME] [options]

input:
  --input FILE.csv        numeric CSV with final `__label__` column
  --task classification|regression   label type for --input (default classification)
  --dataset NAME          a Table III dataset name (synthetic stand-in)
  --scale F               sample scale factor for --dataset (default 0.2)

method:
  --method e-afe|nfs|autofs|dropout  (default e-afe)
  --epochs1 N             stage-1 epochs (default 4)
  --epochs2 N             stage-2 epochs (default 8)
  --steps N               transformations per agent per epoch (default 3)
  --max-features N        RF-importance pre-selection cap (default 16)
  --seed N                master seed

output:
  --output FILE.csv       write the engineered feature table
  --fpe FILE.json         load the FPE model from (or pre-train and save to) this path
  --help                  this text
";

fn parse_args() -> Result<Cli, String> {
    let mut cli = Cli::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("missing value for {name}"))
        };
        match flag.as_str() {
            "--input" => cli.input = Some(PathBuf::from(value("--input")?)),
            "--dataset" => cli.dataset = Some(value("--dataset")?),
            "--task" => {
                cli.task = match value("--task")?.as_str() {
                    "classification" | "c" => Task::Classification,
                    "regression" | "r" => Task::Regression,
                    other => return Err(format!("unknown task `{other}`")),
                }
            }
            "--method" => cli.method = value("--method")?,
            "--output" => cli.output = Some(PathBuf::from(value("--output")?)),
            "--fpe" => cli.fpe_path = Some(PathBuf::from(value("--fpe")?)),
            "--epochs1" => cli.epochs1 = parse_num(&value("--epochs1")?)?,
            "--epochs2" => cli.epochs2 = parse_num(&value("--epochs2")?)?,
            "--steps" => cli.steps = parse_num(&value("--steps")?)?,
            "--max-features" => cli.max_features = parse_num(&value("--max-features")?)?,
            "--seed" => cli.seed = parse_num(&value("--seed")?)? as u64,
            "--scale" => {
                cli.scale = value("--scale")?
                    .parse()
                    .map_err(|_| "bad float for --scale".to_string())?
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    if cli.input.is_none() && cli.dataset.is_none() {
        return Err("need --input FILE.csv or --dataset NAME (try --help)".into());
    }
    Ok(cli)
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad integer `{s}`"))
}

fn load_frame(cli: &Cli) -> Result<DataFrame, String> {
    if let Some(path) = &cli.input {
        let file = std::fs::File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "input".into());
        return tabular::csv::read_csv(&name, cli.task, file)
            .map_err(|e| format!("parse {path:?}: {e}"));
    }
    let name = cli.dataset.as_ref().expect("validated");
    let info = tabular::find_dataset(name).map_err(|e| e.to_string())?;
    info.load_scaled(cli.scale).map_err(|e| e.to_string())
}

fn obtain_fpe(cli: &Cli, config: &EafeConfig) -> Result<FpeModel, String> {
    if let Some(path) = &cli.fpe_path {
        if let Ok(json) = std::fs::read_to_string(path) {
            let model = FpeModel::from_json(&json).map_err(|e| e.to_string())?;
            eprintln!("loaded FPE model from {}", path.display());
            return Ok(model);
        }
    }
    eprintln!("pre-training FPE model (cache with --fpe to skip next time)...");
    let space = FpeSearchSpace {
        families: vec![HashFamily::Ccws],
        dims: vec![48],
        thre: config.thre,
        seed: cli.seed,
    };
    let mut ev = config.evaluator.clone();
    ev.folds = 3;
    let model = bootstrap_fpe(10, 5, &space, &ev, cli.seed).map_err(|e| e.to_string())?;
    if let Some(path) = &cli.fpe_path {
        std::fs::write(path, model.to_json().map_err(|e| e.to_string())?)
            .map_err(|e| format!("write {path:?}: {e}"))?;
        eprintln!("saved FPE model to {}", path.display());
    }
    Ok(model)
}

fn run() -> Result<(), String> {
    let cli = parse_args()?;
    let raw = load_frame(&cli)?;
    eprintln!(
        "dataset `{}`: {} rows x {} features ({})",
        raw.name,
        raw.n_rows(),
        raw.n_cols(),
        raw.task().code()
    );
    let frame = preselect_features(&raw, cli.max_features, cli.seed).map_err(|e| e.to_string())?;
    if frame.n_cols() < raw.n_cols() {
        eprintln!(
            "pre-selected {} of {} features by RF importance",
            frame.n_cols(),
            raw.n_cols()
        );
    }

    let config = EafeConfig {
        stage1_epochs: cli.epochs1,
        stage2_epochs: cli.epochs2,
        steps_per_epoch: cli.steps,
        seed: cli.seed,
        ..EafeConfig::default()
    };

    let (result, engineered) = match cli.method.as_str() {
        "e-afe" => {
            let fpe = obtain_fpe(&cli, &config)?;
            Engine::e_afe(config, fpe)
                .run_full(&frame)
                .map_err(|e| e.to_string())?
        }
        "nfs" => Engine::nfs(config)
            .run_full(&frame)
            .map_err(|e| e.to_string())?,
        "dropout" => Engine::e_afe_d(config, 0.5)
            .run_full(&frame)
            .map_err(|e| e.to_string())?,
        "autofs" => {
            eafe::baselines::run_autofs_r_full(&config, &frame).map_err(|e| e.to_string())?
        }
        other => return Err(format!("unknown method `{other}` (try --help)")),
    };

    println!("method:            {}", result.method);
    println!("base score:        {:.4}", result.base_score);
    println!(
        "best score:        {:.4}  ({:+.4})",
        result.best_score,
        result.improvement()
    );
    println!(
        "features:          {} generated, {} evaluated downstream, {} selected",
        result.generated_features,
        result.downstream_evals,
        result.selected.len()
    );
    println!(
        "time:              {:.2}s total ({:.0}% evaluation)",
        result.total_secs,
        result.eval_time_fraction() * 100.0
    );
    if !result.selected.is_empty() {
        println!("selected features:");
        for name in &result.selected {
            println!("  {name}");
        }
    }

    if let Some(path) = &cli.output {
        let mut file = std::fs::File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
        tabular::csv::write_csv(&engineered, &mut file).map_err(|e| e.to_string())?;
        println!("wrote engineered table to {}", path.display());
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
