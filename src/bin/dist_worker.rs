//! Distributed-search worker process.
//!
//! Connects to a coordinator (`dist::Coordinator`) over TCP and serves
//! its work shards until `Bye` or coordinator disconnect:
//!
//! ```text
//! dist_worker --connect 127.0.0.1:4555 [--threads 4]
//! ```
//!
//! `--threads` sizes this process's evaluation pool (0 = auto). The
//! worker holds no search state — killing it mid-search costs the
//! coordinator a shard retry, never a wrong result — so it is safe to
//! add, restart, or kill workers at any point.

use dist::{TcpTransport, Worker};
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: dist_worker --connect HOST:PORT [--threads N]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut connect: Option<String> = None;
    let mut threads: usize = 0;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => connect = Some(args.next().unwrap_or_else(|| usage())),
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            _ => usage(),
        }
    }
    let Some(addr) = connect else { usage() };
    runtime::set_global_threads(threads);

    let mut transport = match TcpTransport::connect(&addr) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dist_worker: cannot connect to {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match Worker::serve(&mut transport) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dist_worker: session failed: {e}");
            ExitCode::FAILURE
        }
    }
}
