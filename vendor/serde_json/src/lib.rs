//! Offline stand-in for `serde_json`.
//!
//! Serialises the vendored `serde::Value` model to JSON text and parses JSON
//! text back into it. Covers the functions this workspace calls:
//! [`to_string`], [`to_string_pretty`], [`from_str`], and the [`Error`] type.
//!
//! Number handling matches real serde_json closely enough for round-trips:
//! integers print without a fractional part and parse back as integers;
//! floats print via Rust's shortest-roundtrip formatter; non-finite floats
//! serialise as `null` (as the real crate does).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON (de)serialisation error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

pub type Result<T> = std::result::Result<T, Error>;

/// Serialise `value` as a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialise `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value).map_err(|e| Error::new(e.to_string()))
}

/// Parse a JSON string into the raw [`Value`] model.
pub fn parse(s: &str) -> Result<Value> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(v)
}

// -------------------------------------------------------------------- writer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Match serde_json: whole floats print with a trailing `.0` so
                // they stay floats across a round-trip.
                if *x == x.trunc() && x.abs() < 1e16 {
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&x.to_string());
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// -------------------------------------------------------------------- parser

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                skip_ws(bytes, pos);
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new(format!("expected ':' at byte {pos}")));
                }
                *pos += 1;
                skip_ws(bytes, pos);
                let val = parse_value(bytes, pos)?;
                entries.push((key, val));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(Error::new(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new(format!("expected string at byte {pos}")));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?,
                            16,
                        )
                        .map_err(|_| Error::new("invalid \\u escape"))?;
                        // Surrogate pairs are not produced by our writer; map
                        // lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new("invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("expected value at byte {start}")));
    }
    if !is_float {
        if let Ok(n) = text.parse::<i64>() {
            return Ok(Value::I64(n));
        }
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Value::U64(n));
        }
    }
    text.parse::<f64>()
        .map(Value::F64)
        .map_err(|_| Error::new(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert!(from_str::<bool>("true").unwrap());
    }

    #[test]
    fn roundtrip_string_escapes() {
        let s = "line1\nline2\t\"quoted\" \\ end".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn roundtrip_containers() {
        let v = vec![1.0f64, 2.5, -3.25];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<f64>>(&json).unwrap(), v);

        let opt: Option<Vec<u32>> = Some(vec![1, 2, 3]);
        let json = to_string(&opt).unwrap();
        assert_eq!(from_str::<Option<Vec<u32>>>(&json).unwrap(), opt);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1u32, 2], vec![3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u32>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(from_str::<f64>("not json").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
        assert!(from_str::<Vec<f64>>("[1.0,").is_err());
    }

    #[test]
    fn nonfinite_serialises_as_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }
}
