//! Offline stand-in for `serde`.
//!
//! The real crates.io `serde` is unavailable in this build environment, so
//! this crate provides the subset of the API the workspace actually uses:
//! `#[derive(Serialize, Deserialize)]` on plain structs and enums, consumed
//! by the vendored `serde_json`. Instead of the real crate's visitor-based
//! zero-copy model, serialization goes through a self-describing [`Value`]
//! tree, which is all a reproduction that writes/reads small JSON artifacts
//! needs. The derive macros live in the sibling `serde_derive` crate and
//! target exactly this model, mirroring the real externally-tagged enum
//! representation so the JSON output looks like serde's.

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing serialized value (the vendored wire model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer (JSON number without fraction/exponent).
    I64(i64),
    /// Unsigned integer above `i64::MAX`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved so output is stable.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrow the entries when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrow the elements when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Numeric view with integer→float coercion (JSON does not distinguish
    /// `1` from `1.0`, and neither do we on the way back in).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            Value::F64(v) => Some(v),
            Value::Null => Some(f64::NAN), // non-finite floats serialize as null
            _ => None,
        }
    }

    /// Unsigned-integer view (accepts any numeric representation that is an
    /// exact non-negative integer).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::U64(v) => Some(v),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => Some(v as u64),
            _ => None,
        }
    }

    /// Signed-integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 && v.abs() <= i64::MAX as f64 => Some(v as i64),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    /// New error with the given message.
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Convert to the wire model.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuild from the wire model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

/// Look up a struct field in a map, treating a missing key as `Null` so
/// `Option` fields tolerate absent keys (older artifacts stay readable).
pub fn field<'a>(entries: &'a [(String, Value)], name: &str) -> &'a Value {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .unwrap_or(&Value::Null)
}

// ---------------------------------------------------------------- primitives

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                Value::I64(v)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_i64()
                    .ok_or_else(|| DeError::new(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! ser_de_uint64 {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as u64;
                if v <= i64::MAX as u64 {
                    Value::I64(v as i64)
                } else {
                    Value::U64(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let raw = v
                    .as_u64()
                    .ok_or_else(|| DeError::new(concat!("expected unsigned integer for ", stringify!($t))))?;
                <$t>::try_from(raw)
                    .map_err(|_| DeError::new(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

ser_de_uint64!(u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::new("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.as_f64().ok_or_else(|| DeError::new("expected number"))? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new("expected boolean")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(DeError::new("expected single-character string")),
        }
    }
}

// `&'static str` shows up in static dataset registries; deserializing one
// from owned JSON necessarily leaks the string, which is fine for the small
// registry/bench structs that use it.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            _ => Err(DeError::new("expected string")),
        }
    }
}

// --------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Box::new(T::from_value(v)?))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = v.as_array().ok_or_else(|| DeError::new("expected array"))?;
        if items.len() != N {
            return Err(DeError::new("array length mismatch"));
        }
        let mut out = [T::default(); N];
        for (slot, item) in out.iter_mut().zip(items) {
            *slot = T::from_value(item)?;
        }
        Ok(out)
    }
}

macro_rules! ser_de_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let items = v.as_array().ok_or_else(|| DeError::new("expected array for tuple"))?;
                let expected = [$($idx),+].len();
                if items.len() != expected {
                    return Err(DeError::new("tuple length mismatch"));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    )*};
}

ser_de_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(usize::from_value(&7usize.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"x".to_string().to_value()).unwrap(),
            "x"
        );
    }

    #[test]
    fn numeric_coercion() {
        // `1.0` printed as `1` must still deserialize as f64.
        assert_eq!(f64::from_value(&Value::I64(1)).unwrap(), 1.0);
        // Large u64 survives exactly.
        let big = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn option_and_containers() {
        let some: Option<u32> = Some(5);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&some.to_value()).unwrap(), some);
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), none);
        let v = vec![(vec![1.0f64, 2.0], 3.0f64)];
        let back = Vec::<(Vec<f64>, f64)>::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn missing_field_reads_as_null() {
        let m = vec![("a".to_string(), Value::I64(1))];
        assert_eq!(field(&m, "a"), &Value::I64(1));
        assert_eq!(field(&m, "b"), &Value::Null);
    }
}
