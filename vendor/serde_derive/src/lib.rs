//! Offline stand-in for `serde_derive`.
//!
//! Derives `Serialize`/`Deserialize` for the vendored `serde` crate's
//! `Value` model. The real derive crate parses items with `syn`; neither
//! `syn` nor `quote` is available offline, so this walks the raw
//! `proc_macro::TokenStream` directly. It supports exactly the item shapes
//! the workspace uses:
//!
//! - structs with named fields (optionally generic over type parameters),
//! - tuple structs,
//! - enums with unit, newtype, and struct variants,
//!
//! and mirrors serde's externally-tagged representation: structs become
//! maps, unit variants become strings, newtype/struct variants become
//! single-entry maps.

use proc_macro::{Delimiter, Spacing, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ------------------------------------------------------------------- parsing

struct Item {
    name: String,
    /// Type-parameter names, e.g. `["T"]` for `ReplayBuffer<T>`.
    generics: Vec<String>,
    body: Body,
}

enum Body {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Variants(Vec<Variant>),
}

struct Field {
    name: String,
    ty: String,
}

struct Variant {
    name: String,
    body: VariantBody,
}

enum VariantBody {
    Unit,
    Newtype(String),
    Named(Vec<Field>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let is_enum = match &tokens[i] {
        TokenTree::Ident(id) if id.to_string() == "struct" => false,
        TokenTree::Ident(id) if id.to_string() == "enum" => true,
        other => panic!("derive expects a struct or enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("expected item name, found {other}"),
    };
    i += 1;
    let generics = parse_generics(&tokens, &mut i);
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if is_enum {
                Body::Variants(parse_variants(&inner))
            } else {
                Body::Named(parse_named_fields(&inner))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            Body::Tuple(split_top_level(&inner).len())
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Body::Unit,
        other => panic!("unsupported item body: {other:?}"),
    };
    Item {
        name,
        generics,
        body,
    }
}

/// Skip leading `#[...]` attributes and a `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

/// Parse `<T, U: Bound, ...>` returning the parameter names; bounds are
/// accepted and ignored (the generated impls re-bound every parameter on
/// Serialize/Deserialize, which is what serde's derive does too).
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return params,
    }
    *i += 1;
    let mut depth = 1usize;
    let mut expect_param = true;
    while *i < tokens.len() && depth > 0 {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => expect_param = true,
            TokenTree::Ident(id) if depth == 1 && expect_param => {
                params.push(id.to_string());
                expect_param = false;
            }
            _ => {}
        }
        *i += 1;
    }
    params
}

/// Split a token slice on top-level commas (tracking `<...>` nesting; other
/// brackets arrive pre-grouped by the tokenizer).
fn split_top_level(tokens: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle = 0usize;
    for t in tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle = angle.saturating_sub(1),
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
                continue;
            }
            _ => {}
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<Field> {
    split_top_level(tokens)
        .into_iter()
        .map(|field_tokens| {
            let mut i = 0;
            skip_attrs_and_vis(&field_tokens, &mut i);
            let name = match &field_tokens[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected field name, found {other}"),
            };
            i += 1;
            match &field_tokens[i] {
                TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
                other => panic!("expected ':' after field `{name}`, found {other}"),
            }
            let ty = tokens_to_string(&field_tokens[i..]);
            Field { name, ty }
        })
        .collect()
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    split_top_level(tokens)
        .into_iter()
        .map(|var_tokens| {
            let mut i = 0;
            skip_attrs_and_vis(&var_tokens, &mut i);
            let name = match &var_tokens[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("expected variant name, found {other}"),
            };
            i += 1;
            let body = match var_tokens.get(i) {
                None => VariantBody::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    let elems = split_top_level(&inner);
                    if elems.len() != 1 {
                        panic!("variant `{name}`: only newtype tuple variants are supported");
                    }
                    let mut j = 0;
                    skip_attrs_and_vis(&elems[0], &mut j);
                    VariantBody::Newtype(tokens_to_string(&elems[0][j..]))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    VariantBody::Named(parse_named_fields(&inner))
                }
                // Discriminant (`= expr`) — not used in this workspace.
                Some(other) => panic!("unsupported variant body for `{name}`: {other}"),
            };
            Variant { name, body }
        })
        .collect()
}

fn tokens_to_string(tokens: &[TokenTree]) -> String {
    // Joint puncts must stay glued to the next token: a space after the `'`
    // of a lifetime (`' static`) would fail to lex as generated code.
    let mut out = String::new();
    let mut glue = true;
    for t in tokens {
        if !glue {
            out.push(' ');
        }
        out.push_str(&t.to_string());
        glue = matches!(t, TokenTree::Punct(p) if p.spacing() == Spacing::Joint);
    }
    out
}

// ------------------------------------------------------------------- codegen

/// `impl<T: ::serde::Serialize> ::serde::Serialize for Name<T>` pieces.
fn impl_header(item: &Item, trait_name: &str) -> (String, String) {
    if item.generics.is_empty() {
        (String::new(), item.name.clone())
    } else {
        let bounded: Vec<String> = item
            .generics
            .iter()
            .map(|g| format!("{g}: ::serde::{trait_name}"))
            .collect();
        let plain = item.generics.join(", ");
        (
            format!("<{}>", bounded.join(", ")),
            format!("{}<{}>", item.name, plain),
        )
    }
}

fn gen_serialize(item: &Item) -> String {
    let (generics, target) = impl_header(item, "Serialize");
    let body = match &item.body {
        Body::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(vec![{}])", entries.join(", "))
        }
        Body::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|idx| format!("::serde::Serialize::to_value(&self.{idx})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", entries.join(", "))
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Variants(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    let ty = &item.name;
                    match &v.body {
                        VariantBody::Unit => format!(
                            "{ty}::{vn} => ::serde::Value::Str(\"{vn}\".to_string())"
                        ),
                        VariantBody::Newtype(_) => format!(
                            "{ty}::{vn}(inner) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(inner))])"
                        ),
                        VariantBody::Named(fields) => {
                            let names: Vec<&str> =
                                fields.iter().map(|f| f.name.as_str()).collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{n}\".to_string(), ::serde::Serialize::to_value({n}))",
                                        n = f.name
                                    )
                                })
                                .collect();
                            format!(
                                "{ty}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{entries}]))])",
                                binds = names.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Serialize for {target} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_deserialize(item: &Item) -> String {
    let (generics, target) = impl_header(item, "Deserialize");
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{n}: <{ty} as ::serde::Deserialize>::from_value(::serde::field(entries, \"{n}\"))\
                         .map_err(|e| ::serde::DeError::new(format!(\"{name}.{n}: {{e}}\")))?",
                        n = f.name,
                        ty = f.ty
                    )
                })
                .collect();
            format!(
                "let entries = v.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for {name}\"))?;\n\
                 Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Body::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|idx| {
                    format!(
                        "::serde::Deserialize::from_value(items.get({idx}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::DeError::new(\"expected array for {name}\"))?;\n\
                 Ok({name}({}))",
                inits.join(", ")
            )
        }
        Body::Unit => format!("let _ = v; Ok({name})"),
        Body::Variants(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.body, VariantBody::Unit))
                .map(|v| format!("\"{vn}\" => Ok({name}::{vn})", vn = v.name))
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.body {
                        VariantBody::Unit => None,
                        VariantBody::Newtype(ty) => Some(format!(
                            "\"{vn}\" => Ok({name}::{vn}(<{ty} as ::serde::Deserialize>::from_value(inner)?))"
                        )),
                        VariantBody::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{n}: <{ty} as ::serde::Deserialize>::from_value(::serde::field(entries, \"{n}\"))?",
                                        n = f.name,
                                        ty = f.ty
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let entries = inner.as_map().ok_or_else(|| ::serde::DeError::new(\"expected map for {name}::{vn}\"))?; Ok({name}::{vn} {{ {} }}) }}",
                                inits.join(", ")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {unit}\n\
                         other => Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Map(m) if m.len() == 1 => {{\n\
                         let (tag, inner) = &m[0];\n\
                         let _ = inner;\n\
                         match tag.as_str() {{\n\
                             {tagged}\n\
                             other => Err(::serde::DeError::new(format!(\"unknown variant `{{other}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::DeError::new(\"expected string or single-entry map for enum {name}\")),\n\
                 }}",
                unit = if unit_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", unit_arms.join(",\n"))
                },
                tagged = if tagged_arms.is_empty() {
                    String::new()
                } else {
                    format!("{},", tagged_arms.join(",\n"))
                },
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl{generics} ::serde::Deserialize for {target} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
