//! Offline stand-in for `rand`.
//!
//! Implements the API subset this workspace uses: `StdRng` seeded from a
//! `u64`, the `Rng`/`RngCore`/`SeedableRng` traits with `gen`, `gen_range`,
//! and `gen_bool`, and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256++ seeded via SplitMix64 — a different stream
//! from the real crate's ChaCha12-based `StdRng`, but with the same
//! determinism contract: identical seeds produce identical sequences on
//! every platform and thread count, which is what the workspace's
//! reproducibility tests assert.

/// Low-level generator interface.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing generator interface.
pub trait Rng: RngCore {
    /// Sample uniformly from a range (`a..b` or `a..=b`, integer or float).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Sample a value from the standard distribution of `T` (full-width
    /// integers, floats in `[0, 1)`, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of [0,1]");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable construction.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// `f64` in `[0, 1)` with 53 random bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map a raw draw onto `[0, width)` via widening multiply (Lemire).
fn mul_shift(raw: u64, width: u64) -> u64 {
    ((raw as u128 * width as u128) >> 64) as u64
}

/// A range that `Rng::gen_range` can sample a `T` from. Being generic over
/// `T` (rather than using an associated type) lets the result type flow
/// backwards into integer literals, so `let n: usize = rng.gen_range(2..4)`
/// infers `Range<usize>` with no turbofish — matching the real crate.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                let off = mul_shift(rng.next_u64(), width);
                (self.start as $u).wrapping_add(off as $u) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let width = (end as $u).wrapping_sub(start as $u) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let off = mul_shift(rng.next_u64(), width + 1);
                (start as $u).wrapping_add(off as $u) as $t
            }
        }
    )*};
}

int_sample_range!(
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = unit_f64(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                // Closed float ranges are sampled like half-open ones; the
                // upper endpoint has measure zero either way.
                let u = unit_f64(rng) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Standard distribution of `T`, backing `Rng::gen`.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman &
    /// Vigna), seeded by expanding a `u64` through SplitMix64 as the
    /// xoshiro reference code recommends.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// Snapshot the generator's internal state (for checkpointing).
        /// `from_state(state())` continues the exact same stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{RngCore, SampleRange};

    /// Slice extensions backed by an `Rng`.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(0..self.len()).sample_from(rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn state_snapshot_resumes_exact_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5..=5i32);
            assert!((-5..=5).contains(&w));
            let x = rng.gen_range(-1.5..2.5f64);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_small_domain() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn unit_float_distribution_is_plausible() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(13);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut a: Vec<usize> = (0..50).collect();
        let mut b = a.clone();
        a.shuffle(&mut StdRng::seed_from_u64(3));
        b.shuffle(&mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(a, sorted, "shuffle left the slice in order");
    }
}
