//! Offline stand-in for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! range and `collection::vec` strategies, and the `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!` assertion macros.
//!
//! Differences from the real crate, by design:
//! - inputs are drawn from a deterministic per-test stream (seeded by the
//!   test name), so runs are reproducible without a regressions file;
//! - failing cases are reported with their inputs but not shrunk.

use rand::rngs::StdRng;
use rand::Rng;

/// How a generated case resolved.
pub enum CaseResult {
    Pass,
    Reject,
}

/// Error type `prop_assert!`/`prop_assume!` return from a case body.
#[derive(Debug)]
pub enum TestCaseError {
    Fail(String),
    Reject,
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

pub mod strategy {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy that always yields a clone of one value (`Just(x)`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Box a strategy so heterogeneous arms can share one element type
    /// (used by `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Weighted union of strategies (`prop_oneof!`): each case picks one
    /// arm with probability proportional to its weight.
    pub struct OneOf<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u32,
    }

    impl<T> OneOf<T> {
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof!: no arms");
            let total = arms.iter().map(|(w, _)| *w).sum();
            assert!(total > 0, "prop_oneof!: zero total weight");
            OneOf { arms, total }
        }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("pick exceeded total weight")
        }
    }
}

pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Strategy for `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!size.is_empty(), "collection::vec: empty size range");
        VecStrategy { element, size }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod runner {
    pub use super::{CaseResult, TestCaseError};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn name_seed(name: &str) -> u64 {
        // FNV-1a, so each test gets a stable, distinct input stream.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive one property: generate inputs until `cases` cases pass, with
    /// a rejection budget so a too-strict `prop_assume!` fails loudly.
    pub fn run(
        cfg: &super::ProptestConfig,
        name: &str,
        mut case: impl FnMut(&mut StdRng) -> CaseResult,
    ) {
        let mut rng = StdRng::seed_from_u64(name_seed(name));
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let max_rejects = cfg.cases.saturating_mul(10).max(1000);
        while passed < cfg.cases {
            match case(&mut rng) {
                CaseResult::Pass => passed += 1,
                CaseResult::Reject => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest '{name}': too many rejected cases \
                             ({rejected} rejects for {passed} passes)"
                        );
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Just;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
    pub use crate::{ProptestConfig, Strategy};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::runner::run(&__config, stringify!($name), |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __case_desc = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(stringify!($arg));
                        __s.push_str(" = ");
                        __s.push_str(&format!("{:?}; ", &$arg));
                    )+
                    __s
                };
                let mut __case = move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    Ok(())
                };
                match __case() {
                    Ok(()) => $crate::CaseResult::Pass,
                    Err($crate::TestCaseError::Reject) => $crate::CaseResult::Reject,
                    Err($crate::TestCaseError::Fail(__msg)) => panic!(
                        "proptest '{}' failed: {}\n  inputs: {}",
                        stringify!($name),
                        __msg,
                        __case_desc
                    ),
                }
            });
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 0usize..10, y in -2.0f64..2.0) {
            prop_assert!(x < 10);
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn vec_strategy_length(v in prop::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!(v.len() >= 3 && v.len() < 7);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn nested_vec_strategy(vv in prop::collection::vec(prop::collection::vec(0usize..5, 1..4), 1..4)) {
            prop_assert!(!vv.is_empty());
            for v in &vv {
                prop_assert!(!v.is_empty());
            }
        }

        #[test]
        fn assume_rejects_without_failing(x in 0usize..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_draws_only_from_arms(x in prop_oneof![
            4 => 10.0f64..20.0,
            1 => Just(-1.0),
        ]) {
            prop_assert!((10.0..20.0).contains(&x) || x == -1.0, "x = {}", x);
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        use crate::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = crate::collection::vec(0.0f64..1.0, 2..9);
        let a = strat.generate(&mut StdRng::seed_from_u64(1));
        let b = strat.generate(&mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }
}
