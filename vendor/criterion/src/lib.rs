//! Offline stand-in for `criterion`.
//!
//! Mirrors the API surface the workspace's benches use — `Criterion`,
//! `BenchmarkGroup`, `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — over a simple wall-clock
//! measurement loop (warm-up, then a fixed measurement window, reporting
//! the median per-iteration time). No statistics, plots, or baselines.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier; re-exported from `std::hint`.
pub use std::hint::black_box;

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Passed to the closure given to `bench_function`; drives the timing loop.
pub struct Bencher {
    warm_up: Duration,
    measure: Duration,
    /// Median per-iteration time of the last `iter` call.
    last_estimate: Option<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: run until the warm-up window elapses.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;

        // Measurement: batches sized so each batch is ~1/10 of the window.
        let batch = ((self.measure.as_secs_f64() / 10.0 / per_iter.max(1e-9)) as u64).max(1);
        let mut samples: Vec<f64> = Vec::new();
        let window = Instant::now();
        while window.elapsed() < self.measure {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples.get(samples.len() / 2).copied().unwrap_or(per_iter);
        self.last_estimate = Some(Duration::from_secs_f64(median));
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// Benchmark driver; also the `&mut Criterion` handed to group functions.
pub struct Criterion {
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measure: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_one(self.warm_up, self.measure, id, f);
        self
    }

    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            warm_up: self.warm_up,
            measure: self.measure,
            _parent: self,
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(warm_up: Duration, measure: Duration, id: &str, mut f: F) {
    let mut bencher = Bencher {
        warm_up,
        measure,
        last_estimate: None,
    };
    f(&mut bencher);
    match bencher.last_estimate {
        Some(est) => println!("{id:<48} time: {}", fmt_duration(est)),
        None => println!("{id:<48} (no measurement: Bencher::iter never called)"),
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up: Duration,
    measure: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's fixed measurement window
    /// does not use a sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_one(self.warm_up, self.measure, &full, f);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            warm_up: Duration::from_millis(5),
            measure: Duration::from_millis(10),
            last_estimate: None,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
            acc
        });
        let est = b.last_estimate.expect("estimate recorded");
        assert!(est > Duration::ZERO);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measure: Duration::from_millis(2),
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function(BenchmarkId::from_parameter(3), |b| {
            b.iter(|| black_box(3u32) * 2)
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(1u8)));
    }
}
