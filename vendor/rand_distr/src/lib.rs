//! Offline stand-in for `rand_distr`.
//!
//! Provides the distributions this workspace samples — [`Normal`],
//! [`LogNormal`], [`Uniform`] — behind the [`Distribution`] trait. Normal
//! variates come from the inverse-CDF method (Acklam's rational
//! approximation of the probit function, |relative error| < 1.15e-9),
//! which consumes exactly one generator draw per sample and therefore
//! keeps draw counts — and thus downstream determinism — independent of
//! sampled values, unlike rejection methods.

use rand::{RngCore, Standard};
use std::fmt;

/// Types that can be sampled given a generator.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error for invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

/// Inverse of the standard normal CDF (Acklam 2003).
fn probit(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.38357751867269e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    debug_assert!((0.0..1.0).contains(&p) && p > 0.0);
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Draw u in the open interval (0, 1) so `probit` stays finite.
fn open_unit<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    let u = <f64 as Standard>::sample_standard(rng);
    u.max(f64::MIN_POSITIVE)
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, ParamError> {
        if !mean.is_finite() || !std_dev.is_finite() || std_dev < 0.0 {
            return Err(ParamError("Normal requires finite mean and std_dev >= 0"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * probit(open_unit(rng))
    }
}

/// Log-normal distribution: `exp(N(mu, sigma))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    inner: Normal,
}

impl LogNormal {
    pub fn new(mu: f64, sigma: f64) -> Result<Self, ParamError> {
        Ok(LogNormal {
            inner: Normal::new(mu, sigma)
                .map_err(|_| ParamError("LogNormal requires finite mu and sigma >= 0"))?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).exp()
    }
}

/// Continuous uniform distribution over `[low, high)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    low: f64,
    high: f64,
}

impl Uniform {
    pub fn new(low: f64, high: f64) -> Self {
        assert!(low < high, "Uniform::new requires low < high");
        Uniform { low, high }
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = <f64 as Standard>::sample_standard(rng);
        self.low + u * (self.high - self.low)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn moments(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn probit_matches_known_quantiles() {
        assert!((probit(0.5)).abs() < 1e-9);
        assert!((probit(0.975) - 1.959_963_985).abs() < 1e-6);
        assert!((probit(0.025) + 1.959_963_985).abs() < 1e-6);
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(2.0, 3.0).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&samples);
        assert!((mean - 2.0).abs() < 0.1, "mean {mean}");
        assert!((var - 9.0).abs() < 0.5, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_with_right_median() {
        let d = LogNormal::new(0.0, 0.5).unwrap();
        let mut rng = StdRng::seed_from_u64(6);
        let mut samples: Vec<f64> = (0..10_001).map(|_| d.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&x| x > 0.0));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let d = Uniform::new(-1.0, 1.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = d.sample(&mut rng);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn invalid_params_rejected() {
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(LogNormal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Normal::new(0.0, 1.0).unwrap();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..16).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..16).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
