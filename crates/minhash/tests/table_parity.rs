//! Bit-identity of the table-driven and batch sketch kernels against the
//! scalar reference (`WeightedMinHasher::signature`), for all five hash
//! families, across random weights (including zeros, negatives, and
//! non-finite values the support filter must drop), dimensions, and seeds.
//!
//! This is the contract that lets the engine swap sketch paths freely:
//! table lookups hoist values (`r`, `c`, `β`, `eʳ`, `ln w`) but never
//! rewrite the arithmetic, so every signature element — winner index and
//! discretised `t` alike — must match the scalar path exactly.

use minhash::{HashFamily, SampleCompressor, WeightedMinHasher};
use proptest::prelude::*;

/// Weight generator: mostly positive values across several magnitudes,
/// with zeros, negatives, and non-finite values sprinkled in so the
/// support filter gets exercised.
fn weight() -> impl Strategy<Value = f64> {
    prop_oneof![
        8 => 1e-6f64..1e6,
        2 => Just(0.0),
        1 => -10.0f64..0.0,
        1 => Just(f64::NAN),
        1 => Just(f64::INFINITY),
    ]
}

fn weight_vec() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(weight(), 1..200)
}

fn has_support(w: &[f64]) -> bool {
    w.iter().any(|&v| v > 0.0 && v.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// signature() == signature_tabled() == signature_batch([w])[0],
    /// element for element, for every family.
    #[test]
    fn tabled_and_batch_match_scalar_reference(
        weights in weight_vec(),
        d in 1usize..64,
        seed in 0u64..1_000_000,
    ) {
        prop_assume!(has_support(&weights));
        for family in HashFamily::ALL {
            let h = WeightedMinHasher::new(family, d, seed).unwrap();
            let scalar = h.signature(&weights).unwrap();
            let tabled = h.signature_tabled(&weights).unwrap();
            prop_assert_eq!(
                scalar.elements(), tabled.elements(),
                "{:?} tabled diverges", family
            );
            let batch = h.signature_batch(&[&weights]).unwrap();
            prop_assert_eq!(
                scalar.elements(), batch[0].elements(),
                "{:?} batch diverges", family
            );
        }
    }

    /// Batch sketching many columns at once returns exactly the per-column
    /// scalar signatures, independent of batch composition (table growth
    /// triggered by one column must not disturb another's sketch).
    #[test]
    fn batch_matches_per_column_scalar(
        cols in prop::collection::vec(weight_vec(), 1..8),
        seed in 0u64..1_000_000,
    ) {
        prop_assume!(cols.iter().all(|c| has_support(c)));
        for family in HashFamily::ALL {
            let h = WeightedMinHasher::new(family, 16, seed).unwrap();
            let refs: Vec<&[f64]> = cols.iter().map(|c| c.as_slice()).collect();
            let batch = h.signature_batch(&refs).unwrap();
            prop_assert_eq!(batch.len(), cols.len());
            for (col, sig) in cols.iter().zip(&batch) {
                let scalar = h.signature(col).unwrap();
                prop_assert_eq!(
                    scalar.elements(), sig.elements(),
                    "{:?} batch column diverges", family
                );
            }
        }
    }

    /// The compressor's cached-path decomposition (signature + gather +
    /// normalise) reproduces compress()/compress_normalized() exactly.
    #[test]
    fn compressor_signature_path_matches_direct(
        values in prop::collection::vec(-1e4f64..1e4, 2..150),
        seed in 0u64..100_000,
    ) {
        for family in HashFamily::ALL {
            let c = SampleCompressor::new(family, 24, seed).unwrap();
            let sig = c.signature(&values).unwrap();
            prop_assert_eq!(
                c.compress(&values).unwrap(),
                c.compress_with_signature(&values, &sig)
            );
            prop_assert_eq!(
                c.compress_normalized(&values).unwrap(),
                c.compress_normalized_with_signature(&values, &sig)
            );
            let batch = c.signature_batch(&[&values]).unwrap();
            prop_assert_eq!(&batch[0], &sig);
        }
    }
}
