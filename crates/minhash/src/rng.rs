//! Counter-based deterministic random variates.
//!
//! Weighted MinHash needs, for every (hash index, input dimension) pair, a
//! reproducible set of random draws (Gamma, Beta, Uniform). Materialising a
//! `d × M` matrix of draws would defeat the point of compression, so we
//! derive each draw on the fly from a SplitMix64-style counter hash of
//! `(seed, hash_index, dimension, slot)`.

/// SplitMix64 finaliser: a high-quality 64-bit mixer.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Mix a (seed, hash index, dimension, slot) tuple into one 64-bit value.
#[inline]
pub fn mix(seed: u64, hash_idx: u64, dim: u64, slot: u64) -> u64 {
    let a = splitmix64(seed ^ hash_idx.wrapping_mul(0xA24BAED4963EE407));
    let b = splitmix64(a ^ dim.wrapping_mul(0x9FB21C651E98DF25));
    splitmix64(b ^ slot.wrapping_mul(0xD6E8FEB86659FD93))
}

/// Uniform draw in the open interval (0, 1), never exactly 0 or 1 so it is
/// safe inside `ln`.
#[inline]
pub fn uniform_open(seed: u64, hash_idx: u64, dim: u64, slot: u64) -> f64 {
    let bits = mix(seed, hash_idx, dim, slot);
    // 53 random mantissa bits → [0,1); shift into (0,1).
    ((bits >> 11) as f64 + 0.5) / (1u64 << 53) as f64
}

/// Gamma(2, 1) draw: the sum of two independent Exp(1) variables.
#[inline]
pub fn gamma21(seed: u64, hash_idx: u64, dim: u64, slot: u64) -> f64 {
    let u1 = uniform_open(seed, hash_idx, dim, slot);
    let u2 = uniform_open(seed, hash_idx, dim, slot ^ 0x8000_0000_0000_0000);
    -(u1.ln()) - (u2.ln())
}

/// Beta(2, 1) draw via inverse CDF: F(x) = x² → x = √u.
#[inline]
pub fn beta21(seed: u64, hash_idx: u64, dim: u64, slot: u64) -> f64 {
    uniform_open(seed, hash_idx, dim, slot).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(mix(1, 2, 3, 4), mix(1, 2, 3, 4));
        assert_ne!(mix(1, 2, 3, 4), mix(1, 2, 3, 5));
        assert_ne!(mix(1, 2, 3, 4), mix(2, 2, 3, 4));
    }

    #[test]
    fn uniform_in_open_unit_interval() {
        for i in 0..10_000u64 {
            let u = uniform_open(42, i, i * 31, 0);
            assert!(u > 0.0 && u < 1.0, "u = {u}");
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|i| uniform_open(7, i, 0, 0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gamma21_moments() {
        // Gamma(2,1) has mean 2 and variance 2.
        let n = 20_000u64;
        let draws: Vec<f64> = (0..n).map(|i| gamma21(9, i, 1, 0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 2.0).abs() < 0.15, "var = {var}");
        assert!(draws.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn beta21_moments() {
        // Beta(2,1) has mean 2/3.
        let n = 20_000u64;
        let mean: f64 = (0..n).map(|i| beta21(11, i, 2, 0)).sum::<f64>() / n as f64;
        assert!((mean - 2.0 / 3.0).abs() < 0.01, "mean = {mean}");
    }
}
