//! The weighted-MinHash family: classic MinHash plus the four consistent
//! weighted sampling (CWS) schemes compared in the paper's Table III —
//! ICWS (Ioffe 2010), 0-bit CWS (Li 2015, the paper's `E-AFE^L`),
//! PCWS (Wu et al. 2017, `E-AFE^P`) and CCWS (Wu et al. 2016, the paper's
//! default, plain `E-AFE`).
//!
//! All schemes produce, per hash function, the index of one input dimension
//! sampled consistently: the probability that two weighted sets pick the
//! same (index, t) pair equals (approximately, for the newer variants) their
//! generalised Jaccard similarity.

use crate::error::{MinHashError, Result};
use crate::rng::{beta21, gamma21, mix, uniform_open};
use crate::signature::{SigElement, Signature};
use crate::tables;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Discretise a CWS `t = ⌊…⌋` value into the compact `i32` stored in
/// [`SigElement`]. The `as` cast saturates at the `i32` bounds (and maps
/// NaN, which the floor of a finite expression never produces, to 0), so
/// the astronomically rare out-of-range draw — requiring `r < |ln w| / 2³¹`,
/// probability below ~10⁻¹⁶ per draw at compressor weight scales — collapses
/// into the boundary bucket instead of wrapping. Both the scalar reference
/// and the table-driven kernels funnel through this one function, which is
/// part of why they are bit-identical.
pub(crate) fn discretize_t(t: f64) -> i32 {
    t as i32
}

/// Which hashing scheme to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HashFamily {
    /// Classic unweighted MinHash over the support (non-zero dimensions).
    MinHash,
    /// Improved consistent weighted sampling (Ioffe 2010).
    Icws,
    /// 0-bit CWS (Li 2015): ICWS keeping only the winning dimension.
    ZeroBitCws,
    /// Practical CWS (Wu et al. 2017): one gamma replaced by uniforms.
    Pcws,
    /// Canonical CWS (Wu et al. 2016): samples on raw weights, no log —
    /// the paper's default family.
    Ccws,
}

impl HashFamily {
    /// All families, in the order the paper's Table III reports them.
    pub const ALL: [HashFamily; 5] = [
        HashFamily::MinHash,
        HashFamily::Icws,
        HashFamily::ZeroBitCws,
        HashFamily::Pcws,
        HashFamily::Ccws,
    ];

    /// Display name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            HashFamily::MinHash => "MinHash",
            HashFamily::Icws => "ICWS",
            HashFamily::ZeroBitCws => "0bit-CWS",
            HashFamily::Pcws => "PCWS",
            HashFamily::Ccws => "CCWS",
        }
    }

    /// The E-AFE variant label used in Table III (`E-AFE^I` etc.).
    pub fn variant_label(self) -> &'static str {
        match self {
            HashFamily::MinHash => "E-AFE^M",
            HashFamily::Icws => "E-AFE^I",
            HashFamily::ZeroBitCws => "E-AFE^L",
            HashFamily::Pcws => "E-AFE^P",
            HashFamily::Ccws => "E-AFE",
        }
    }
}

/// A seeded weighted-MinHash hasher producing `d`-element signatures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WeightedMinHasher {
    /// Hashing scheme.
    pub family: HashFamily,
    /// Signature length (the paper's default output dimension is 48).
    pub d: usize,
    /// Seed shared by all hash functions (each hash mixes in its index).
    pub seed: u64,
}

impl WeightedMinHasher {
    /// Create a hasher; `d` must be non-zero.
    pub fn new(family: HashFamily, d: usize, seed: u64) -> Result<Self> {
        if d == 0 {
            return Err(MinHashError::InvalidParam(
                "signature dimension d must be > 0".into(),
            ));
        }
        Ok(Self { family, d, seed })
    }

    /// Extract the weighted set's support: `(dimension, weight)` pairs for
    /// every strictly positive, finite weight. Zero, negative, and
    /// non-finite (NaN/±∞) weights are **filtered out** — they carry no
    /// support mass and can never win a hash. Errors on an empty input or
    /// an empty support.
    pub(crate) fn support(weights: &[f64]) -> Result<Vec<(usize, f64)>> {
        if weights.is_empty() {
            return Err(MinHashError::EmptyInput);
        }
        let support: Vec<(usize, f64)> = weights
            .iter()
            .enumerate()
            .filter_map(|(k, &w)| (w > 0.0 && w.is_finite()).then_some((k, w)))
            .collect();
        if support.is_empty() {
            return Err(MinHashError::InvalidParam(
                "weight vector has empty support (all weights zero)".into(),
            ));
        }
        Ok(support)
    }

    /// Compute the signature of a non-negative weight vector via the scalar
    /// reference path, re-deriving every per-hash draw on the fly. Weights
    /// that are zero, negative, or non-finite are filtered out of the
    /// support and never win. Prefer [`signature_tabled`] /
    /// [`signature_batch`] in hot loops — they are bit-identical and
    /// amortise the draw derivations into a precomputed table.
    ///
    /// [`signature_tabled`]: WeightedMinHasher::signature_tabled
    /// [`signature_batch`]: WeightedMinHasher::signature_batch
    pub fn signature(&self, weights: &[f64]) -> Result<Signature> {
        let support = Self::support(weights)?;
        let mut elements = Vec::with_capacity(self.d);
        for i in 0..self.d as u64 {
            elements.push(match self.family {
                HashFamily::MinHash => self.minhash_element(i, &support),
                HashFamily::Icws => self.icws_element(i, &support, true),
                HashFamily::ZeroBitCws => self.icws_element(i, &support, false),
                HashFamily::Pcws => self.pcws_element(i, &support),
                HashFamily::Ccws => self.ccws_element(i, &support),
            });
        }
        Ok(Signature::new(elements))
    }

    /// Compute the signature via the precomputed [`tables::DrawTables`]
    /// fast path — bit-identical to [`signature`](WeightedMinHasher::signature)
    /// (pinned by the `table_parity` proptest suite) but with the per-`(i, k)`
    /// draw derivations replaced by table lookups. The table for this
    /// `(family, d, seed)` is created/grown lazily and shared process-wide.
    pub fn signature_tabled(&self, weights: &[f64]) -> Result<Signature> {
        let support = Self::support(weights)?;
        let start = telemetry::enabled().then(Instant::now);
        let elements = tables::draw_tables(self).sketch(&support);
        if let Some(start) = start {
            telemetry::record("minhash.sig_us", start.elapsed().as_micros() as u64);
        }
        Ok(Signature::new(elements))
    }

    /// Sketch many weight vectors in one pass, sharing a single table
    /// growth check and read acquisition across all columns. Bit-identical
    /// to calling [`signature`](WeightedMinHasher::signature) per column;
    /// errors if any column is empty or has an empty support.
    pub fn signature_batch(&self, columns: &[&[f64]]) -> Result<Vec<Signature>> {
        let supports = columns
            .iter()
            .map(|w| Self::support(w))
            .collect::<Result<Vec<_>>>()?;
        let start = telemetry::enabled().then(Instant::now);
        let sigs = tables::draw_tables(self)
            .sketch_many(&supports)
            .into_iter()
            .map(Signature::new)
            .collect();
        if let Some(start) = start {
            telemetry::record("minhash.sig_us", start.elapsed().as_micros() as u64);
            telemetry::count("minhash.batch_cols", columns.len() as u64);
        }
        Ok(sigs)
    }

    /// Classic MinHash: the support dimension with the minimum hash value.
    fn minhash_element(&self, i: u64, support: &[(usize, f64)]) -> SigElement {
        let (best_k, _) = support
            .iter()
            .map(|&(k, _)| (k, mix(self.seed, i, k as u64, 0)))
            .min_by_key(|&(_, h)| h)
            .expect("non-empty support");
        SigElement {
            key: best_k as u32,
            t: 0,
        }
    }

    /// ICWS (Ioffe 2010). For each support dimension k:
    /// r, c ~ Gamma(2,1), β ~ U(0,1);
    /// t = ⌊ln w / r + β⌋, y = exp(r(t − β)), a = c / (y·eʳ).
    /// The minimum `a` wins; the signature element is (k*, t*).
    /// With `keep_t = false` this degenerates to 0-bit CWS.
    fn icws_element(&self, i: u64, support: &[(usize, f64)], keep_t: bool) -> SigElement {
        let mut best = (0usize, 0i32, f64::INFINITY);
        for &(k, w) in support {
            let kk = k as u64;
            let r = gamma21(self.seed, i, kk, 1);
            let c = gamma21(self.seed, i, kk, 2);
            let beta = uniform_open(self.seed, i, kk, 3);
            let t = (w.ln() / r + beta).floor();
            let y = (r * (t - beta)).exp();
            let a = c / (y * r.exp());
            if a < best.2 {
                best = (k, discretize_t(t), a);
            }
        }
        SigElement {
            key: best.0 as u32,
            t: if keep_t { best.1 } else { 0 },
        }
    }

    /// PCWS (Wu et al. 2017): ICWS with the second gamma replaced by a
    /// uniform: a = −ln x / (y·eʳ), x ~ U(0,1).
    fn pcws_element(&self, i: u64, support: &[(usize, f64)]) -> SigElement {
        let mut best = (0usize, 0i32, f64::INFINITY);
        for &(k, w) in support {
            let kk = k as u64;
            let r = gamma21(self.seed, i, kk, 1);
            let x = uniform_open(self.seed, i, kk, 2);
            let beta = uniform_open(self.seed, i, kk, 3);
            let t = (w.ln() / r + beta).floor();
            let y = (r * (t - beta)).exp();
            let a = -(x.ln()) / (y * r.exp());
            if a < best.2 {
                best = (k, discretize_t(t), a);
            }
        }
        SigElement {
            key: best.0 as u32,
            t: best.1,
        }
    }

    /// CCWS (Wu et al. 2016): samples on the raw weights instead of their
    /// logarithms: r ~ Beta(2,1), c ~ Gamma(2,1), β ~ U(0,1);
    /// t = ⌊w / r + β⌋, y = r(t − β), a = c / y (y > 0 given w > 0).
    fn ccws_element(&self, i: u64, support: &[(usize, f64)]) -> SigElement {
        let mut best = (0usize, 0i32, f64::INFINITY);
        for &(k, w) in support {
            let kk = k as u64;
            let r = beta21(self.seed, i, kk, 1);
            let c = gamma21(self.seed, i, kk, 2);
            let beta = uniform_open(self.seed, i, kk, 3);
            let t = (w / r + beta).floor();
            let y = (r * (t - beta)).max(f64::MIN_POSITIVE);
            let a = c / y;
            if a < best.2 {
                best = (k, discretize_t(t), a);
            }
        }
        SigElement {
            key: best.0 as u32,
            t: best.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::signature::generalized_jaccard;

    fn weights_a() -> Vec<f64> {
        vec![1.0, 2.0, 0.0, 4.0, 0.5, 3.0, 0.0, 1.5]
    }

    fn weights_b() -> Vec<f64> {
        vec![1.0, 2.0, 0.0, 4.0, 0.5, 0.0, 2.0, 1.5]
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(WeightedMinHasher::new(HashFamily::Ccws, 0, 1).is_err());
        let h = WeightedMinHasher::new(HashFamily::Ccws, 8, 1).unwrap();
        assert!(h.signature(&[]).is_err());
        assert!(h.signature(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn signature_is_deterministic_and_seed_sensitive() {
        for family in HashFamily::ALL {
            let h1 = WeightedMinHasher::new(family, 32, 7).unwrap();
            let h2 = WeightedMinHasher::new(family, 32, 8).unwrap();
            let s1 = h1.signature(&weights_a()).unwrap();
            let s2 = h1.signature(&weights_a()).unwrap();
            let s3 = h2.signature(&weights_a()).unwrap();
            assert_eq!(s1, s2, "{family:?} not deterministic");
            assert_ne!(s1, s3, "{family:?} ignores seed");
            assert_eq!(s1.len(), 32);
        }
    }

    #[test]
    fn identical_inputs_collide_fully() {
        for family in HashFamily::ALL {
            let h = WeightedMinHasher::new(family, 16, 3).unwrap();
            let a = h.signature(&weights_a()).unwrap();
            let b = h.signature(&weights_a()).unwrap();
            assert_eq!(a.similarity(&b).unwrap(), 1.0, "{family:?}");
        }
    }

    #[test]
    fn zero_weight_dimensions_never_win() {
        for family in HashFamily::ALL {
            let h = WeightedMinHasher::new(family, 64, 5).unwrap();
            let sig = h.signature(&weights_a()).unwrap();
            for key in sig.keys() {
                assert!(weights_a()[key] > 0.0, "{family:?} picked zero-weight dim");
            }
        }
    }

    #[test]
    fn negative_and_non_finite_weights_never_win() {
        // The support filter drops (not clamps) anything that is not a
        // strictly positive finite weight: negatives, NaN, and ±∞ must be
        // unreachable as winning dimensions for every family.
        let w = vec![
            1.0,
            -5.0,
            f64::NAN,
            2.0,
            f64::INFINITY,
            0.5,
            f64::NEG_INFINITY,
            -0.0,
            3.0,
        ];
        let valid: Vec<usize> = vec![0, 3, 5, 8];
        for family in HashFamily::ALL {
            let h = WeightedMinHasher::new(family, 128, 41).unwrap();
            for sig in [h.signature(&w).unwrap(), h.signature_tabled(&w).unwrap()] {
                for key in sig.keys() {
                    assert!(valid.contains(&key), "{family:?} picked filtered dim {key}");
                }
            }
        }
        // A vector with no positive finite weight has an empty support.
        let h = WeightedMinHasher::new(HashFamily::Ccws, 8, 41).unwrap();
        assert!(h.signature(&[-1.0, f64::NAN, f64::INFINITY]).is_err());
    }

    #[test]
    fn similarity_estimate_tracks_generalized_jaccard() {
        // Eq. (2) of the paper: compressed similarity ≈ true similarity.
        let truth = generalized_jaccard(&weights_a(), &weights_b()).unwrap();
        for family in [HashFamily::Icws, HashFamily::Pcws, HashFamily::Ccws] {
            let h = WeightedMinHasher::new(family, 2048, 11).unwrap();
            let est = h
                .signature(&weights_a())
                .unwrap()
                .similarity(&h.signature(&weights_b()).unwrap())
                .unwrap();
            assert!(
                (est - truth).abs() < 0.1,
                "{family:?}: est {est:.3} vs truth {truth:.3}"
            );
        }
    }

    #[test]
    fn icws_estimate_is_unbiased_enough() {
        // Sharper check for the theoretically exact family.
        let truth = generalized_jaccard(&weights_a(), &weights_b()).unwrap();
        let h = WeightedMinHasher::new(HashFamily::Icws, 8192, 13).unwrap();
        let est = h
            .signature(&weights_a())
            .unwrap()
            .similarity(&h.signature(&weights_b()).unwrap())
            .unwrap();
        assert!(
            (est - truth).abs() < 0.05,
            "est {est:.3} vs truth {truth:.3}"
        );
    }

    #[test]
    fn zero_bit_collides_at_least_as_often_as_icws() {
        // 0-bit CWS drops the t component, so collisions are a superset.
        let hi = WeightedMinHasher::new(HashFamily::Icws, 512, 17).unwrap();
        let hz = WeightedMinHasher::new(HashFamily::ZeroBitCws, 512, 17).unwrap();
        let si = hi
            .signature(&weights_a())
            .unwrap()
            .similarity(&hi.signature(&weights_b()).unwrap())
            .unwrap();
        let sz = hz
            .signature(&weights_a())
            .unwrap()
            .similarity(&hz.signature(&weights_b()).unwrap())
            .unwrap();
        assert!(sz >= si, "0-bit {sz} < icws {si}");
    }

    #[test]
    fn heavier_weights_win_more_often() {
        // Dimension 0 has weight 10, dimension 1 weight 1: under consistent
        // weighted sampling dim 0 should win ≈ 10/11 of hashes.
        let w = vec![10.0, 1.0];
        for family in [HashFamily::Icws, HashFamily::Pcws, HashFamily::Ccws] {
            let h = WeightedMinHasher::new(family, 4096, 23).unwrap();
            let sig = h.signature(&w).unwrap();
            let zero_wins = sig.keys().filter(|&k| k == 0).count() as f64 / 4096.0;
            assert!(
                zero_wins > 0.75,
                "{family:?}: heavy dim won only {zero_wins:.3}"
            );
        }
    }

    #[test]
    fn labels_match_paper_notation() {
        assert_eq!(HashFamily::Ccws.variant_label(), "E-AFE");
        assert_eq!(HashFamily::ZeroBitCws.variant_label(), "E-AFE^L");
        assert_eq!(HashFamily::Pcws.variant_label(), "E-AFE^P");
        assert_eq!(HashFamily::Icws.variant_label(), "E-AFE^I");
        assert_eq!(HashFamily::ALL.len(), 5);
    }
}
