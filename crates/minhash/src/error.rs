//! Error types for the `minhash` crate.

use std::fmt;

/// Errors produced by signature computation and compression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinHashError {
    /// The input weight vector was empty.
    EmptyInput,
    /// A parameter was outside its valid domain.
    InvalidParam(String),
    /// Two signatures being compared have different lengths or families.
    Incompatible(String),
}

impl fmt::Display for MinHashError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinHashError::EmptyInput => write!(f, "cannot hash an empty input"),
            MinHashError::InvalidParam(msg) => write!(f, "invalid parameter: {msg}"),
            MinHashError::Incompatible(msg) => write!(f, "incompatible signatures: {msg}"),
        }
    }
}

impl std::error::Error for MinHashError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, MinHashError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(MinHashError::EmptyInput.to_string().contains("empty"));
        assert!(MinHashError::InvalidParam("d = 0".into())
            .to_string()
            .contains("d = 0"));
    }
}
