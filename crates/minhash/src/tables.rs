//! Precomputed CWS draw tables — the table-driven fast path behind
//! [`WeightedMinHasher::signature_tabled`] and
//! [`WeightedMinHasher::signature_batch`].
//!
//! Every weighted-MinHash family consumes, per `(hash index i, input
//! dimension k)` pair, a fixed set of random draws (`r`, `c`, `β`, …) that
//! depend **only on `(seed, i, k)` — never on the weights**. The naive
//! scalar path re-derives them on every call: each draw is a chain of
//! SplitMix64 rounds plus `ln`/`exp`/`sqrt`, repeated for every column of
//! every candidate feature, every epoch. A [`DrawTables`] materialises the
//! draws once per `(family, d, seed)` — together with the derived `eʳ`
//! factor the log-domain families divide by — and turns the per-element
//! inner loop into four table loads and a couple of flops.
//!
//! **Bit-identity.** The tables store exactly the values the scalar path
//! computes (`gamma21`/`beta21`/`uniform_open` at the same `(seed, i, k,
//! slot)` counters; `eʳ` as the same `r.exp()` the scalar path evaluates),
//! and the kernels apply the remaining per-weight arithmetic with the same
//! operations in the same order. Hoisting is limited to values — `ln w`
//! per support element, `eʳ` per `(i, k)` — never to algebraic rewrites
//! (`w.ln() / r` stays a division; it is *not* replaced by a `1/r`
//! multiply, whose rounding differs). The CWS scans are staged through
//! the `simd` crate's elementwise kernels (DESIGN.md §13), which keep
//! exactly those per-element expressions in every ISA tier — there is no
//! reduction anywhere in a sketch, so SIMD here is pure lane-parallel
//! elementwise work and bit-identity is structural. The proptest suite in
//! `tests/table_parity.rs` pins all five families bit-identical to the
//! scalar reference.
//!
//! **Layout & growth.** A table is a structure of arrays indexed
//! `[k * d + i]` (row per input dimension `k`, `d` entries per row), grown
//! geometrically and lazily as larger `k` appear: appending rows never
//! relocates existing entries' logical positions, so a grown table serves
//! old and new columns alike. Growth is interior-mutable behind `&self`
//! (an `RwLock`; sketches take the read side and run concurrently).
//!
//! **Memory.** One table costs `K × d × 4 × 8` bytes where `K` is the
//! largest input length seen (≈ 15 MB at `K = 10 000`, `d = 48`). Tables
//! are registered process-wide per `(family, d, seed)`; the engine and the
//! FPE search use a handful of such combinations, so the registry is
//! deliberately unbounded — [`clear_draw_tables`] exists for long-lived
//! processes that rotate seeds.

use crate::families::{discretize_t, HashFamily, WeightedMinHasher};
use crate::rng::{beta21, gamma21, mix, uniform_open};
use crate::signature::SigElement;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

/// Lazily grown draw table for one `(family, d, seed)` combination.
#[derive(Debug)]
pub struct DrawTables {
    family: HashFamily,
    d: usize,
    seed: u64,
    store: RwLock<Store>,
}

/// Structure-of-arrays storage, row-major by input dimension `k`
/// (`[k * d + i]`). Which arrays are populated depends on the family.
#[derive(Debug, Default)]
struct Store {
    /// Input dimensions (rows) materialised so far.
    k_cap: usize,
    /// Primary draw: `r ~ Gamma(2,1)` (ICWS/0-bit/PCWS), `r ~ Beta(2,1)`
    /// (CCWS). Empty for classic MinHash.
    r: Vec<f64>,
    /// Numerator draw: `c ~ Gamma(2,1)` (ICWS/0-bit/CCWS), `−ln x` with
    /// `x ~ U(0,1)` (PCWS). Empty for classic MinHash.
    c: Vec<f64>,
    /// `β ~ U(0,1)`. Empty for classic MinHash.
    beta: Vec<f64>,
    /// Derived `eʳ` — the exact `r.exp()` the scalar path divides by.
    /// Populated for the log-domain families (ICWS/0-bit/PCWS) only.
    er: Vec<f64>,
    /// Raw 64-bit hash values for classic MinHash. Empty otherwise.
    h: Vec<u64>,
}

impl DrawTables {
    fn new(hasher: &WeightedMinHasher) -> Self {
        DrawTables {
            family: hasher.family,
            d: hasher.d,
            seed: hasher.seed,
            store: RwLock::new(Store::default()),
        }
    }

    /// Input dimensions currently materialised (test/introspection hook).
    pub fn rows(&self) -> usize {
        self.store.read().unwrap().k_cap
    }

    /// Grow the table (geometrically) until it covers dimensions
    /// `0..k_needed`. No-op when already large enough.
    fn ensure(&self, k_needed: usize) {
        if self.store.read().unwrap().k_cap >= k_needed {
            return;
        }
        let mut store = self.store.write().unwrap();
        if store.k_cap >= k_needed {
            return; // another thread grew it between our locks
        }
        let start = telemetry::enabled().then(Instant::now);
        let old = store.k_cap;
        let new = k_needed.next_power_of_two().max(old * 2).max(64);
        let (d, seed) = (self.d as u64, self.seed);
        match self.family {
            HashFamily::MinHash => {
                store.h.reserve((new - old) * self.d);
                for k in old as u64..new as u64 {
                    for i in 0..d {
                        store.h.push(mix(seed, i, k, 0));
                    }
                }
            }
            HashFamily::Icws | HashFamily::ZeroBitCws => {
                for k in old as u64..new as u64 {
                    for i in 0..d {
                        let r = gamma21(seed, i, k, 1);
                        store.r.push(r);
                        store.c.push(gamma21(seed, i, k, 2));
                        store.beta.push(uniform_open(seed, i, k, 3));
                        store.er.push(r.exp());
                    }
                }
            }
            HashFamily::Pcws => {
                for k in old as u64..new as u64 {
                    for i in 0..d {
                        let r = gamma21(seed, i, k, 1);
                        store.r.push(r);
                        store.c.push(-(uniform_open(seed, i, k, 2).ln()));
                        store.beta.push(uniform_open(seed, i, k, 3));
                        store.er.push(r.exp());
                    }
                }
            }
            HashFamily::Ccws => {
                for k in old as u64..new as u64 {
                    for i in 0..d {
                        store.r.push(beta21(seed, i, k, 1));
                        store.c.push(gamma21(seed, i, k, 2));
                        store.beta.push(uniform_open(seed, i, k, 3));
                    }
                }
            }
        }
        store.k_cap = new;
        if let Some(start) = start {
            telemetry::record("minhash.table_build_us", start.elapsed().as_micros() as u64);
        }
    }

    /// Sketch one support (pairs of `(dimension, weight)`, weights > 0 and
    /// finite) into `d` signature elements via table lookups.
    pub fn sketch(&self, support: &[(usize, f64)]) -> Vec<SigElement> {
        let k_needed = support.iter().map(|&(k, _)| k + 1).max().unwrap_or(0);
        self.ensure(k_needed);
        let store = self.store.read().unwrap();
        self.sketch_with(&store, support)
    }

    /// Sketch many supports sharing one growth check and one read-lock
    /// acquisition — the batch kernel behind
    /// [`WeightedMinHasher::signature_batch`].
    pub fn sketch_many(&self, supports: &[Vec<(usize, f64)>]) -> Vec<Vec<SigElement>> {
        let k_needed = supports
            .iter()
            .flat_map(|s| s.iter().map(|&(k, _)| k + 1))
            .max()
            .unwrap_or(0);
        self.ensure(k_needed);
        let store = self.store.read().unwrap();
        supports
            .iter()
            .map(|s| self.sketch_with(&store, s))
            .collect()
    }

    /// The per-column kernel: one fresh [`SketchState`] absorbed over the
    /// whole support, then finished.
    fn sketch_with(&self, store: &Store, support: &[(usize, f64)]) -> Vec<SigElement> {
        let mut state = SketchState::new(self.d);
        self.absorb_with(store, &mut state, support);
        self.finish_state(state)
    }

    /// Start an incremental sketch over this table: absorb support pairs
    /// chunk by chunk, then [`StreamSketcher::finish`]. Absorbing chunks in
    /// ascending-index order reproduces [`sketch`](DrawTables::sketch) over
    /// the concatenated support bit-for-bit — the running-minimum updates
    /// are the exact same comparison sequence, merely split across calls.
    pub fn stream(self: &Arc<Self>) -> StreamSketcher {
        StreamSketcher {
            tables: Arc::clone(self),
            state: SketchState::new(self.d),
        }
    }

    /// Absorb one batch of support pairs into running state. Loop support
    /// outer (hoisting `ln w`), hash index inner (stride-1 over the table
    /// row), tracking the running minimum per hash index. Candidate order
    /// per hash index matches the scalar path's support order, and the
    /// comparison is the same strict `<`, so ties resolve identically.
    ///
    /// The CWS inner loops are staged through the `simd` crate's
    /// elementwise kernels (DESIGN.md §13): `t`, then `r·(t−β)`, then
    /// `exp`, then the final division, each as one pass over the table
    /// row. Every element still goes through the scalar path's exact
    /// expression sequence — the division stays a division, `floor`
    /// rounds the same in every tier, and `exp` stays the scalar libm
    /// call — so sketches are bit-identical whichever tier runs. Only
    /// the min-tracking scan stays a plain loop (it carries the
    /// cross-iteration argmin state).
    fn absorb_with(&self, store: &Store, state: &mut SketchState, support: &[(usize, f64)]) {
        let d = self.d;
        match self.family {
            HashFamily::MinHash => {
                for &(k, _) in support {
                    let row = &store.h[k * d..k * d + d];
                    let first = !state.any;
                    for (i, &h) in row.iter().enumerate() {
                        if first || h < state.best_h[i] {
                            state.best_h[i] = h;
                            state.best_k[i] = k as u32;
                        }
                    }
                    state.any = true;
                }
            }
            HashFamily::Icws | HashFamily::ZeroBitCws | HashFamily::Pcws => {
                for &(k, w) in support {
                    let lnw = w.ln();
                    let base = k * d;
                    let r = &store.r[base..base + d];
                    let beta = &store.beta[base..base + d];
                    // t = ⌊ln w / r + β⌋ ; a = c / (exp(r·(t−β)) · eʳ)
                    simd::div_add_floor(&mut state.t_buf, lnw, r, beta);
                    simd::mul_sub(&mut state.a_buf, r, &state.t_buf, beta);
                    simd::exp_inplace(&mut state.a_buf);
                    simd::div_prod(
                        &mut state.a_buf,
                        &store.c[base..base + d],
                        &store.er[base..base + d],
                    );
                    state.take_minima(k);
                }
            }
            HashFamily::Ccws => {
                for &(k, w) in support {
                    let base = k * d;
                    let r = &store.r[base..base + d];
                    let beta = &store.beta[base..base + d];
                    // t = ⌊w / r + β⌋ ; a = c / max(r·(t−β), MIN_POSITIVE)
                    simd::div_add_floor(&mut state.t_buf, w, r, beta);
                    simd::mul_sub(&mut state.a_buf, r, &state.t_buf, beta);
                    simd::max_scalar(&mut state.a_buf, f64::MIN_POSITIVE);
                    simd::div_into(&mut state.a_buf, &store.c[base..base + d]);
                    state.take_minima(k);
                }
            }
        }
    }

    /// Turn finished running state into signature elements.
    fn finish_state(&self, state: SketchState) -> Vec<SigElement> {
        let keep_t = !matches!(self.family, HashFamily::MinHash | HashFamily::ZeroBitCws);
        state
            .best_k
            .into_iter()
            .zip(state.best_t)
            .map(|(key, t)| SigElement {
                key,
                t: if keep_t { t } else { 0 },
            })
            .collect()
    }
}

/// Running per-hash-index argmin state shared by the one-shot and
/// streaming kernels.
#[derive(Debug)]
struct SketchState {
    best_a: Vec<f64>,
    best_h: Vec<u64>,
    best_k: Vec<u32>,
    best_t: Vec<i32>,
    t_buf: Vec<f64>,
    a_buf: Vec<f64>,
    /// Whether any support pair has been absorbed yet.
    any: bool,
}

impl SketchState {
    fn new(d: usize) -> Self {
        SketchState {
            best_a: vec![f64::INFINITY; d],
            best_h: vec![u64::MAX; d],
            best_k: vec![0u32; d],
            best_t: vec![0i32; d],
            t_buf: vec![0.0f64; d],
            a_buf: vec![0.0f64; d],
            any: false,
        }
    }

    /// Fold the just-computed `a_buf`/`t_buf` for dimension `k` into the
    /// running minima (the CWS argmin update).
    fn take_minima(&mut self, k: usize) {
        for i in 0..self.best_a.len() {
            if self.a_buf[i] < self.best_a[i] {
                self.best_a[i] = self.a_buf[i];
                self.best_k[i] = k as u32;
                self.best_t[i] = discretize_t(self.t_buf[i]);
            }
        }
        self.any = true;
    }
}

/// Incremental sketcher over one [`DrawTables`]: absorb `(dimension,
/// weight)` support pairs chunk by chunk, then [`finish`] into signature
/// elements. Feeding the same pairs in the same order as a one-shot
/// [`DrawTables::sketch`] call produces bit-identical elements — the
/// chunk-at-a-time execution layer sketches out-of-core columns without
/// ever materialising the full support.
///
/// [`finish`]: StreamSketcher::finish
#[derive(Debug)]
pub struct StreamSketcher {
    tables: Arc<DrawTables>,
    state: SketchState,
}

impl StreamSketcher {
    /// Absorb one batch of support pairs (weights must be strictly
    /// positive and finite, as produced by the support filter). Call with
    /// batches in ascending dimension order for parity with the one-shot
    /// path.
    pub fn absorb(&mut self, support: &[(usize, f64)]) {
        if support.is_empty() {
            return;
        }
        let k_needed = support.iter().map(|&(k, _)| k + 1).max().unwrap_or(0);
        self.tables.ensure(k_needed);
        let store = self.tables.store.read().unwrap();
        self.tables.absorb_with(&store, &mut self.state, support);
    }

    /// Whether no support pair has been absorbed yet (an all-zero column).
    pub fn is_empty(&self) -> bool {
        !self.state.any
    }

    /// Finish the sketch. The result is unspecified when
    /// [`is_empty`](StreamSketcher::is_empty) — callers enforce the
    /// non-empty-support contract, mirroring the one-shot path's error.
    pub fn finish(self) -> Vec<SigElement> {
        self.tables.finish_state(self.state)
    }
}

type Registry = Mutex<HashMap<(HashFamily, usize, u64), Arc<DrawTables>>>;

fn registry() -> &'static Registry {
    static REG: OnceLock<Registry> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(HashMap::new()))
}

/// The process-wide draw table for a hasher's `(family, d, seed)`,
/// creating it (empty) on first request.
pub fn draw_tables(hasher: &WeightedMinHasher) -> Arc<DrawTables> {
    let key = (hasher.family, hasher.d, hasher.seed);
    let mut reg = registry().lock().unwrap();
    Arc::clone(
        reg.entry(key)
            .or_insert_with(|| Arc::new(DrawTables::new(hasher))),
    )
}

/// Drop every registered draw table (memory release hook for long-lived
/// processes that rotate seeds; in-flight `Arc`s keep their tables alive).
pub fn clear_draw_tables() {
    registry().lock().unwrap().clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_grow_geometrically_and_serve_old_rows() {
        let hasher = WeightedMinHasher::new(HashFamily::Ccws, 8, 0xABCD).unwrap();
        let tables = DrawTables::new(&hasher);
        let small: Vec<(usize, f64)> = (0..10).map(|k| (k, 1.0 + k as f64)).collect();
        let first = tables.sketch(&small);
        assert_eq!(tables.rows(), 64);
        // Growing for a larger support must not disturb earlier rows.
        let large: Vec<(usize, f64)> = (0..300).map(|k| (k, 1.0 + k as f64)).collect();
        tables.sketch(&large);
        assert!(tables.rows() >= 300);
        assert_eq!(tables.sketch(&small), first);
    }

    #[test]
    fn registry_shares_one_table_per_combination() {
        let a = WeightedMinHasher::new(HashFamily::Icws, 16, 7).unwrap();
        let b = WeightedMinHasher::new(HashFamily::Icws, 16, 7).unwrap();
        let c = WeightedMinHasher::new(HashFamily::Icws, 16, 8).unwrap();
        assert!(Arc::ptr_eq(&draw_tables(&a), &draw_tables(&b)));
        assert!(!Arc::ptr_eq(&draw_tables(&a), &draw_tables(&c)));
    }

    #[test]
    fn concurrent_growth_is_consistent() {
        let hasher = WeightedMinHasher::new(HashFamily::Pcws, 12, 3).unwrap();
        let tables = Arc::new(DrawTables::new(&hasher));
        let support: Vec<(usize, f64)> = (0..200).map(|k| (k, 0.5 + k as f64)).collect();
        let expected = tables.sketch(&support);
        let fresh = Arc::new(DrawTables::new(&hasher));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let fresh = Arc::clone(&fresh);
                let support = support.clone();
                let expected = expected.clone();
                s.spawn(move || {
                    for _ in 0..10 {
                        assert_eq!(fresh.sketch(&support), expected);
                    }
                });
            }
        });
    }
}
