//! # minhash
//!
//! Weighted MinHash substrate for E-AFE's Feature Pre-Evaluation model:
//!
//! - [`families`] — classic MinHash plus the four consistent weighted
//!   sampling schemes the paper compares (ICWS, 0-bit CWS, PCWS, and the
//!   default CCWS);
//! - [`signature`] — fixed-length signatures and the collision-rate
//!   similarity estimator (with exact generalised Jaccard for testing);
//! - [`compressor`] — the sample compressor that projects a feature column
//!   of arbitrary length onto a fixed `d`-dimensional vector (paper §III-B,
//!   Eq. 2), enabling one pre-trained FPE classifier to serve any dataset;
//! - [`rng`] — counter-based deterministic Gamma/Beta/Uniform variates so
//!   no `d × M` random matrix is ever materialised;
//! - [`tables`] — precomputed per-`(seed, i, k)` draw tables behind the
//!   table-driven and batch sketch kernels (bit-identical to the scalar
//!   reference, pinned by the `table_parity` proptest suite).

#![warn(missing_docs)]

pub mod compressor;
pub mod error;
pub mod families;
pub mod rng;
pub mod signature;
pub mod tables;

pub use compressor::{SampleCompressor, SignatureStream, WeightBounds};
pub use error::{MinHashError, Result};
pub use families::{HashFamily, WeightedMinHasher};
pub use signature::{generalized_jaccard, SigElement, Signature};
pub use tables::{clear_draw_tables, draw_tables, DrawTables, StreamSketcher};
