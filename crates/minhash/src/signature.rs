//! MinHash signatures and similarity estimation.

use crate::error::{MinHashError, Result};
use serde::{Deserialize, Serialize};

/// One signature element: which input dimension won the minimum, plus the
/// family-specific discretised value (`t` in the CWS literature; 0 for
/// 0-bit CWS and plain MinHash, which only keep the winning dimension).
///
/// `t` is stored as an `i32` to keep cached signatures and the serialised
/// wire format compact (8 bytes per element instead of 16 with padding).
/// Range argument: `t = ⌊ln w / r + β⌋` (or `⌊w / r + β⌋` for CCWS), so
/// `|t|` exceeds `i32` range only when the Gamma/Beta draw `r` is smaller
/// than `|ln w| / 2³¹` — for the O(1)-scale weights the sample compressor
/// produces that event has probability below ~10⁻¹⁶ per draw, and the
/// conversion saturates (see `families::discretize_t`) rather than wraps,
/// so the rare overflow can only merge two already-astronomical `t` values
/// into one collision bucket, never corrupt a signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SigElement {
    /// Index of the winning input dimension (sample index for E-AFE's
    /// sample compressor).
    pub key: u32,
    /// Discretised auxiliary value; collision requires both fields to match.
    pub t: i32,
}

/// A fixed-length MinHash signature.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    elements: Vec<SigElement>,
}

impl Signature {
    /// Wrap raw elements.
    pub fn new(elements: Vec<SigElement>) -> Self {
        Self { elements }
    }

    /// Signature length `d` (the paper's MinHash output dimension).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True when the signature has no elements.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Borrow the elements.
    pub fn elements(&self) -> &[SigElement] {
        &self.elements
    }

    /// The winning dimension per hash — the indices the sample compressor
    /// gathers from the original column.
    pub fn keys(&self) -> impl Iterator<Item = usize> + '_ {
        self.elements.iter().map(|e| e.key as usize)
    }

    /// Estimate the (generalised) Jaccard similarity between the underlying
    /// weighted sets: the fraction of colliding signature elements. This is
    /// the estimator whose concentration the paper's Eq. (2) constraint
    /// relies on.
    pub fn similarity(&self, other: &Signature) -> Result<f64> {
        if self.len() != other.len() {
            return Err(MinHashError::Incompatible(format!(
                "signature lengths {} vs {}",
                self.len(),
                other.len()
            )));
        }
        if self.is_empty() {
            return Err(MinHashError::EmptyInput);
        }
        let hits = self
            .elements
            .iter()
            .zip(&other.elements)
            .filter(|(a, b)| a == b)
            .count();
        Ok(hits as f64 / self.len() as f64)
    }
}

/// Exact generalised Jaccard similarity of two non-negative weight vectors:
/// `Σ min(aᵢ, bᵢ) / Σ max(aᵢ, bᵢ)`. Ground truth for testing the estimator.
pub fn generalized_jaccard(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.len() != b.len() {
        return Err(MinHashError::Incompatible(format!(
            "weight vector lengths {} vs {}",
            a.len(),
            b.len()
        )));
    }
    if a.is_empty() {
        return Err(MinHashError::EmptyInput);
    }
    let mut num = 0.0;
    let mut den = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        num += x.min(y);
        den += x.max(y);
    }
    if den <= 0.0 {
        return Ok(1.0); // both all-zero: identical sets
    }
    Ok(num / den)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(pairs: &[(u32, i32)]) -> Signature {
        Signature::new(
            pairs
                .iter()
                .map(|&(key, t)| SigElement { key, t })
                .collect(),
        )
    }

    #[test]
    fn identical_signatures_have_similarity_one() {
        let s = sig(&[(1, 0), (2, 3), (5, -1)]);
        assert_eq!(s.similarity(&s).unwrap(), 1.0);
    }

    #[test]
    fn disjoint_signatures_have_similarity_zero() {
        let a = sig(&[(1, 0), (2, 0)]);
        let b = sig(&[(3, 0), (4, 0)]);
        assert_eq!(a.similarity(&b).unwrap(), 0.0);
    }

    #[test]
    fn partial_collision_counts_fraction() {
        let a = sig(&[(1, 0), (2, 0), (3, 0), (4, 0)]);
        let b = sig(&[(1, 0), (2, 1), (3, 0), (9, 0)]);
        // key matches at 0 and 2; position 1 differs in t.
        assert_eq!(a.similarity(&b).unwrap(), 0.5);
    }

    #[test]
    fn mismatched_lengths_error() {
        let a = sig(&[(1, 0)]);
        let b = sig(&[(1, 0), (2, 0)]);
        assert!(a.similarity(&b).is_err());
        let empty = sig(&[]);
        assert!(empty.similarity(&empty).is_err());
    }

    #[test]
    fn generalized_jaccard_basics() {
        assert_eq!(generalized_jaccard(&[1.0, 2.0], &[1.0, 2.0]).unwrap(), 1.0);
        assert_eq!(generalized_jaccard(&[1.0, 0.0], &[0.0, 1.0]).unwrap(), 0.0);
        // min-sum 1+1=2, max-sum 2+3=5.
        assert!((generalized_jaccard(&[2.0, 1.0], &[1.0, 3.0]).unwrap() - 0.4).abs() < 1e-12);
        assert_eq!(generalized_jaccard(&[0.0], &[0.0]).unwrap(), 1.0);
        assert!(generalized_jaccard(&[1.0], &[1.0, 2.0]).is_err());
        assert!(generalized_jaccard(&[], &[]).is_err());
    }

    #[test]
    fn keys_iterates_winning_dimensions() {
        let s = sig(&[(7, 0), (9, 2)]);
        assert_eq!(s.keys().collect::<Vec<_>>(), vec![7, 9]);
    }

    #[test]
    fn serde_round_trip_preserves_compact_t() {
        // The wire format must survive the i64 → i32 shrink of `t`,
        // including the saturation boundary values.
        let s = sig(&[
            (0, 0),
            (7, -3),
            (u32::MAX, i32::MAX),
            (42, i32::MIN),
            (9, 1),
        ]);
        let json = serde_json::to_string(&s).unwrap();
        let back: Signature = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
        assert_eq!(back.similarity(&s).unwrap(), 1.0);
    }
}
