//! The E-AFE **sample compressor**: project a feature column of arbitrary
//! length `M` onto a fixed-size vector of `d` values.
//!
//! Following the paper (§III-B): "The basic idea of MinHash is to assign the
//! target dimension hashing values, and select d instances with the minimum
//! hashing values as the compressed results." Each of the `d` hash functions
//! consistently selects one sample index; the compressed feature is the
//! original column's value at those indices. Because selection is consistent
//! (weighted MinHash), similar columns produce similar compressed vectors —
//! the Eq. (2) constraint — and the output length is independent of `M`,
//! which is what lets one pre-trained FPE classifier serve every dataset.

use crate::error::{MinHashError, Result};
use crate::families::{HashFamily, WeightedMinHasher};
use crate::signature::Signature;
use crate::tables::{draw_tables, StreamSketcher};
use serde::{Deserialize, Serialize};

/// Small floor added to every weight so all samples stay in the support.
const WEIGHT_FLOOR: f64 = 1e-6;

/// Streaming accumulator for the finite min/max bounds
/// [`SampleCompressor::to_weights`] normalises by — pass 1 of the two-pass
/// chunked sketch. Absorbing a column's chunks in row order produces
/// bounds bit-identical to the flat fold: each bound is the same
/// sequential `f64::min` / `f64::max` fold over the finite values in row
/// order (order matters for the `-0.0`/`0.0` bit pattern, so no
/// set-shortcut is taken).
#[derive(Debug, Clone, Copy)]
pub struct WeightBounds {
    lo: f64,
    hi: f64,
}

impl Default for WeightBounds {
    fn default() -> Self {
        Self::new()
    }
}

impl WeightBounds {
    /// Empty bounds (no finite value absorbed yet).
    pub fn new() -> Self {
        WeightBounds {
            lo: f64::INFINITY,
            hi: f64::NEG_INFINITY,
        }
    }

    /// Fold one batch of raw values into the bounds, in row order.
    pub fn absorb(&mut self, values: &[f64]) {
        for &v in values {
            if v.is_finite() {
                self.lo = self.lo.min(v);
                self.hi = self.hi.max(v);
            }
        }
    }

    /// Whether any finite value has been absorbed.
    pub fn has_finite(&self) -> bool {
        self.lo <= self.hi
    }

    /// The weight of one raw value under these bounds — the exact
    /// per-element expression of [`SampleCompressor::to_weights`].
    fn weight(&self, v: f64) -> f64 {
        if !self.has_finite() {
            return WEIGHT_FLOOR;
        }
        let span = (self.hi - self.lo).max(1e-12);
        if v.is_finite() {
            (v - self.lo) / span + WEIGHT_FLOOR
        } else {
            WEIGHT_FLOOR
        }
    }
}

/// Pass 2 of the two-pass chunked sketch: feed raw column values chunk by
/// chunk (in row order) and finish into the column's [`Signature`],
/// bit-identical to [`SampleCompressor::signature`] over the concatenated
/// column. Created by [`SampleCompressor::begin_signature`] with the
/// bounds from pass 1.
#[derive(Debug)]
pub struct SignatureStream {
    sketcher: StreamSketcher,
    bounds: WeightBounds,
    next_row: usize,
    support_buf: Vec<(usize, f64)>,
}

impl SignatureStream {
    /// Absorb the next chunk of raw column values (rows
    /// `next_row..next_row + chunk.len()`).
    pub fn absorb(&mut self, chunk: &[f64]) {
        self.support_buf.clear();
        for (off, &v) in chunk.iter().enumerate() {
            let w = self.bounds.weight(v);
            // Same support filter as the one-shot path: only strictly
            // positive finite weights can win a hash.
            if w > 0.0 && w.is_finite() {
                self.support_buf.push((self.next_row + off, w));
            }
        }
        self.sketcher.absorb(&self.support_buf);
        self.next_row += chunk.len();
    }

    /// Rows absorbed so far.
    pub fn rows(&self) -> usize {
        self.next_row
    }

    /// Finish into the signature; errors on an empty column or an empty
    /// support, exactly like the one-shot path.
    pub fn finish(self) -> Result<Signature> {
        if self.next_row == 0 {
            return Err(MinHashError::EmptyInput);
        }
        if self.sketcher.is_empty() {
            return Err(MinHashError::InvalidParam(
                "weight vector has empty support (all weights zero)".into(),
            ));
        }
        Ok(Signature::new(self.sketcher.finish()))
    }
}

/// Compresses feature columns of arbitrary length into `d` values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SampleCompressor {
    hasher: WeightedMinHasher,
}

impl SampleCompressor {
    /// New compressor with the given family, output dimension `d` (the
    /// paper's default is 48 with CCWS) and seed.
    pub fn new(family: HashFamily, d: usize, seed: u64) -> Result<Self> {
        Ok(Self {
            hasher: WeightedMinHasher::new(family, d, seed)?,
        })
    }

    /// Output dimension `d`.
    pub fn d(&self) -> usize {
        self.hasher.d
    }

    /// The hash family in use.
    pub fn family(&self) -> HashFamily {
        self.hasher.family
    }

    /// The seed shared by all hash functions (part of any content-addressed
    /// cache key for this compressor's output).
    pub fn seed(&self) -> u64 {
        self.hasher.seed
    }

    /// Turn raw (possibly negative / non-finite) feature values into the
    /// non-negative weights weighted MinHash requires: min-shift to zero,
    /// scale to [0, 1] and add a small floor so every sample stays in the
    /// support. Non-finite values get the floor weight.
    pub fn to_weights(values: &[f64]) -> Vec<f64> {
        let mut bounds = WeightBounds::new();
        bounds.absorb(values);
        values.iter().map(|&v| bounds.weight(v)).collect()
    }

    /// The column's MinHash signature over [`to_weights`](Self::to_weights)
    /// weights — the content-addressed unit the runtime's `SignatureCache`
    /// stores, from which [`compress_with_signature`] /
    /// [`compress_normalized_with_signature`] rebuild the compressed vector
    /// with a plain gather.
    ///
    /// [`compress_with_signature`]: Self::compress_with_signature
    /// [`compress_normalized_with_signature`]: Self::compress_normalized_with_signature
    pub fn signature(&self, values: &[f64]) -> Result<Signature> {
        if values.is_empty() {
            return Err(MinHashError::EmptyInput);
        }
        let weights = Self::to_weights(values);
        self.hasher.signature_tabled(&weights)
    }

    /// Signatures for many columns in one batch table pass (each column's
    /// signature bit-identical to [`signature`](Self::signature)).
    pub fn signature_batch(&self, columns: &[&[f64]]) -> Result<Vec<Signature>> {
        if columns.iter().any(|c| c.is_empty()) {
            return Err(MinHashError::EmptyInput);
        }
        let weights: Vec<Vec<f64>> = columns.iter().map(|c| Self::to_weights(c)).collect();
        let refs: Vec<&[f64]> = weights.iter().map(|w| w.as_slice()).collect();
        self.hasher.signature_batch(&refs)
    }

    /// Begin a streaming signature over a column whose raw values will
    /// arrive chunk by chunk — pass 2 of the two-pass chunked sketch.
    /// `bounds` must come from a pass-1 [`WeightBounds`] fold over the
    /// same column in the same row order; the finished signature is then
    /// bit-identical to [`signature`](Self::signature) over the flat
    /// column.
    pub fn begin_signature(&self, bounds: WeightBounds) -> SignatureStream {
        SignatureStream {
            sketcher: draw_tables(&self.hasher).stream(),
            bounds,
            next_row: 0,
            support_buf: Vec::new(),
        }
    }

    /// Gather the compressed vector for a column from its precomputed
    /// signature: the column's values at the `d` selected indices
    /// (non-finite values map to 0).
    pub fn compress_with_signature(&self, values: &[f64], sig: &Signature) -> Vec<f64> {
        sig.keys()
            .map(|k| {
                let v = values[k];
                if v.is_finite() {
                    v
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// [`compress_with_signature`](Self::compress_with_signature) followed
    /// by the z-score normalisation of
    /// [`compress_normalized`](Self::compress_normalized).
    pub fn compress_normalized_with_signature(&self, values: &[f64], sig: &Signature) -> Vec<f64> {
        let mut out = self.compress_with_signature(values, sig);
        Self::normalize(&mut out);
        out
    }

    /// Compress one feature column to exactly `d` values: the column's
    /// values at the `d` consistently-sampled indices.
    pub fn compress(&self, values: &[f64]) -> Result<Vec<f64>> {
        let sig = self.signature(values)?;
        Ok(self.compress_with_signature(values, &sig))
    }

    /// Compress and then z-score normalise, producing the fixed-size input
    /// representation the FPE binary classifier is trained on (so columns
    /// with different raw scales are comparable across datasets).
    pub fn compress_normalized(&self, values: &[f64]) -> Result<Vec<f64>> {
        let mut out = self.compress(values)?;
        Self::normalize(&mut out);
        Ok(out)
    }

    /// Map one gathered value the way
    /// [`compress_with_signature`](Self::compress_with_signature) does:
    /// non-finite values become 0. Chunked gathers use this per selected
    /// index to stay bit-identical to the flat gather.
    pub fn gather_value(v: f64) -> f64 {
        if v.is_finite() {
            v
        } else {
            0.0
        }
    }

    /// In-place z-score normalisation — public so chunked gathers can
    /// apply the exact flat-path normalisation to an externally assembled
    /// compressed vector; near-constant vectors flatten to 0.
    pub fn normalize(out: &mut [f64]) {
        let n = out.len() as f64;
        let mean = out.iter().sum::<f64>() / n;
        let var = out.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        let std = var.sqrt();
        if std > 1e-12 {
            for v in out.iter_mut() {
                *v = (*v - mean) / std;
            }
        } else {
            out.fill(0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compressor() -> SampleCompressor {
        SampleCompressor::new(HashFamily::Ccws, 48, 0xE_AFE).unwrap()
    }

    #[test]
    fn output_has_fixed_dimension_regardless_of_input_length() {
        let c = compressor();
        for n in [10usize, 100, 1000, 48, 7] {
            let values: Vec<f64> = (0..n).map(|i| (i as f64).sin() * 3.0 - 1.0).collect();
            let out = c.compress(&values).unwrap();
            assert_eq!(out.len(), 48, "input length {n}");
        }
    }

    #[test]
    fn compression_is_deterministic() {
        let c = compressor();
        let values: Vec<f64> = (0..500).map(|i| (i as f64 * 0.37).cos()).collect();
        assert_eq!(c.compress(&values).unwrap(), c.compress(&values).unwrap());
    }

    #[test]
    fn compressed_values_come_from_the_input() {
        let c = compressor();
        let values: Vec<f64> = (0..200).map(|i| i as f64 * 10.0).collect();
        for v in c.compress(&values).unwrap() {
            assert!(values.contains(&v), "{v} not in input");
        }
    }

    #[test]
    fn weights_are_positive_and_handle_negatives() {
        let w = SampleCompressor::to_weights(&[-5.0, 0.0, 5.0, f64::NAN]);
        assert_eq!(w.len(), 4);
        assert!(w.iter().all(|&x| x > 0.0));
        assert!(w[2] > w[1] && w[1] > w[0]);
    }

    #[test]
    fn constant_column_compresses_without_error() {
        let c = compressor();
        let out = c.compress(&vec![3.0; 100]).unwrap();
        assert!(out.iter().all(|&v| v == 3.0));
        let norm = c.compress_normalized(&vec![3.0; 100]).unwrap();
        assert!(norm.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn normalized_output_is_zero_mean_unit_std() {
        let c = compressor();
        let values: Vec<f64> = (0..300)
            .map(|i| (i as f64 * 1.7).sin() * 40.0 + 7.0)
            .collect();
        let out = c.compress_normalized(&values).unwrap();
        let mean: f64 = out.iter().sum::<f64>() / out.len() as f64;
        let var: f64 = out.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / out.len() as f64;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn similar_columns_compress_similarly() {
        // Eq. (2): |sim(D¹,D²) − sim(D̃¹,D̃²)| < ε in spirit — a column and a
        // lightly perturbed copy should share most selected indices.
        let c = SampleCompressor::new(HashFamily::Ccws, 64, 1).unwrap();
        let a: Vec<f64> = (0..400).map(|i| (i as f64 * 0.11).sin() + 2.0).collect();
        let b: Vec<f64> = a.iter().map(|v| v * 1.01).collect();
        let ca = c.compress(&a).unwrap();
        let cb = c.compress(&b).unwrap();
        let close = ca
            .iter()
            .zip(&cb)
            .filter(|(x, y)| (**x - **y / 1.01).abs() < 1e-9)
            .count();
        assert!(
            close > 40,
            "only {close}/64 indices stable under perturbation"
        );
    }

    #[test]
    fn empty_input_errors() {
        assert!(compressor().compress(&[]).is_err());
    }

    fn streamed_signature(c: &SampleCompressor, values: &[f64], chunk_rows: usize) -> Signature {
        let mut bounds = WeightBounds::new();
        for chunk in values.chunks(chunk_rows) {
            bounds.absorb(chunk);
        }
        let mut stream = c.begin_signature(bounds);
        for chunk in values.chunks(chunk_rows) {
            stream.absorb(chunk);
        }
        assert_eq!(stream.rows(), values.len());
        stream.finish().unwrap()
    }

    #[test]
    fn streamed_signature_matches_flat_for_every_family() {
        let values: Vec<f64> = (0..500)
            .map(|i| (i as f64 * 0.73).sin() * 25.0 - 4.0)
            .collect();
        for family in HashFamily::ALL {
            let c = SampleCompressor::new(family, 48, 0xBEEF).unwrap();
            let flat = c.signature(&values).unwrap();
            for chunk_rows in [1usize, 7, 128, 500, 1000] {
                assert_eq!(
                    streamed_signature(&c, &values, chunk_rows),
                    flat,
                    "{family:?} chunk_rows={chunk_rows}"
                );
            }
        }
    }

    #[test]
    fn streamed_signature_matches_flat_with_nonfinite_and_negatives() {
        let mut values: Vec<f64> = (0..300).map(|i| (i as f64) - 150.0).collect();
        values[3] = f64::NAN;
        values[77] = f64::INFINITY;
        values[150] = -0.0;
        values[151] = 0.0;
        let c = compressor();
        let flat = c.signature(&values).unwrap();
        assert_eq!(streamed_signature(&c, &values, 64), flat);
    }

    #[test]
    fn streamed_empty_column_errors_like_flat() {
        let c = compressor();
        let stream = c.begin_signature(WeightBounds::new());
        assert!(stream.finish().is_err());
    }

    #[test]
    fn streamed_gather_matches_flat_compression() {
        let values: Vec<f64> = (0..400).map(|i| (i as f64 * 1.9).cos() * 7.0).collect();
        let c = compressor();
        let flat = c.compress_normalized(&values).unwrap();
        let sig = streamed_signature(&c, &values, 96);
        let mut gathered: Vec<f64> = sig
            .keys()
            .map(|k| SampleCompressor::gather_value(values[k]))
            .collect();
        SampleCompressor::normalize(&mut gathered);
        assert_eq!(gathered, flat);
    }

    #[test]
    fn nonfinite_values_are_compressible() {
        let c = compressor();
        let mut values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        values[5] = f64::NAN;
        values[50] = f64::INFINITY;
        let out = c.compress(&values).unwrap();
        assert!(out.iter().all(|v| v.is_finite()));
    }
}
