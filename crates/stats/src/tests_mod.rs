//! Hypothesis tests: paired t-test, Welch's two-sample t-test, and the
//! Wilcoxon signed-rank test — the machinery behind the paper's Table VI
//! significance analysis of E-AFE against each baseline.

use crate::dist::{normal_cdf, t_two_sided_p};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced by the hypothesis tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StatsError {
    /// Samples were empty or mismatched in length.
    BadInput(String),
    /// The statistic is undefined (e.g. zero variance everywhere).
    Degenerate(String),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::BadInput(m) => write!(f, "bad input: {m}"),
            StatsError::Degenerate(m) => write!(f, "degenerate statistic: {m}"),
        }
    }
}

impl std::error::Error for StatsError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, StatsError>;

/// Outcome of a hypothesis test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TestResult {
    /// The test statistic (t or z).
    pub statistic: f64,
    /// Degrees of freedom (0 for the normal-approximated Wilcoxon).
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Sample mean.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n − 1 denominator).
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Paired two-sided t-test on matched samples (the appropriate test for the
/// paper's per-dataset method comparison).
pub fn paired_t_test(a: &[f64], b: &[f64]) -> Result<TestResult> {
    if a.len() != b.len() {
        return Err(StatsError::BadInput(format!(
            "paired samples differ in length: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    if a.len() < 2 {
        return Err(StatsError::BadInput("need at least 2 pairs".into()));
    }
    let diffs: Vec<f64> = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = diffs.len() as f64;
    let md = mean(&diffs);
    let var = sample_variance(&diffs);
    if var <= 0.0 {
        if md == 0.0 {
            // All differences identical and zero → no evidence of difference.
            return Ok(TestResult {
                statistic: 0.0,
                df: n - 1.0,
                p_value: 1.0,
            });
        }
        return Err(StatsError::Degenerate(
            "all pairwise differences identical and non-zero".into(),
        ));
    }
    let t = md / (var / n).sqrt();
    Ok(TestResult {
        statistic: t,
        df: n - 1.0,
        p_value: t_two_sided_p(t, n - 1.0),
    })
}

/// Welch's two-sided t-test for independent samples with unequal variances.
pub fn welch_t_test(a: &[f64], b: &[f64]) -> Result<TestResult> {
    if a.len() < 2 || b.len() < 2 {
        return Err(StatsError::BadInput(
            "need at least 2 observations per sample".into(),
        ));
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (va, vb) = (sample_variance(a), sample_variance(b));
    let se2 = va / na + vb / nb;
    if se2 <= 0.0 {
        return Err(StatsError::Degenerate(
            "zero variance in both samples".into(),
        ));
    }
    let t = (mean(a) - mean(b)) / se2.sqrt();
    // Welch–Satterthwaite degrees of freedom.
    let df = se2 * se2 / ((va / na) * (va / na) / (na - 1.0) + (vb / nb) * (vb / nb) / (nb - 1.0));
    Ok(TestResult {
        statistic: t,
        df,
        p_value: t_two_sided_p(t, df),
    })
}

/// Wilcoxon signed-rank test with normal approximation and tie-corrected
/// variance; zero differences are dropped (Wilcoxon's original treatment).
pub fn wilcoxon_signed_rank(a: &[f64], b: &[f64]) -> Result<TestResult> {
    if a.len() != b.len() {
        return Err(StatsError::BadInput(format!(
            "paired samples differ in length: {} vs {}",
            a.len(),
            b.len()
        )));
    }
    let mut diffs: Vec<f64> = a
        .iter()
        .zip(b)
        .map(|(x, y)| x - y)
        .filter(|d| *d != 0.0)
        .collect();
    let n = diffs.len();
    if n < 2 {
        return Err(StatsError::BadInput(
            "need at least 2 non-zero differences".into(),
        ));
    }
    // Rank |d| with average ranks for ties.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        diffs[i]
            .abs()
            .partial_cmp(&diffs[j].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut tie_correction = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && diffs[order[j + 1]].abs() == diffs[order[i]].abs() {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks are 1-based
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        let t = (j - i + 1) as f64;
        tie_correction += t * t * t - t;
        i = j + 1;
    }
    let w_plus: f64 = diffs
        .iter()
        .zip(&ranks)
        .filter(|(d, _)| **d > 0.0)
        .map(|(_, r)| r)
        .sum();
    let nf = n as f64;
    let mean_w = nf * (nf + 1.0) / 4.0;
    let var_w = nf * (nf + 1.0) * (2.0 * nf + 1.0) / 24.0 - tie_correction / 48.0;
    if var_w <= 0.0 {
        return Err(StatsError::Degenerate("zero variance of W".into()));
    }
    let z = (w_plus - mean_w) / var_w.sqrt();
    diffs.clear();
    Ok(TestResult {
        statistic: z,
        df: 0.0,
        p_value: 2.0 * (1.0 - normal_cdf(z.abs())),
    })
}

#[cfg(test)]
#[allow(clippy::module_inception)] // tests-of-the-tests-module
mod tests {
    use super::*;

    #[test]
    fn paired_t_detects_shift() {
        let a = [1.1, 2.2, 3.1, 4.3, 5.2, 6.1, 7.3, 8.2];
        // Near-constant positive shift with slight jitter → strong evidence.
        let b: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, x)| x - 0.5 - 0.01 * (i % 3) as f64)
            .collect();
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
        assert!(r.statistic > 0.0);
    }

    #[test]
    fn paired_t_no_difference() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let r = paired_t_test(&a, &a).unwrap();
        assert_eq!(r.p_value, 1.0);
        assert_eq!(r.statistic, 0.0);
    }

    #[test]
    fn paired_t_symmetric_noise_is_insignificant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.1, 1.9, 3.1, 3.9, 5.1, 4.9];
        let r = paired_t_test(&a, &b).unwrap();
        assert!(r.p_value > 0.2, "p = {}", r.p_value);
    }

    #[test]
    fn paired_t_rejects_bad_input() {
        assert!(paired_t_test(&[1.0], &[1.0]).is_err());
        assert!(paired_t_test(&[1.0, 2.0], &[1.0]).is_err());
        // Identical non-zero differences → degenerate.
        assert!(paired_t_test(&[2.0, 3.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn welch_detects_mean_difference() {
        let a = [5.1, 5.3, 4.9, 5.2, 5.0, 5.1, 4.8, 5.2];
        let b = [3.0, 3.2, 2.9, 3.1, 3.0, 2.8, 3.3, 3.1];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_value < 1e-6, "p = {}", r.p_value);
        assert!(r.df > 5.0 && r.df < 15.0);
    }

    #[test]
    fn welch_similar_samples_insignificant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.5, 2.5, 2.0, 4.5, 4.0];
        let r = welch_t_test(&a, &b).unwrap();
        assert!(r.p_value > 0.3, "p = {}", r.p_value);
    }

    #[test]
    fn wilcoxon_detects_consistent_improvement() {
        let a: Vec<f64> = (0..20).map(|i| 0.8 + i as f64 * 0.001).collect();
        let b: Vec<f64> = a.iter().map(|x| x - 0.05).collect();
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value < 0.001, "p = {}", r.p_value);
    }

    #[test]
    fn wilcoxon_balanced_signs_insignificant() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.1, 1.9, 3.1, 3.9, 5.1, 5.9];
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.p_value > 0.5, "p = {}", r.p_value);
    }

    #[test]
    fn wilcoxon_drops_zero_differences() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.0, 1.5, 2.5, 3.5, 4.5]; // first pair ties
        let r = wilcoxon_signed_rank(&a, &b).unwrap();
        assert!(r.statistic > 0.0);
        assert!(wilcoxon_signed_rank(&[1.0, 2.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn descriptive_stats() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(mean(&[]), 0.0);
        assert!((sample_variance(&[1.0, 2.0, 3.0, 4.0]) - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(sample_variance(&[1.0]), 0.0);
    }
}
