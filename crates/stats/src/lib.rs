//! # eafe-stats
//!
//! Statistical testing substrate for E-AFE's improvement analysis (the
//! paper's Table VI reports paired p-values of E-AFE against AutoFS_R,
//! RTDL_N and NFS for both performance and running time):
//!
//! - [`dist`] — standard normal CDF, Student's t CDF, incomplete beta;
//! - [`tests`] — paired t-test, Welch's t-test, Wilcoxon signed-rank.

#![warn(missing_docs)]

pub mod dist;
#[path = "tests_mod.rs"]
pub mod tests;

pub use dist::{incomplete_beta, ln_gamma, normal_cdf, t_cdf, t_two_sided_p};
pub use tests::{
    mean, paired_t_test, sample_variance, welch_t_test, wilcoxon_signed_rank, StatsError,
    TestResult,
};
