//! Probability distributions needed for hypothesis testing: the standard
//! normal CDF and Student's t CDF (via the regularised incomplete beta
//! function).

/// Standard normal CDF Φ(x), via the complementary error function
/// (Abramowitz & Stegun 7.1.26 polynomial, |error| < 1.5e-7).
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Complementary error function.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Numerical Recipes' erfc approximation (|error| < 1.2e-7 everywhere).
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Regularised incomplete beta function `I_x(a, b)` via continued fraction
/// (Numerical Recipes `betai`).
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_cf(a, b, x) / a
    } else {
        1.0 - front * beta_cf(b, a, 1.0 - x) / b
    }
}

/// Continued fraction for the incomplete beta function.
fn beta_cf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m_f = m as f64;
        let m2 = 2.0 * m_f;
        let aa = m_f * (b - m_f) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m_f) * (qab + m_f) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// Student's t CDF with `df` degrees of freedom.
pub fn t_cdf(t: f64, df: f64) -> f64 {
    if df <= 0.0 {
        return f64::NAN;
    }
    let x = df / (df + t * t);
    let p = 0.5 * incomplete_beta(df / 2.0, 0.5, x);
    if t >= 0.0 {
        1.0 - p
    } else {
        p
    }
}

/// Two-sided p-value for a t statistic.
pub fn t_two_sided_p(t: f64, df: f64) -> f64 {
    2.0 * (1.0 - t_cdf(t.abs(), df))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_known_values() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.96) - 0.9750021).abs() < 1e-4);
        assert!((normal_cdf(-1.96) - 0.0249979).abs() < 1e-4);
        assert!(normal_cdf(8.0) > 0.999999);
        assert!(normal_cdf(-8.0) < 1e-6);
    }

    #[test]
    fn ln_gamma_factorials() {
        // Γ(n) = (n-1)!
        assert!((ln_gamma(5.0) - (24.0f64).ln()).abs() < 1e-10);
        assert!((ln_gamma(1.0)).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn incomplete_beta_boundaries_and_symmetry() {
        assert_eq!(incomplete_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(incomplete_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(a,b) = 1 − I_{1−x}(b,a)
        let v = incomplete_beta(2.5, 1.5, 0.3);
        let w = 1.0 - incomplete_beta(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-10);
        // I_x(1,1) = x (uniform distribution).
        assert!((incomplete_beta(1.0, 1.0, 0.42) - 0.42).abs() < 1e-10);
    }

    #[test]
    fn t_cdf_known_values() {
        // t distribution with large df approaches normal.
        assert!((t_cdf(1.96, 1e6) - normal_cdf(1.96)).abs() < 1e-4);
        // Symmetric around 0.
        assert!((t_cdf(0.0, 7.0) - 0.5).abs() < 1e-10);
        assert!((t_cdf(1.5, 7.0) + t_cdf(-1.5, 7.0) - 1.0).abs() < 1e-10);
        // t = 2.776 at df = 4 is the 97.5th percentile.
        assert!((t_cdf(2.776, 4.0) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn two_sided_p_matches_tables() {
        // |t| = 2.776, df = 4 → p ≈ 0.05.
        assert!((t_two_sided_p(2.776, 4.0) - 0.05).abs() < 2e-3);
        assert!((t_two_sided_p(-2.776, 4.0) - 0.05).abs() < 2e-3);
    }
}
