//! Shared harness for the per-table / per-figure benchmark binaries.
//!
//! Every binary accepts the same flags:
//!
//! ```text
//! --scale <f>        sample-count scale factor in (0,1]      (default 0.05)
//! --datasets <list>  comma-separated Table III names, or "all", or
//!                    "motivation" (the 4 datasets of Table I / Fig. 1)
//! --epochs1 <n>      stage-1 epochs                          (default 4)
//! --epochs2 <n>      stage-2 epochs                          (default 8)
//! --steps <n>        transformations per agent per epoch     (default 3)
//! --max-features <n> RF-importance pre-selection cap         (default 16)
//! --seed <n>         master seed                             (default 0xEAFE)
//! --out <dir>        artifact directory                      (default bench_results)
//! --threads <n>      worker-thread ceiling, 0 = all cores    (default 0)
//! --split-method <m> forest split finding: exact|hist        (default hist)
//! --no-cache         disable score-cache sharing across runs
//! --quiet            suppress per-dataset/per-epoch progress lines
//! --metrics          print the end-of-run telemetry summary
//! --trace-out <path> stream telemetry events to a JSON-lines file
//! ```
//!
//! `--metrics` / `--trace-out` install the workspace telemetry sink for
//! the duration of the run; without them instrumentation costs one atomic
//! load per site. Every artifact's JSON envelope carries a `telemetry`
//! block (counters, histograms, span aggregates — empty when disabled).
//!
//! Paper-fidelity note: the defaults are scaled down from the paper's
//! 200-epoch runs so every binary finishes in minutes on a laptop. The
//! comparisons the paper makes are relative (who wins, by what factor),
//! which survives proportional scaling; EXPERIMENTS.md records the exact
//! settings used for the committed results.

#![warn(missing_docs)]

use eafe::{bootstrap_fpe, EafeConfig, FpeModel, FpeSearchSpace};
use learners::{Evaluator, SplitMethod};
use minhash::HashFamily;
use runtime::ScoreCache;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::Arc;
use tabular::{find_dataset, DataFrame, DatasetInfo, TARGET_DATASETS};

pub mod trace;

/// Common command-line arguments.
#[derive(Debug, Clone)]
pub struct CommonArgs {
    /// Sample-count scale factor.
    pub scale: f64,
    /// Dataset names to run on.
    pub datasets: Vec<String>,
    /// Stage-1 epochs.
    pub epochs1: usize,
    /// Stage-2 epochs.
    pub epochs2: usize,
    /// Transformations per agent per epoch.
    pub steps: usize,
    /// Pre-selection cap on original features.
    pub max_features: usize,
    /// Master seed.
    pub seed: u64,
    /// Output directory for JSON artifacts.
    pub out: PathBuf,
    /// Worker-thread ceiling (0 = the machine's available parallelism).
    pub threads: usize,
    /// Forest split finding for every downstream evaluation
    /// (`--split-method exact|hist`).
    pub split_method: SplitMethod,
    /// Score cache shared by every run this binary launches (`None` when
    /// `--no-cache` disables sharing for A/B wall-clock comparisons).
    pub cache: Option<Arc<ScoreCache<f64>>>,
    /// Suppress progress lines (`--quiet`); data tables and the telemetry
    /// summary still print.
    pub quiet: bool,
    /// Print the end-of-run telemetry summary (`--metrics`).
    pub metrics: bool,
    /// Stream telemetry events to this JSON-lines file (`--trace-out`).
    pub trace_out: Option<PathBuf>,
    /// In-memory event collector backing the end-of-run summary; `Some`
    /// exactly when telemetry was switched on by `--metrics`/`--trace-out`.
    pub collector: Option<Arc<telemetry::MemorySink>>,
}

impl Default for CommonArgs {
    fn default() -> Self {
        Self {
            scale: 0.05,
            datasets: vec![
                "PimaIndian".into(),
                "credit-a".into(),
                "diabetes".into(),
                "German Credit".into(),
            ],
            epochs1: 4,
            epochs2: 8,
            steps: 3,
            max_features: 16,
            seed: 0xE_AFE,
            out: PathBuf::from("bench_results"),
            threads: 0,
            split_method: SplitMethod::Histogram,
            cache: Some(Arc::new(ScoreCache::new(
                runtime::evaluator::DEFAULT_CACHE_CAPACITY,
            ))),
            quiet: false,
            metrics: false,
            trace_out: None,
            collector: None,
        }
    }
}

impl CommonArgs {
    /// Parse from `std::env::args`; unknown flags abort with usage help.
    pub fn parse() -> CommonArgs {
        let mut args = CommonArgs::default();
        let mut it = std::env::args().skip(1);
        while let Some(flag) = it.next() {
            let mut value = |name: &str| {
                it.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--scale" => args.scale = value("--scale").parse().expect("float scale"),
                "--datasets" => {
                    let raw = value("--datasets");
                    args.datasets = match raw.as_str() {
                        "all" => TARGET_DATASETS.iter().map(|d| d.name.to_string()).collect(),
                        "motivation" => tabular::registry::motivation_datasets()
                            .iter()
                            .map(|d| d.name.to_string())
                            .collect(),
                        list => list.split(',').map(|s| s.trim().to_string()).collect(),
                    };
                }
                "--epochs1" => args.epochs1 = value("--epochs1").parse().expect("int epochs1"),
                "--epochs2" => args.epochs2 = value("--epochs2").parse().expect("int epochs2"),
                "--steps" => args.steps = value("--steps").parse().expect("int steps"),
                "--max-features" => {
                    args.max_features = value("--max-features").parse().expect("int max-features")
                }
                "--seed" => args.seed = value("--seed").parse().expect("int seed"),
                "--out" => args.out = PathBuf::from(value("--out")),
                "--threads" => args.threads = value("--threads").parse().expect("int threads"),
                "--split-method" => {
                    args.split_method = match value("--split-method").as_str() {
                        "exact" => SplitMethod::Exact,
                        "hist" | "histogram" => SplitMethod::Histogram,
                        other => panic!("--split-method must be exact|hist, got {other}"),
                    }
                }
                "--no-cache" => args.cache = None,
                "--quiet" => args.quiet = true,
                "--metrics" => args.metrics = true,
                "--trace-out" => args.trace_out = Some(PathBuf::from(value("--trace-out"))),
                "--help" | "-h" => {
                    eprintln!(
                        "flags: --scale f --datasets list|all|motivation --epochs1 n \
                         --epochs2 n --steps n --max-features n --seed n --out dir \
                         --threads n --split-method exact|hist --no-cache --quiet \
                         --metrics --trace-out path"
                    );
                    std::process::exit(0);
                }
                other => panic!("unknown flag {other}; try --help"),
            }
        }
        assert!(
            args.scale > 0.0 && args.scale <= 1.0,
            "--scale must be in (0,1]"
        );
        runtime::set_global_threads(args.threads);
        args.install_telemetry();
        args
    }

    /// Install the telemetry sink when `--metrics` or `--trace-out` asked
    /// for it: an in-memory collector (for the end-of-run summary and the
    /// artifact `telemetry` block), fanned out to a JSON-lines file when
    /// `--trace-out` names one. Public so bins with bespoke flag parsers
    /// (`perf_forest`, `perf_minhash`) can opt in after setting the fields.
    pub fn install_telemetry(&mut self) {
        if !self.metrics && self.trace_out.is_none() {
            return;
        }
        let collector = Arc::new(telemetry::MemorySink::new());
        let mut sinks: Vec<Arc<dyn telemetry::Sink>> =
            vec![Arc::clone(&collector) as Arc<dyn telemetry::Sink>];
        if let Some(path) = &self.trace_out {
            if let Some(dir) = path.parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create trace-out dir");
                }
            }
            let file = telemetry::JsonLinesSink::create(path)
                .unwrap_or_else(|e| panic!("open {path:?}: {e}"));
            sinks.push(Arc::new(file));
        }
        telemetry::install(Arc::new(telemetry::FanoutSink(sinks)));
        self.collector = Some(collector);
    }

    /// Resolve dataset infos, failing loudly on unknown names.
    pub fn dataset_infos(&self) -> Vec<DatasetInfo> {
        self.datasets
            .iter()
            .map(|n| find_dataset(n).unwrap_or_else(|_| panic!("unknown dataset `{n}`")))
            .collect()
    }

    /// Load one dataset at the configured scale, with RF-importance
    /// pre-selection down to `max_features` columns (the paper's §IV-B
    /// pre-step for wide datasets).
    pub fn load(&self, info: &DatasetInfo) -> DataFrame {
        let frame = info
            .load_scaled(self.scale)
            .unwrap_or_else(|e| panic!("generating {}: {e}", info.name));
        eafe::preselect_features(&frame, self.max_features, self.seed)
            .unwrap_or_else(|e| panic!("pre-selecting {}: {e}", info.name))
    }

    /// Engine configuration derived from the flags.
    pub fn config(&self) -> EafeConfig {
        let mut cfg = EafeConfig {
            stage1_epochs: self.epochs1,
            stage2_epochs: self.epochs2,
            steps_per_epoch: self.steps,
            seed: self.seed,
            ..EafeConfig::default()
        };
        cfg.evaluator = self.evaluator();
        cfg
    }

    /// The shared downstream evaluator (5-fold RF CV, small fast forests,
    /// split finding per `--split-method`).
    pub fn evaluator(&self) -> Evaluator {
        let mut e = Evaluator {
            folds: 5,
            seed: self.seed,
            ..Evaluator::default()
        };
        e.forest.n_trees = 10;
        e.forest.tree.max_depth = 8;
        e.forest.tree.split = self.split_method;
        e
    }

    /// Load (or pre-train and cache) the FPE model for a hash family.
    /// Caching makes the FPE reusable across bench binaries, mirroring the
    /// paper's "the FPE model can be reused" deployment argument.
    pub fn fpe_model(&self, family: HashFamily, d: usize) -> FpeModel {
        std::fs::create_dir_all(&self.out).expect("create out dir");
        let path = self
            .out
            .join(format!("fpe_{}_{d}_{}.json", family.name(), self.seed));
        if let Ok(json) = std::fs::read_to_string(&path) {
            if let Ok(model) = FpeModel::from_json(&json) {
                return model;
            }
        }
        let space = FpeSearchSpace {
            families: vec![family],
            dims: vec![d],
            thre: 0.01, // the paper's default label threshold
            seed: self.seed,
        };
        let mut ev = self.evaluator();
        ev.folds = 3; // labelling is the expensive part; 3-fold suffices
        let model = bootstrap_fpe(12, 6, &space, &ev, self.seed)
            .expect("FPE bootstrap should succeed on the synthetic corpus");
        std::fs::write(&path, model.to_json().expect("serialise FPE")).expect("cache FPE model");
        model
    }

    /// Wrap a downstream evaluator with this binary's shared score cache
    /// (or a private one under `--no-cache`).
    pub fn cached(&self, evaluator: Evaluator) -> eafe::CachedEvaluator {
        match &self.cache {
            Some(c) => runtime::Evaluator::with_cache(evaluator, Arc::clone(c)),
            None => runtime::Evaluator::new(evaluator),
        }
    }

    /// Attach this binary's shared score cache to an engine, so every
    /// method/dataset run contributes to and benefits from one cache.
    /// No-op under `--no-cache`.
    pub fn engine(&self, engine: eafe::Engine) -> eafe::Engine {
        match &self.cache {
            Some(c) => engine.with_cache(Arc::clone(c)),
            None => engine,
        }
    }

    /// Run the AutoFS_R baseline through this binary's shared cache.
    pub fn run_autofs_r(
        &self,
        config: &EafeConfig,
        frame: &DataFrame,
    ) -> eafe::Result<eafe::RunResult> {
        Ok(self.run_autofs_r_full(config, frame)?.0)
    }

    /// Like [`CommonArgs::run_autofs_r`], but also returning the
    /// engineered frame (Table V re-evaluation).
    pub fn run_autofs_r_full(
        &self,
        config: &EafeConfig,
        frame: &DataFrame,
    ) -> eafe::Result<(eafe::RunResult, DataFrame)> {
        match &self.cache {
            Some(c) => eafe::baselines::run_autofs_r_cached(config, frame, Arc::clone(c)),
            None => eafe::baselines::run_autofs_r_full(config, frame),
        }
    }

    /// The runtime header recorded in every JSON artifact: thread count,
    /// the shared score cache's cumulative counters at write time, and the
    /// wall-clock write timestamp (timestamps live here so the captured
    /// run logs stay byte-deterministic).
    pub fn artifact_header(&self) -> ArtifactHeader {
        let stats = self.cache.as_ref().map(|c| c.stats()).unwrap_or_default();
        ArtifactHeader {
            threads: runtime::global_threads(),
            cache_shared: self.cache.is_some(),
            cache_hits: stats.hits,
            cache_misses: stats.misses,
            cache_hit_rate: stats.hit_rate(),
            cache_evictions: stats.evictions,
            simd_isa: simd::active_isa().name().to_string(),
            simd_arch_feature: simd::arch_feature_enabled(),
            cpu_features: simd::detected_cpu_features()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            written_at_unix: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }

    /// Snapshot the telemetry state for the artifact envelope. Always
    /// present so consumers can branch on `enabled` instead of key
    /// presence; counters/histograms/spans are empty when telemetry is off.
    pub fn telemetry_block(&self) -> TelemetryBlock {
        let enabled = self.collector.is_some();
        if enabled {
            self.export_shard_counters();
        }
        let snapshot = if enabled {
            telemetry::global().snapshot()
        } else {
            telemetry::RegistrySnapshot::default()
        };
        let spans = match &self.collector {
            Some(c) => telemetry::Summary::from_events(&c.events()),
            None => telemetry::Summary::default(),
        };
        TelemetryBlock {
            enabled,
            counters: snapshot.counters,
            histograms: snapshot.histograms,
            spans,
        }
    }

    /// Mirror the score cache's per-shard counters into the metrics
    /// registry under `score_cache.shardNN.*` — and the process-wide
    /// signature cache's totals under `sig_cache.*` — so the artifact
    /// block and `--metrics` summary carry the cache breakdowns.
    fn export_shard_counters(&self) {
        let registry = telemetry::global();
        if let Some(cache) = &self.cache {
            for (i, s) in cache.shard_stats().iter().enumerate() {
                let set = |what: &str, v: u64| {
                    registry
                        .counter(&format!("score_cache.shard{i:02}.{what}"))
                        .set(v);
                };
                set("hits", s.hits);
                set("misses", s.misses);
                set("inserts", s.inserts);
                set("evictions", s.evictions);
                set("len", s.len as u64);
            }
        }
        let sig = runtime::sig_cache_stats();
        if sig.hits + sig.misses > 0 {
            let set = |what: &str, v: u64| {
                registry.counter(&format!("sig_cache.{what}")).set(v);
            };
            set("hits", sig.hits);
            set("misses", sig.misses);
            set("inserts", sig.inserts);
            set("evictions", sig.evictions);
            set("len", sig.len as u64);
        }
    }

    /// Write a JSON artifact under the output directory, wrapped in an
    /// envelope whose `header` records the runtime configuration (thread
    /// count, shared-cache counters), whose `data` is `value`, and whose
    /// `telemetry` block carries counters/histograms/span aggregates
    /// (empty unless `--metrics`/`--trace-out` enabled collection).
    pub fn write_json<T: Serialize>(&self, filename: &str, value: &T) {
        std::fs::create_dir_all(&self.out).expect("create out dir");
        let path = self.out.join(filename);
        let artifact = serde::Value::Map(vec![
            ("header".to_string(), self.artifact_header().to_value()),
            ("data".to_string(), value.to_value()),
            ("telemetry".to_string(), self.telemetry_block().to_value()),
        ]);
        let json = serde_json::to_string_pretty(&artifact).expect("serialise artifact");
        std::fs::write(&path, json).unwrap_or_else(|e| panic!("write {path:?}: {e}"));
        eprintln!("wrote {}", path.display());
    }

    /// End-of-run hook for every bench binary: print the shared-cache
    /// summary (per-shard breakdown under `--metrics`), render the
    /// telemetry summary when collection is on, and flush the sink so a
    /// `--trace-out` file is complete before the process exits.
    pub fn finish(&self) {
        if let Some(cache) = &self.cache {
            let stats = cache.stats();
            println!(
                "cache: {} hits / {} misses ({:.1}% hit rate), {} evictions, {} live",
                stats.hits,
                stats.misses,
                stats.hit_rate() * 100.0,
                stats.evictions,
                stats.len,
            );
            if self.metrics {
                let mut t =
                    TextTable::new(vec!["shard", "hits", "misses", "inserts", "evict", "len"]);
                for (i, s) in cache.shard_stats().iter().enumerate() {
                    t.row(vec![
                        format!("{i:02}"),
                        s.hits.to_string(),
                        s.misses.to_string(),
                        s.inserts.to_string(),
                        s.evictions.to_string(),
                        s.len.to_string(),
                    ]);
                }
                t.print();
            }
        }
        let sig = runtime::sig_cache_stats();
        if sig.hits + sig.misses > 0 {
            println!(
                "sig cache: {} hits / {} misses ({:.1}% hit rate), {} evictions, {} live",
                sig.hits,
                sig.misses,
                sig.hit_rate() * 100.0,
                sig.evictions,
                sig.len,
            );
        }
        let Some(collector) = &self.collector else {
            return;
        };
        self.export_shard_counters();
        // Append every registry counter total to the event stream so a
        // `--trace-out` file is self-contained: `trace_tool`'s cache
        // report reads these without needing the artifact envelope.
        // Snapshot order is sorted by name, so traces stay deterministic.
        if self.trace_out.is_some() {
            for (name, value) in &telemetry::global().snapshot().counters {
                telemetry::emit(&telemetry::Event::Count(telemetry::CountEvent {
                    name: name.clone(),
                    value: *value,
                }));
            }
        }
        telemetry::flush();
        if !self.metrics {
            return;
        }
        let snapshot = telemetry::global().snapshot();
        if !snapshot.counters.is_empty() {
            println!("\n== telemetry counters ==");
            for (name, v) in &snapshot.counters {
                println!("{name:<40} {v}");
            }
        }
        if !snapshot.histograms.is_empty() {
            println!("\n== telemetry histograms ==");
            for (name, h) in &snapshot.histograms {
                println!(
                    "{name:<28} n={} mean={:.0} p50={} p90={} p99={} max={}",
                    h.count,
                    h.mean(),
                    h.p50,
                    h.p90,
                    h.p99,
                    h.max,
                );
            }
        }
        let summary = telemetry::Summary::from_events(&collector.events());
        if !summary.spans.is_empty() {
            println!("\n== telemetry spans ==");
            print!("{}", summary.render());
        }
    }
}

/// Runtime provenance recorded in each artifact's `header` field.
#[derive(Debug, Clone, Serialize)]
pub struct ArtifactHeader {
    /// Worker-thread ceiling in effect.
    pub threads: usize,
    /// Whether runs shared one score cache (false under `--no-cache`).
    pub cache_shared: bool,
    /// Cumulative shared-cache hits at write time.
    pub cache_hits: u64,
    /// Cumulative shared-cache misses at write time.
    pub cache_misses: u64,
    /// Hit fraction of all shared-cache lookups.
    pub cache_hit_rate: f64,
    /// Entries evicted by the capacity bound.
    pub cache_evictions: u64,
    /// SIMD tier the kernels dispatched to ("portable", "sse2", "avx2").
    pub simd_isa: String,
    /// Whether the binary was built with the `simd-arch` cargo feature.
    pub simd_arch_feature: bool,
    /// CPU SIMD capabilities detected at run time (independent of whether
    /// the `simd-arch` feature made them reachable).
    pub cpu_features: Vec<String>,
    /// Unix timestamp (seconds) at which the artifact was written. Kept in
    /// the header — never in the captured run log — so logs stay
    /// byte-deterministic across runs.
    pub written_at_unix: u64,
}

/// Telemetry snapshot embedded as the `telemetry` key of every artifact
/// envelope. Always present; `enabled` says whether collection was on.
#[derive(Debug, Clone, Serialize)]
pub struct TelemetryBlock {
    /// Whether `--metrics`/`--trace-out` enabled collection for this run.
    pub enabled: bool,
    /// Name → value pairs of every registered counter.
    pub counters: Vec<(String, u64)>,
    /// Name → snapshot pairs of every registered histogram.
    pub histograms: Vec<(String, telemetry::HistogramSnapshot)>,
    /// Per-span-name aggregates (count, total/self/max time).
    pub spans: telemetry::Summary,
}

/// Minimal fixed-width table printer for reproducing the paper's layouts.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// New table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format a score to the paper's 3-decimal convention.
pub fn fmt_score(v: f64) -> String {
    format!("{v:.3}")
}

/// Format seconds compactly.
pub fn fmt_secs(v: f64) -> String {
    if v < 1.0 {
        format!("{:.0}ms", v * 1000.0)
    } else {
        format!("{v:.1}s")
    }
}

/// Print the standard bench header so artifacts are self-describing.
pub fn print_header(what: &str, args: &CommonArgs) {
    println!("== {what} ==");
    println!(
        "settings: scale={} epochs={}+{} steps={} max_features={} seed={:#x} threads={} \
         split={} cache={}",
        args.scale,
        args.epochs1,
        args.epochs2,
        args.steps,
        args.max_features,
        args.seed,
        runtime::global_threads(),
        match args.split_method {
            SplitMethod::Exact => "exact",
            SplitMethod::Histogram => "hist",
        },
        if args.cache.is_some() {
            "shared"
        } else {
            "off"
        },
    );
    println!(
        "note: synthetic same-shape stand-ins for the paper's datasets; \
         sample counts scaled by the factor above (see DESIGN.md §2)\n"
    );
}

/// Re-exec the current bench binary with `args` and return its stdout.
///
/// On child failure the child's stderr is relayed and this process exits
/// with the child's own exit code (1 when it died to a signal) — a dead
/// child must fail the whole bench run with a propagated status, never
/// let the parent report partial results or panic into a misleading 101.
pub fn run_self_child(args: &[String], what: &str) -> String {
    let exe = std::env::current_exe().expect("current_exe");
    let output = std::process::Command::new(exe)
        .args(args)
        .output()
        .unwrap_or_else(|e| {
            eprintln!("failed to spawn child {what}: {e}");
            std::process::exit(1);
        });
    if !output.status.success() {
        eprint!("{}", String::from_utf8_lossy(&output.stderr));
        eprintln!("child {what} failed: {}", output.status);
        std::process::exit(output.status.code().unwrap_or(1));
    }
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// Extract the `RESULT {json}` line a self-exec'd child printed, exiting
/// nonzero (not panicking) when the child produced none.
pub fn child_result_line<'a>(stdout: &'a str, what: &str) -> &'a str {
    stdout
        .lines()
        .find_map(|l| l.strip_prefix("RESULT "))
        .unwrap_or_else(|| {
            eprintln!("child {what} printed no RESULT line:\n{stdout}");
            std::process::exit(1);
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["Dataset", "Score"]);
        t.row(vec!["PimaIndian", "0.790"]);
        t.row(vec!["x", "0.5"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Dataset"));
        assert!(lines[2].starts_with("PimaIndian"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_score(0.123456), "0.123");
        assert_eq!(fmt_secs(0.5), "500ms");
        assert_eq!(fmt_secs(12.34), "12.3s");
    }

    #[test]
    fn default_args_resolve_datasets() {
        let args = CommonArgs::default();
        let infos = args.dataset_infos();
        assert_eq!(infos.len(), 4);
        assert_eq!(infos[0].name, "PimaIndian");
    }

    #[test]
    fn telemetry_block_is_empty_when_disabled() {
        let args = CommonArgs::default();
        let block = args.telemetry_block();
        assert!(!block.enabled);
        assert!(block.counters.is_empty());
        assert!(block.histograms.is_empty());
        assert!(block.spans.spans.is_empty());
    }

    #[test]
    fn header_carries_write_timestamp() {
        let args = CommonArgs::default();
        // 2020-01-01 as a sanity floor: the clock is set and monotone-ish.
        assert!(args.artifact_header().written_at_unix > 1_577_836_800);
    }

    #[test]
    fn header_records_simd_provenance() {
        let header = CommonArgs::default().artifact_header();
        assert_eq!(header.simd_isa, simd::active_isa().name());
        assert_eq!(header.simd_arch_feature, cfg!(feature = "simd-arch"));
        // Without the feature the dispatcher must report the portable tier
        // no matter what the CPU offers.
        if !header.simd_arch_feature {
            assert_eq!(header.simd_isa, "portable");
        }
        // cpu_features reflects the hardware, not the build: on x86_64
        // sse2 is baseline and always detected.
        #[cfg(target_arch = "x86_64")]
        assert!(header.cpu_features.iter().any(|f| f == "sse2"));
    }

    #[test]
    fn load_applies_scale_and_preselect() {
        let args = CommonArgs {
            scale: 0.1,
            max_features: 4,
            ..CommonArgs::default()
        };
        let info = find_dataset("German Credit").unwrap();
        let frame = args.load(&info);
        assert_eq!(frame.n_cols(), 4);
        assert!(frame.n_rows() <= 110);
    }
}
