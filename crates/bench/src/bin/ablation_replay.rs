//! **Ablation (extra)** — the stage-1 replay buffer: E-AFE with the paper's
//! replay capacity vs a capacity of 1 (effectively disabling the bridge
//! between stage 1 and stage 2). DESIGN.md §4 calls this design choice out;
//! the paper motivates the buffer but never isolates it.
//!
//! Regenerate: `cargo run -p bench --release --bin ablation_replay`

use bench::{fmt_score, print_header, CommonArgs, TextTable};
use eafe::Engine;
use minhash::HashFamily;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    with_replay_score: f64,
    without_replay_score: f64,
    with_replay_evals: usize,
    without_replay_evals: usize,
}

fn main() {
    let args = CommonArgs::parse();
    print_header("Ablation: stage-1 replay buffer on/off", &args);
    let fpe = args.fpe_model(HashFamily::Ccws, 48);

    let mut table = TextTable::new(vec![
        "Dataset",
        "score (replay)",
        "score (no replay)",
        "evals (replay)",
        "evals (no replay)",
    ]);
    let mut rows = Vec::new();
    for info in args.dataset_infos() {
        if !args.quiet {
            eprintln!("running {} ...", info.name);
        }
        let frame = args.load(&info);
        let with = args
            .engine(Engine::e_afe(args.config(), fpe.clone()))
            .run(&frame)
            .expect("E-AFE with replay");
        let mut cfg = args.config();
        cfg.replay_capacity = 1;
        let without = args
            .engine(Engine::e_afe(cfg, fpe.clone()))
            .run(&frame)
            .expect("E-AFE without replay");
        table.row(vec![
            info.name.to_string(),
            fmt_score(with.best_score),
            fmt_score(without.best_score),
            with.downstream_evals.to_string(),
            without.downstream_evals.to_string(),
        ]);
        rows.push(Row {
            dataset: info.name.to_string(),
            with_replay_score: with.best_score,
            without_replay_score: without.best_score,
            with_replay_evals: with.downstream_evals,
            without_replay_evals: without.downstream_evals,
        });
    }
    table.print();
    args.write_json("ablation_replay.json", &rows);

    let mean = |f: fn(&Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len().max(1) as f64;
    println!(
        "\nmean score with replay {:.4} vs without {:.4}",
        mean(|r| r.with_replay_score),
        mean(|r| r.without_replay_score)
    );
    args.finish();
}
