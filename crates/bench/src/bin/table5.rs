//! **Table V** — robustness of the cached engineered features to a change
//! of downstream model: the feature sets produced (with RF in the loop) by
//! AutoFS_R, NFS and E-AFE are re-evaluated with SVM, NB/GP and MLP.
//!
//! Regenerate: `cargo run -p bench --release --bin table5`

use bench::{fmt_score, print_header, CommonArgs, TextTable};
use eafe::{reevaluate, Engine};
use learners::ModelKind;
use minhash::HashFamily;
use serde::Serialize;

const KINDS: [ModelKind; 3] = [ModelKind::Svm, ModelKind::NaiveBayesGp, ModelKind::Mlp];

#[derive(Serialize)]
struct Row {
    dataset: String,
    task: String,
    /// (method, model, score)
    scores: Vec<(String, String, f64)>,
}

fn main() {
    let args = CommonArgs::parse();
    print_header(
        "Table V: cached features under replaced downstream tasks",
        &args,
    );

    let cfg = args.config();
    let fpe = args.fpe_model(HashFamily::Ccws, 48);

    let mut headers = vec!["Dataset".to_string(), "C\\R".into()];
    for method in ["AutoFS_R", "NFS", "E-AFE"] {
        for kind in KINDS {
            headers.push(format!("{method}:{}", kind.name()));
        }
    }
    let mut table = TextTable::new(headers);

    let mut rows = Vec::new();
    for info in args.dataset_infos() {
        if !args.quiet {
            eprintln!("running {} ...", info.name);
        }
        let frame = args.load(&info);
        let (_, fs_frame) = args.run_autofs_r_full(&cfg, &frame).expect("FS_R");
        let (_, nfs_frame) = args
            .engine(Engine::nfs(cfg.clone()))
            .run_full(&frame)
            .expect("NFS");
        let (_, eafe_frame) = args
            .engine(Engine::e_afe(cfg.clone(), fpe.clone()))
            .run_full(&frame)
            .expect("E-AFE");

        let mut row = Row {
            dataset: info.name.to_string(),
            task: info.task.code().to_string(),
            scores: Vec::new(),
        };
        let mut cells = vec![row.dataset.clone(), row.task.clone()];
        for (method, engineered) in [
            ("AutoFS_R", &fs_frame),
            ("NFS", &nfs_frame),
            ("E-AFE", &eafe_frame),
        ] {
            for kind in KINDS {
                let score = reevaluate(engineered, kind, &cfg).expect("re-evaluate");
                cells.push(fmt_score(score));
                row.scores
                    .push((method.to_string(), kind.name().to_string(), score));
            }
        }
        table.row(cells);
        rows.push(row);
    }
    table.print();
    args.write_json("table5.json", &rows);

    // Shape check: E-AFE's features should win (or tie) most cells against
    // both baselines under every replacement model.
    let mut wins = 0usize;
    let mut cells = 0usize;
    for row in &rows {
        for kind in KINDS {
            let get = |m: &str| {
                row.scores
                    .iter()
                    .find(|(mm, kk, _)| mm == m && kk == kind.name())
                    .map(|(_, _, s)| *s)
                    .unwrap()
            };
            let eafe = get("E-AFE");
            if eafe + 1e-9 >= get("AutoFS_R") && eafe + 1e-9 >= get("NFS") {
                wins += 1;
            }
            cells += 1;
        }
    }
    println!(
        "\nshape check: E-AFE features best-or-tied in {wins}/{cells} \
         (dataset × replacement-model) cells."
    );
    args.finish();
}
