//! **Table I** — time breakdown of one NFS epoch on the four motivation
//! datasets: feature-generation time is a fraction of a percent of the
//! total, downstream evaluation dominates (~90% in the paper).
//!
//! Regenerate: `cargo run -p bench --release --bin table1 [--scale 0.1]`

use bench::{fmt_secs, print_header, CommonArgs, TextTable};
use eafe::Engine;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    shape: String,
    new_features: usize,
    generation_secs: f64,
    eval_secs: f64,
    total_secs: f64,
    eval_fraction: f64,
}

fn main() {
    let mut args = CommonArgs::parse();
    // Table I is a single NFS epoch.
    args.epochs1 = 0;
    args.epochs2 = 1;
    print_header("Table I: one NFS epoch time breakdown", &args);

    let mut table = TextTable::new(vec![
        "Dataset",
        "Instances\\Features",
        "New Features",
        "Generation Time",
        "Eval. New Features Time",
        "Total Time",
        "Eval %",
    ]);
    let mut rows = Vec::new();
    for info in args.dataset_infos() {
        let frame = args.load(&info);
        let mut cfg = args.config();
        cfg.stage1_epochs = 0;
        cfg.stage2_epochs = 1;
        cfg.steps_per_epoch = args.steps.max(3);
        let result = args.engine(Engine::nfs(cfg)).run(&frame).expect("NFS run");
        let row = Row {
            dataset: info.name.to_string(),
            shape: frame.shape_str(),
            new_features: result.generated_features,
            generation_secs: result.generation_secs,
            eval_secs: result.eval_secs,
            total_secs: result.total_secs,
            eval_fraction: result.eval_time_fraction(),
        };
        table.row(vec![
            row.dataset.clone(),
            row.shape.clone(),
            row.new_features.to_string(),
            fmt_secs(row.generation_secs),
            fmt_secs(row.eval_secs),
            fmt_secs(row.total_secs),
            format!("{:.1}%", row.eval_fraction * 100.0),
        ]);
        rows.push(row);
    }
    table.print();
    args.write_json("table1.json", &rows);
    args.finish();
}
