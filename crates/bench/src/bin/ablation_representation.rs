//! **Ablation (extra, paper Q6)** — why MinHash? The paper argues for
//! MinHash over the other approximate-feature representations its related
//! work surveys (§V-B): quantile data sketches (LFE) and meta-features.
//! This bench trains one FPE classifier per representation on identical
//! labels and compares (a) classifier recall/precision and (b) the final
//! E-AFE score and evaluation count when that classifier drives the gate.
//!
//! Regenerate: `cargo run -p bench --release --bin ablation_representation`

use bench::{fmt_score, print_header, CommonArgs, TextTable};
use eafe::fpe::{FeatureRepr, FpeModel, RawLabels};
use eafe::Engine;
use minhash::{HashFamily, SampleCompressor};
use serde::Serialize;
use tabular::registry::public_corpus;

#[derive(Serialize)]
struct Row {
    representation: String,
    recall: f64,
    precision: f64,
    positive_rate: f64,
    mean_score: f64,
    mean_evals: f64,
}

fn main() {
    let args = CommonArgs::parse();
    print_header("Ablation: FPE feature representation (paper Q6)", &args);

    let mut label_ev = args.evaluator();
    label_ev.folds = 3;
    let label_ev = args.cached(label_ev);
    println!("labelling the public corpus once (shared across representations)...");
    let corpus = public_corpus(12, 6, args.seed).expect("corpus");
    let train =
        RawLabels::compute_augmented(&corpus[..14], &label_ev, 8, 3, args.seed).expect("train");
    let val =
        RawLabels::compute_augmented(&corpus[14..], &label_ev, 8, 3, args.seed ^ 1).expect("val");
    println!(
        "labelled {} train / {} val features\n",
        train.len(),
        val.len()
    );

    let reprs = vec![
        FeatureRepr::MinHash(SampleCompressor::new(HashFamily::Ccws, 48, args.seed).unwrap()),
        FeatureRepr::QuantileSketch { d: 48 },
        FeatureRepr::MetaFeatures,
    ];

    let frames: Vec<_> = args
        .dataset_infos()
        .iter()
        .map(|info| args.load(info))
        .collect();
    let cfg = args.config();

    let mut table = TextTable::new(vec![
        "representation",
        "recall",
        "precision",
        "pos-rate",
        "mean E-AFE score",
        "mean evals",
    ]);
    let mut rows = Vec::new();
    for repr in reprs {
        let name = repr.name();
        if !args.quiet {
            eprintln!("training FPE with {name} ...");
        }
        let t = train.represent(&repr, 0.01).expect("train repr");
        let v = val.represent(&repr, 0.01).expect("val repr");
        let model = FpeModel::train_with_repr(repr, &t, &v, 0.01, args.seed).expect("train");
        let m = model.metrics;

        let mut scores = Vec::new();
        let mut evals = Vec::new();
        for frame in &frames {
            let engine = args.engine(Engine::e_afe_variant(cfg.clone(), model.clone(), "E-AFE*"));
            let r = engine.run(frame).expect("run");
            scores.push(r.best_score);
            evals.push(r.downstream_evals as f64);
        }
        let mean_score = scores.iter().sum::<f64>() / scores.len().max(1) as f64;
        let mean_evals = evals.iter().sum::<f64>() / evals.len().max(1) as f64;
        table.row(vec![
            name.clone(),
            fmt_score(m.recall),
            fmt_score(m.precision),
            fmt_score(m.positive_rate),
            fmt_score(mean_score),
            format!("{mean_evals:.0}"),
        ]);
        rows.push(Row {
            representation: name,
            recall: m.recall,
            precision: m.precision,
            positive_rate: m.positive_rate,
            mean_score,
            mean_evals,
        });
    }
    table.print();
    args.write_json("ablation_representation.json", &rows);
    println!(
        "\npaper's Q6 argument: MinHash both fixes the dimension across \
         datasets AND preserves sample similarity (Eq. 2); sketches keep \
         marginals only, meta-features compress harder still."
    );
    args.finish();
}
