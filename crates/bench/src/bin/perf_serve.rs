//! **Serving-layer overhead benchmark** — the same searches run two
//! ways: stepped directly (back-to-back `Engine::start`/`step` loops, no
//! server) and through the multi-tenant [`serve::JobServer`] (admission,
//! round-robin scheduling, progress streaming, budget checks).
//!
//! The engine work is identical in both paths, so the wall-clock gap is
//! the serving layer's bookkeeping: scheduler rotation, channel sends,
//! status commits. Every tenant's final score is asserted bit-identical
//! across paths — the server may only add overhead, never change a
//! result. Note the served path shares one content-addressed score cache
//! across tenants, so on overlapping workloads it can come out *faster*
//! than private-cache direct stepping.
//!
//! Regenerate: `cargo run -p bench --release --bin perf_serve`.
//!
//! ```text
//! --tenants <n>  override the tenant-count grid (default 2,4,8)
//! --epochs <n>   stage-2 epochs per tenant           (default 8)
//! --rows <n>     dataset rows                        (default 240)
//! --cols <n>     dataset features                    (default 6)
//! --smoke        smallest cell only, no artifact; exit 1 if any score
//!                diverges or server overhead exceeds 3x (the CI gate)
//! --repeats <n>  timing repeats per cell, min taken  (default 2)
//! --seed <n>     dataset + engine seed base          (default 0xEAFE)
//! --out <dir>    artifact directory                  (default bench_results)
//! --threads <n>  worker-thread ceiling, 0 = all      (default 0)
//! --quiet        suppress per-cell progress lines
//! --metrics      end-of-run telemetry counter/histogram summary
//! --trace-out <path>  JSON-lines telemetry event stream
//! ```

use bench::{fmt_secs, CommonArgs, TextTable};
use serde::Serialize;
use serve::{Budget, JobServer, ServerConfig};
use std::time::Instant;
use tabular::{DataFrame, SynthSpec, Task};

const TENANT_GRID: &[usize] = &[2, 4, 8];
const SMOKE_TENANTS: usize = 2;

#[derive(Serialize)]
struct Row {
    tenants: usize,
    epochs_per_tenant: usize,
    total_slices: usize,
    direct_secs: f64,
    served_secs: f64,
    overhead_ratio: f64,
    overhead_per_slice_us: f64,
}

struct Args {
    tenants: Option<usize>,
    epochs: usize,
    rows: usize,
    cols: usize,
    smoke: bool,
    repeats: usize,
    seed: u64,
    common: CommonArgs,
}

fn parse_args() -> Args {
    let mut args = Args {
        tenants: None,
        epochs: 8,
        rows: 240,
        cols: 6,
        smoke: false,
        repeats: 2,
        seed: 0xE_AFE,
        common: CommonArgs::default(),
    };
    let mut threads = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--tenants" => args.tenants = Some(value("--tenants").parse().expect("int tenants")),
            "--epochs" => args.epochs = value("--epochs").parse().expect("int epochs"),
            "--rows" => args.rows = value("--rows").parse().expect("int rows"),
            "--cols" => args.cols = value("--cols").parse().expect("int cols"),
            "--smoke" => args.smoke = true,
            "--repeats" => args.repeats = value("--repeats").parse().expect("int repeats"),
            "--seed" => args.seed = value("--seed").parse().expect("int seed"),
            "--out" => args.common.out = std::path::PathBuf::from(value("--out")),
            "--threads" => threads = value("--threads").parse().expect("int threads"),
            "--quiet" => args.common.quiet = true,
            "--metrics" => args.common.metrics = true,
            "--trace-out" => {
                args.common.trace_out = Some(std::path::PathBuf::from(value("--trace-out")))
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --tenants n --epochs n --rows n --cols n --smoke --repeats n \
                     --seed n --out dir --threads n --quiet --metrics --trace-out path"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    assert!(args.repeats >= 1, "--repeats must be >= 1");
    assert!(args.epochs >= 1, "--epochs must be >= 1");
    runtime::set_global_threads(threads);
    args.common.install_telemetry();
    args
}

fn tenant_engine(args: &Args, tenant: usize) -> eafe::Engine {
    let mut cfg = eafe::EafeConfig::fast();
    cfg.stage2_epochs = args.epochs;
    cfg.steps_per_epoch = 3;
    cfg.early_stop_patience = None;
    cfg.seed = args.seed ^ (tenant as u64).wrapping_mul(0x9E37);
    eafe::Engine::nfs(cfg)
}

fn dataset(args: &Args) -> DataFrame {
    SynthSpec::new("perf-serve", args.rows, args.cols, Task::Classification)
        .with_seed(args.seed)
        .generate()
        .expect("dataset")
}

/// All tenants stepped to completion inline, one after another.
fn run_direct(args: &Args, frame: &DataFrame, tenants: usize) -> (f64, Vec<f64>, usize) {
    let t = Instant::now();
    let mut scores = Vec::with_capacity(tenants);
    let mut slices = 0;
    for tenant in 0..tenants {
        let engine = tenant_engine(args, tenant);
        let mut state = engine.start(frame).expect("start");
        while !state.is_done() {
            engine.step(&mut state).expect("step");
            slices += 1;
        }
        let (result, _frame) = engine.finish(&state).expect("finish");
        scores.push(result.best_score);
    }
    (t.elapsed().as_secs_f64(), scores, slices)
}

/// The same tenants through the job server (one scheduler thread).
fn run_served(args: &Args, frame: &DataFrame, tenants: usize) -> (f64, Vec<f64>) {
    let t = Instant::now();
    let server = JobServer::new(ServerConfig {
        max_active: tenants,
        ..ServerConfig::default()
    })
    .expect("server");
    let handles: Vec<_> = (0..tenants)
        .map(|tenant| {
            server
                .submit(
                    &format!("tenant-{tenant}"),
                    frame,
                    tenant_engine(args, tenant),
                    Budget::unlimited(),
                )
                .expect("submit")
        })
        .collect();
    let scores = handles
        .iter()
        .map(|h| {
            h.wait()
                .expect("outcome")
                .result
                .expect("completed result")
                .best_score
        })
        .collect();
    (t.elapsed().as_secs_f64(), scores)
}

fn main() {
    let args = parse_args();
    let grid: Vec<usize> = match (args.smoke, args.tenants) {
        (true, _) => vec![SMOKE_TENANTS],
        (false, Some(n)) => vec![n],
        (false, None) => TENANT_GRID.to_vec(),
    };
    let repeats = if args.smoke { 1 } else { args.repeats };
    println!("== perf_serve: direct stepping vs the multi-tenant job server ==");
    println!(
        "settings: {}x{} dataset, {} epochs/tenant, repeats={repeats} seed={:#x} threads={}",
        args.rows,
        args.cols,
        args.epochs,
        args.seed,
        runtime::global_threads(),
    );

    let frame = dataset(&args);
    let mut table = TextTable::new(vec![
        "Tenants",
        "Slices",
        "Direct",
        "Served",
        "Overhead",
        "Per slice",
    ]);
    let mut rows_out = Vec::new();
    for &tenants in &grid {
        let (mut direct_secs, mut served_secs) = (f64::INFINITY, f64::INFINITY);
        let (mut direct_scores, mut served_scores) = (Vec::new(), Vec::new());
        let mut slices = 0;
        for _ in 0..repeats {
            let (d, ds, n) = run_direct(&args, &frame, tenants);
            let (s, ss) = run_served(&args, &frame, tenants);
            direct_secs = direct_secs.min(d);
            served_secs = served_secs.min(s);
            direct_scores = ds;
            served_scores = ss;
            slices = n;
        }
        for (tenant, (a, b)) in direct_scores.iter().zip(&served_scores).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "tenant {tenant}: served score {b} != direct score {a}"
            );
        }
        let overhead_ratio = served_secs / direct_secs;
        let overhead_per_slice_us = ((served_secs - direct_secs) / slices.max(1) as f64) * 1e6;
        if !args.common.quiet {
            eprintln!(
                "  {tenants} tenants: direct {}, served {} ({overhead_ratio:.2}x)",
                fmt_secs(direct_secs),
                fmt_secs(served_secs)
            );
        }
        table.row(vec![
            tenants.to_string(),
            slices.to_string(),
            fmt_secs(direct_secs),
            fmt_secs(served_secs),
            format!("{overhead_ratio:.2}x"),
            format!("{overhead_per_slice_us:.0}us"),
        ]);
        rows_out.push(Row {
            tenants,
            epochs_per_tenant: args.epochs,
            total_slices: slices,
            direct_secs,
            served_secs,
            overhead_ratio,
            overhead_per_slice_us,
        });
    }
    table.print();

    if args.smoke {
        for r in &rows_out {
            if r.overhead_ratio > 3.0 {
                eprintln!(
                    "SMOKE FAIL: {} tenants served {:.2}x slower than direct stepping",
                    r.tenants, r.overhead_ratio
                );
                std::process::exit(1);
            }
        }
        println!("smoke ok: served scores bit-identical, overhead within 3x");
        args.common.finish();
        return;
    }
    args.common.write_json("BENCH_serve.json", &rows_out);
    args.common.finish();
}
