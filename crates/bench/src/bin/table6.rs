//! **Table VI** — statistical significance of E-AFE's improvement over
//! AutoFS_R, RTDL_N and NFS, in both performance and running time
//! (paired two-sided t-test over the per-dataset results, as the paper
//! reports; a Wilcoxon signed-rank cross-check is printed alongside).
//!
//! Consumes `bench_results/table3.json` if present (so run `table3` first
//! — ideally with `--datasets all`); otherwise it runs the four needed
//! methods itself on the configured datasets.
//!
//! Regenerate: `cargo run -p bench --release --bin table6`

use bench::{print_header, CommonArgs, TextTable};
use eafe::baselines::{run_rtdl_n, DlBaselineConfig};
use eafe::Engine;
use eafe_stats::{paired_t_test, wilcoxon_signed_rank};
use minhash::HashFamily;
use serde::{Deserialize, Serialize};

#[derive(Serialize, Deserialize)]
struct DatasetRow {
    dataset: String,
    task: String,
    shape: String,
    scores: Vec<(String, f64)>,
    times: Vec<(String, f64)>,
}

#[derive(Serialize)]
struct PValueRow {
    baseline: String,
    performance_p: f64,
    time_p: f64,
    performance_wilcoxon_p: f64,
    time_wilcoxon_p: f64,
}

fn collect(rows: &[DatasetRow], method: &str, times: bool) -> Vec<f64> {
    rows.iter()
        .map(|r| {
            let src = if times { &r.times } else { &r.scores };
            src.iter()
                .find(|(m, _)| m == method)
                .map(|(_, v)| *v)
                .unwrap_or_else(|| panic!("method {method} missing for {}", r.dataset))
        })
        .collect()
}

fn main() {
    let args = CommonArgs::parse();
    print_header("Table VI: p-values of E-AFE vs baselines", &args);

    let rows: Vec<DatasetRow> = match std::fs::read_to_string(args.out.join("table3.json")) {
        Ok(json) => {
            println!("using cached table3.json\n");
            // Artifacts are wrapped in a {header, data} envelope; accept
            // bare arrays too so pre-envelope artifacts stay readable.
            let value = serde_json::parse(&json).expect("parse table3.json");
            let data = value
                .as_map()
                .and_then(|m| m.iter().find(|(k, _)| k == "data").map(|(_, v)| v))
                .unwrap_or(&value);
            serde::Deserialize::from_value(data).expect("decode table3.json")
        }
        Err(_) => {
            println!("table3.json not found; running FS_R / DL_N / NFS / E-AFE inline\n");
            let cfg = args.config();
            let dl_cfg = DlBaselineConfig {
                seed: args.seed,
                ..DlBaselineConfig::default()
            };
            let fpe = args.fpe_model(HashFamily::Ccws, 48);
            args.dataset_infos()
                .iter()
                .map(|info| {
                    if !args.quiet {
                        eprintln!("running {} ...", info.name);
                    }
                    let frame = args.load(info);
                    let mut row = DatasetRow {
                        dataset: info.name.to_string(),
                        task: info.task.code().to_string(),
                        shape: frame.shape_str(),
                        scores: Vec::new(),
                        times: Vec::new(),
                    };
                    for result in [
                        args.run_autofs_r(&cfg, &frame).expect("FS_R"),
                        run_rtdl_n(&dl_cfg, &frame).expect("DL_N"),
                        args.engine(Engine::nfs(cfg.clone()))
                            .run(&frame)
                            .expect("NFS"),
                        args.engine(Engine::e_afe(cfg.clone(), fpe.clone()))
                            .run(&frame)
                            .expect("E-AFE"),
                    ] {
                        row.scores.push((result.method.clone(), result.best_score));
                        row.times.push((result.method.clone(), result.total_secs));
                    }
                    row
                })
                .collect()
        }
    };

    let eafe_scores = collect(&rows, "E-AFE", false);
    let eafe_times = collect(&rows, "E-AFE", true);

    let mut table = TextTable::new(vec![
        "P-value vs",
        "Performance (t)",
        "Time (t)",
        "Performance (Wilcoxon)",
        "Time (Wilcoxon)",
    ]);
    let mut out_rows = Vec::new();
    // Paper naming: FS_R is AutoFS_R, DL_N is RTDL_N.
    for (label, method) in [("AutoFS_R", "FS_R"), ("RTDL_N", "DL_N"), ("NFS", "NFS")] {
        // Fall back to the inline-run method names when table3.json came
        // from the inline path (which uses the long names already).
        let find = |times| {
            if rows[0].scores.iter().any(|(m, _)| m == method) {
                collect(&rows, method, times)
            } else {
                collect(&rows, label, times)
            }
        };
        let base_scores = find(false);
        let base_times = find(true);
        let perf_t = paired_t_test(&eafe_scores, &base_scores)
            .map(|r| r.p_value)
            .unwrap_or(f64::NAN);
        let time_t = paired_t_test(&eafe_times, &base_times)
            .map(|r| r.p_value)
            .unwrap_or(f64::NAN);
        let perf_w = wilcoxon_signed_rank(&eafe_scores, &base_scores)
            .map(|r| r.p_value)
            .unwrap_or(f64::NAN);
        let time_w = wilcoxon_signed_rank(&eafe_times, &base_times)
            .map(|r| r.p_value)
            .unwrap_or(f64::NAN);
        table.row(vec![
            label.to_string(),
            format!("{perf_t:.2e}"),
            format!("{time_t:.2e}"),
            format!("{perf_w:.2e}"),
            format!("{time_w:.2e}"),
        ]);
        out_rows.push(PValueRow {
            baseline: label.to_string(),
            performance_p: perf_t,
            time_p: time_t,
            performance_wilcoxon_p: perf_w,
            time_wilcoxon_p: time_w,
        });
    }
    table.print();
    args.write_json("table6.json", &out_rows);
    println!(
        "\npaper shape: time improvements significant vs all baselines; \
         performance significant vs RTDL_N, near-significant vs AutoFS_R, \
         not significant vs NFS (E-AFE's gain over NFS is efficiency)."
    );
    args.finish();
}
