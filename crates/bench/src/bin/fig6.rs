//! **Figure 6** — the FPE label threshold `thre` vs the score-gain
//! distribution: how many features each threshold labels effective, and
//! the recall the trained FPE classifier achieves at that threshold.
//!
//! Regenerate: `cargo run -p bench --release --bin fig6`

use bench::{print_header, CommonArgs, TextTable};
use eafe::fpe::{search, FpeSearchSpace, RawLabels};
use minhash::HashFamily;
use serde::Serialize;
use tabular::registry::public_corpus;

const THRESHOLDS: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.05];

#[derive(Serialize)]
struct Row {
    thre: f64,
    positive_fraction: f64,
    recall: f64,
    precision: f64,
}

fn main() {
    let args = CommonArgs::parse();
    print_header("Figure 6: thre vs score gain / recall", &args);

    let mut evaluator = args.evaluator();
    evaluator.folds = 3;
    let evaluator = args.cached(evaluator);
    let corpus = public_corpus(12, 6, args.seed).expect("corpus");
    let n_val = corpus.len() / 5;
    let split = corpus.len() - n_val.max(1);
    println!(
        "labelling {} public datasets (train {}, val {}) by leave-one-feature-out...",
        corpus.len(),
        split,
        corpus.len() - split
    );
    let train = RawLabels::compute(&corpus[..split], &evaluator).expect("train labels");
    let val = RawLabels::compute(&corpus[split..], &evaluator).expect("val labels");
    println!(
        "labelled {} train / {} val features\n",
        train.len(),
        val.len()
    );

    // The score-gain distribution itself (Figure 6's x-axis).
    let mut gains: Vec<f64> = train.features.iter().map(|(_, g)| *g).collect();
    gains.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |q: f64| gains[((gains.len() - 1) as f64 * q) as usize];
    println!(
        "score-gain distribution: p10 {:+.4}  p50 {:+.4}  p90 {:+.4}  max {:+.4}\n",
        pct(0.1),
        pct(0.5),
        pct(0.9),
        gains[gains.len() - 1]
    );

    let mut table = TextTable::new(vec!["thre", "positives", "recall", "precision"]);
    let mut rows = Vec::new();
    for &thre in &THRESHOLDS {
        let positives =
            train.features.iter().filter(|(_, g)| *g > thre).count() as f64 / train.len() as f64;
        let space = FpeSearchSpace {
            families: vec![HashFamily::Ccws],
            dims: vec![32],
            thre,
            seed: args.seed,
        };
        let (recall, precision) = match search(&space, &train, &val) {
            Ok(result) => (result.model.metrics.recall, result.model.metrics.precision),
            Err(_) => (f64::NAN, f64::NAN), // single-class at extreme thre
        };
        table.row(vec![
            format!("{thre:.3}"),
            format!("{:.1}%", positives * 100.0),
            format!("{recall:.3}"),
            format!("{precision:.3}"),
        ]);
        rows.push(Row {
            thre,
            positive_fraction: positives,
            recall,
            precision,
        });
    }
    table.print();
    args.write_json("fig6.json", &rows);
    println!(
        "\nshape check: positives (and typically recall pressure) shrink as thre grows — \
         the paper picks thre = 0.01 as the recall/selectivity trade-off."
    );
    args.finish();
}
