//! **Forest split-finding benchmark** — exact sorted-scan vs histogram
//! training at the paper's dataset shapes (1k–10k rows, 20–100 features).
//!
//! For each shape the binary times `RandomForestClassifier::fit` under
//! both [`SplitMethod`]s at the inner-loop forest settings (10 trees,
//! depth 8, √N features per split). The histogram number is the
//! warm-bin-cache regime — the bins were built once by an earlier fit of
//! the same matrix, which is exactly how the engine's repeated
//! evaluations see them — with the one-off bin-build cost reported in its
//! own column.
//!
//! Regenerate: `scripts/bench_forest.sh` (or
//! `cargo run -p bench --release --bin perf_forest`).
//!
//! ```text
//! --smoke        one small shape, 1 repeat, no artifact; exit 1 if the
//!                histogram fit is slower than exact (the CI gate)
//! --repeats <n>  timing repeats per cell, min taken      (default 3)
//! --trees <n>    forest size                             (default 10)
//! --seed <n>     data + forest seed                      (default 0xEAFE)
//! --out <dir>    artifact directory                      (default bench_results)
//! --threads <n>  worker-thread ceiling, 0 = all cores    (default 0)
//! --quiet        suppress per-shape progress lines
//! ```

use bench::{fmt_secs, CommonArgs, TextTable};
use learners::{BinnedDataset, ForestConfig, RandomForestClassifier, SplitMethod, TreeConfig};
use serde::Serialize;
use std::time::Instant;
use tabular::{SynthSpec, Task};

/// Paper-shaped (rows, features) grid.
const SHAPES: &[(usize, usize)] = &[(1000, 20), (2000, 30), (5000, 50), (10_000, 100)];
const SMOKE_SHAPE: (usize, usize) = (2000, 30);

#[derive(Serialize)]
struct Row {
    rows: usize,
    features: usize,
    trees: usize,
    exact_secs: f64,
    hist_secs: f64,
    bin_secs: f64,
    speedup: f64,
}

struct Args {
    smoke: bool,
    repeats: usize,
    trees: usize,
    seed: u64,
    common: CommonArgs,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        repeats: 3,
        trees: 10,
        seed: 0xE_AFE,
        common: CommonArgs::default(),
    };
    let mut threads = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--repeats" => args.repeats = value("--repeats").parse().expect("int repeats"),
            "--trees" => args.trees = value("--trees").parse().expect("int trees"),
            "--seed" => args.seed = value("--seed").parse().expect("int seed"),
            "--out" => args.common.out = std::path::PathBuf::from(value("--out")),
            "--threads" => threads = value("--threads").parse().expect("int threads"),
            "--quiet" => args.common.quiet = true,
            "--help" | "-h" => {
                eprintln!(
                    "flags: --smoke --repeats n --trees n --seed n --out dir --threads n --quiet"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    assert!(args.repeats >= 1, "--repeats must be >= 1");
    runtime::set_global_threads(threads);
    args
}

fn forest_config(split: SplitMethod, trees: usize, seed: u64) -> ForestConfig {
    ForestConfig {
        n_trees: trees,
        tree: TreeConfig {
            max_depth: 8,
            split,
            ..TreeConfig::default()
        },
        seed,
        ..ForestConfig::default()
    }
}

/// Minimum fit wall-clock over `repeats` runs (min filters scheduler
/// noise; every run fits an identical forest).
fn time_fit(
    x: &[Vec<f64>],
    y: &[usize],
    n_classes: usize,
    cfg: ForestConfig,
    repeats: usize,
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let mut f = RandomForestClassifier::new(cfg);
        let t = Instant::now();
        f.fit(x, y, n_classes).expect("forest fit");
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let args = parse_args();
    let shapes: &[(usize, usize)] = if args.smoke { &[SMOKE_SHAPE] } else { SHAPES };
    let repeats = if args.smoke { 1 } else { args.repeats };
    println!("== perf_forest: exact vs histogram forest fit ==");
    println!(
        "settings: trees={} repeats={repeats} seed={:#x} threads={} max_bins={}",
        args.trees,
        args.seed,
        runtime::global_threads(),
        learners::DEFAULT_MAX_BINS,
    );

    let mut table = TextTable::new(vec![
        "Shape",
        "Exact",
        "Hist (warm)",
        "Bin (once)",
        "Speedup",
    ]);
    let mut rows = Vec::new();
    for &(n_rows, n_features) in shapes {
        let frame = SynthSpec::new(
            format!("perf-forest-{n_rows}x{n_features}"),
            n_rows,
            n_features,
            Task::Classification,
        )
        .with_seed(args.seed)
        .generate()
        .expect("synthetic frame");
        let x = learners::feature_matrix(&frame);
        let y = frame.label().classes().expect("classification").to_vec();
        let n_classes = frame.label().n_classes();

        // One-off quantisation cost, and the warm-up that puts every
        // column in the process-wide bin cache for the timed hist fits.
        let t = Instant::now();
        BinnedDataset::build_cached(&x, learners::DEFAULT_MAX_BINS).expect("bin");
        let bin_secs = t.elapsed().as_secs_f64();

        let exact_secs = time_fit(
            &x,
            &y,
            n_classes,
            forest_config(SplitMethod::Exact, args.trees, args.seed),
            repeats,
        );
        let hist_secs = time_fit(
            &x,
            &y,
            n_classes,
            forest_config(SplitMethod::Histogram, args.trees, args.seed),
            repeats,
        );
        let speedup = exact_secs / hist_secs;
        if !args.common.quiet {
            eprintln!("  {n_rows}x{n_features}: speedup {speedup:.2}x");
        }
        table.row(vec![
            format!("{n_rows}x{n_features}"),
            fmt_secs(exact_secs),
            fmt_secs(hist_secs),
            fmt_secs(bin_secs),
            format!("{speedup:.2}x"),
        ]);
        rows.push(Row {
            rows: n_rows,
            features: n_features,
            trees: args.trees,
            exact_secs,
            hist_secs,
            bin_secs,
            speedup,
        });
    }
    table.print();

    if args.smoke {
        let r = &rows[0];
        if r.hist_secs > r.exact_secs {
            eprintln!(
                "SMOKE FAIL: histogram fit ({}) slower than exact ({})",
                fmt_secs(r.hist_secs),
                fmt_secs(r.exact_secs)
            );
            std::process::exit(1);
        }
        println!("smoke ok: histogram <= exact");
        return;
    }
    args.common.write_json("BENCH_forest.json", &rows);
}
