//! **Table IV** — number of features evaluated on the downstream task in
//! one epoch, per method. The paper's headline efficiency mechanism:
//! E-AFE evaluates fewer than 50% of what NFS / AutoFS_R evaluate because
//! the FPE gate drops unpromising candidates before the expensive
//! cross-validated Random Forest ever runs.
//!
//! Regenerate: `cargo run -p bench --release --bin table4`

use bench::{print_header, CommonArgs, TextTable};
use eafe::Engine;
use minhash::HashFamily;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    generated: usize,
    fs_r: usize,
    nfs: usize,
    e_afe_d: usize,
    e_afe: usize,
}

/// Marginal downstream evaluations of the final (steady-state) training
/// epoch, from the trace — this matches the paper's "one epoch in the
/// target dataset" accounting, which excludes one-time costs such as
/// E-AFE's replay-buffer seeding.
fn per_epoch_evals(result: &eafe::RunResult) -> usize {
    match result.trace.as_slice() {
        [.., prev, last] => last.downstream_evals - prev.downstream_evals,
        _ => result.downstream_evals,
    }
}

fn main() {
    let args = CommonArgs::parse();
    print_header("Table IV: downstream feature evaluations per epoch", &args);

    let cfg = args.config();
    let fpe = args.fpe_model(HashFamily::Ccws, 48);

    let mut table = TextTable::new(vec![
        "Dataset",
        "gen/epoch",
        "FS_R",
        "NFS",
        "E-AFE_D",
        "E-AFE",
    ]);
    let mut rows = Vec::new();
    for info in args.dataset_infos() {
        if !args.quiet {
            eprintln!("running {} ...", info.name);
        }
        let frame = args.load(&info);
        let fs_r = args.run_autofs_r(&cfg, &frame).expect("FS_R");
        let nfs = args
            .engine(Engine::nfs(cfg.clone()))
            .run(&frame)
            .expect("NFS");
        let eafe_d = args
            .engine(Engine::e_afe_d(cfg.clone(), 0.5))
            .run(&frame)
            .expect("E-AFE_D");
        let eafe = args
            .engine(Engine::e_afe(cfg.clone(), fpe.clone()))
            .run(&frame)
            .expect("E-AFE");
        let row = Row {
            dataset: info.name.to_string(),
            generated: per_epoch_evals(&nfs).max(cfg.steps_per_epoch * frame.n_cols()),
            fs_r: per_epoch_evals(&fs_r),
            nfs: per_epoch_evals(&nfs),
            e_afe_d: per_epoch_evals(&eafe_d),
            e_afe: per_epoch_evals(&eafe),
        };
        table.row(vec![
            row.dataset.clone(),
            row.generated.to_string(),
            row.fs_r.to_string(),
            row.nfs.to_string(),
            row.e_afe_d.to_string(),
            row.e_afe.to_string(),
        ]);
        rows.push(row);
    }
    table.print();
    args.write_json("table4.json", &rows);

    let sum = |f: fn(&Row) -> usize| rows.iter().map(f).sum::<usize>() as f64;
    println!(
        "\nshape check: E-AFE evaluates {:.0}% of NFS's count \
         (paper: < 50%); E-AFE_D evaluates {:.0}%.",
        100.0 * sum(|r| r.e_afe) / sum(|r| r.nfs).max(1.0),
        100.0 * sum(|r| r.e_afe_d) / sum(|r| r.nfs).max(1.0),
    );
    args.finish();
}
