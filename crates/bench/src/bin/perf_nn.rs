//! **Neural-learner kernel benchmark** — flat batched dense kernels vs
//! the retained per-sample scalar reference, at paper-shaped dataset
//! sizes.
//!
//! Four sections, selectable with `--learner`:
//!
//! - `mlp` / `resnet` — time a full `fit` under both [`NnBackend`]s at
//!   each shape; the two backends train bit-identical networks (the
//!   trainer pins the summation order), so the speedup column compares
//!   like for like.
//! - `gp` — time the row-slice kernel fill + row-slice Cholesky against a
//!   straight-line reference built from `Vec<Vec<f64>>` rows, per-element
//!   `set` fills, and the scalar `cholesky_ref`; posterior means are
//!   asserted bit-equal before the numbers are reported.
//! - `rtdl` — end-to-end `run_rtdl_n` (ResNet train + RF re-heading)
//!   under both backends on a Table-1-sized synthetic dataset, asserting
//!   the reported score does not move a bit.
//!
//! Regenerate: `scripts/bench_nn.sh` (or
//! `cargo run -p bench --release --bin perf_nn`).
//!
//! ```text
//! --learner <which>  mlp|resnet|gp|rtdl|all                 (default all)
//! --batched          time only the batched backend
//! --scalar           time only the scalar reference
//! --smoke            one ResNet shape, 1 repeat, no artifact; exit 1 if
//!                    batched training is slower than scalar (the CI gate)
//! --repeats <n>      timing repeats per cell, min taken     (default 3)
//! --seed <n>         data + init seed                       (default 0xEAFE)
//! --out <dir>        artifact directory                     (default bench_results)
//! --threads <n>      worker-thread ceiling, 0 = all cores   (default 0)
//! --quiet            suppress per-shape progress lines
//! --metrics          print the end-of-run telemetry summary
//! --trace-out <p>    stream telemetry events to a JSON-lines file
//! ```

use bench::{fmt_secs, CommonArgs, TextTable};
use eafe::baselines::{run_rtdl_n, DlBaselineConfig};
use learners::linalg::{sq_dist, SquareMatrix};
use learners::preprocess::{to_row_major, Standardizer};
use learners::{
    GaussianProcess, GpConfig, MlpClassifier, MlpConfig, NnBackend, ResNetClassifier, ResNetConfig,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::time::Instant;
use tabular::{SynthSpec, Task};

/// Paper-shaped (rows, features, epochs) grid for the training timings;
/// epochs taper so the large shapes stay in bench-suite budget.
const SHAPES: &[(usize, usize, usize)] = &[(1000, 20, 10), (2000, 30, 8), (5000, 50, 4)];
/// The `--smoke` / CI-gate shape (ResNet only): the shape the ≥2×
/// acceptance bar is stated at.
const SMOKE_SHAPE: (usize, usize, usize) = (2000, 30, 3);
/// GP kernel sizes (training rows after the cap; features fixed at 8).
const GP_SIZES: &[usize] = &[256, 512];
const GP_FEATURES: usize = 8;
/// Table-1-sized synthetic dataset for the end-to-end RTDL_N run.
const RTDL_SHAPE: (usize, usize) = (768, 8);

#[derive(Serialize)]
struct KernelRow {
    learner: String,
    rows: usize,
    features: usize,
    epochs: usize,
    scalar_secs: f64,
    batched_secs: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct RtdlRow {
    rows: usize,
    features: usize,
    resnet_epochs: usize,
    scalar_secs: f64,
    batched_secs: f64,
    speedup: f64,
    score: f64,
}

#[derive(Serialize)]
struct Data {
    kernels: Vec<KernelRow>,
    rtdl: Vec<RtdlRow>,
}

struct Args {
    learner: String,
    run_batched: bool,
    run_scalar: bool,
    smoke: bool,
    repeats: usize,
    seed: u64,
    common: CommonArgs,
}

fn parse_args() -> Args {
    let mut args = Args {
        learner: "all".into(),
        run_batched: false,
        run_scalar: false,
        smoke: false,
        repeats: 3,
        seed: 0xE_AFE,
        common: CommonArgs::default(),
    };
    let mut threads = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--learner" => args.learner = value("--learner"),
            "--batched" => args.run_batched = true,
            "--scalar" => args.run_scalar = true,
            "--smoke" => args.smoke = true,
            "--repeats" => args.repeats = value("--repeats").parse().expect("int repeats"),
            "--seed" => args.seed = value("--seed").parse().expect("int seed"),
            "--out" => args.common.out = std::path::PathBuf::from(value("--out")),
            "--threads" => threads = value("--threads").parse().expect("int threads"),
            "--quiet" => args.common.quiet = true,
            "--metrics" => args.common.metrics = true,
            "--trace-out" => {
                args.common.trace_out = Some(std::path::PathBuf::from(value("--trace-out")))
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --learner mlp|resnet|gp|rtdl|all --batched --scalar --smoke \
                     --repeats n --seed n --out dir --threads n --quiet --metrics \
                     --trace-out path"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    assert!(args.repeats >= 1, "--repeats must be >= 1");
    assert!(
        matches!(
            args.learner.as_str(),
            "mlp" | "resnet" | "gp" | "rtdl" | "all"
        ),
        "--learner must be mlp|resnet|gp|rtdl|all, got {}",
        args.learner
    );
    // Neither flag = both backends (the interesting comparison).
    if !args.run_batched && !args.run_scalar {
        args.run_batched = true;
        args.run_scalar = true;
    }
    runtime::set_global_threads(threads);
    args.common.install_telemetry();
    args
}

impl Args {
    fn wants(&self, learner: &str) -> bool {
        self.learner == "all" || self.learner == learner
    }
}

fn class_data(
    name: &str,
    rows: usize,
    features: usize,
    seed: u64,
) -> (Vec<Vec<f64>>, Vec<usize>, usize) {
    let frame = SynthSpec::new(name, rows, features, Task::Classification)
        .with_seed(seed)
        .generate()
        .expect("synthetic frame");
    let x = learners::feature_matrix(&frame);
    let y = frame.label().classes().expect("classification").to_vec();
    let n_classes = frame.label().n_classes();
    (x, y, n_classes)
}

/// Minimum fit wall-clock over `repeats` identical runs.
fn time_min(repeats: usize, mut run: impl FnMut() -> f64) -> f64 {
    (0..repeats).map(|_| run()).fold(f64::INFINITY, f64::min)
}

fn time_mlp(x: &[Vec<f64>], y: &[usize], n_classes: usize, cfg: MlpConfig, repeats: usize) -> f64 {
    time_min(repeats, || {
        let mut m = MlpClassifier::new(cfg);
        let t = Instant::now();
        m.fit(x, y, n_classes).expect("mlp fit");
        t.elapsed().as_secs_f64()
    })
}

fn time_resnet(
    x: &[Vec<f64>],
    y: &[usize],
    n_classes: usize,
    cfg: ResNetConfig,
    repeats: usize,
) -> f64 {
    time_min(repeats, || {
        let mut m = ResNetClassifier::new(cfg);
        let t = Instant::now();
        m.fit(x, y, n_classes).expect("resnet fit");
        t.elapsed().as_secs_f64()
    })
}

/// Time the learner's row-slice GP fit (kernel fill + Cholesky + solve).
fn time_gp_batched(x: &[Vec<f64>], y: &[f64], cfg: GpConfig, repeats: usize) -> (f64, Vec<f64>) {
    let mut preds = Vec::new();
    let secs = time_min(repeats, || {
        let mut gp = GaussianProcess::new(cfg);
        let t = Instant::now();
        gp.fit(x, y).expect("gp fit");
        let secs = t.elapsed().as_secs_f64();
        preds = gp.predict(x).expect("gp predict");
        secs
    });
    (secs, preds)
}

/// Time the pre-refactor reference: `Vec<Vec<f64>>` training rows, a
/// per-element `get`/`set` kernel fill, and the scalar `cholesky_ref` —
/// returning its posterior means for the bit-equality check.
fn time_gp_scalar(x: &[Vec<f64>], y: &[f64], cfg: GpConfig, repeats: usize) -> (f64, Vec<f64>) {
    let ls2 = cfg.length_scale * cfg.length_scale;
    let kernel = |a: &[f64], b: &[f64]| (-sq_dist(a, b) / (2.0 * ls2)).exp();
    let mut preds = Vec::new();
    let secs = time_min(repeats, || {
        let t = Instant::now();
        let scaler = Standardizer::fit(x);
        let rows = to_row_major(&scaler.transform(x));
        let n = rows.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|v| (v - y_mean).powi(2)).sum::<f64>() / n as f64;
        let y_std = var.sqrt().max(1e-12);
        let yz: Vec<f64> = y.iter().map(|v| (v - y_mean) / y_std).collect();
        let mut k = SquareMatrix::zeros(n);
        for i in 0..n {
            for j in 0..=i {
                let v = kernel(&rows[i], &rows[j]);
                k.set(i, j, v);
                k.set(j, i, v);
            }
        }
        k.add_diagonal(cfg.noise.max(1e-10));
        let l = k.cholesky_ref().expect("reference cholesky");
        let alpha = l.cholesky_solve(&yz).expect("reference solve");
        let secs = t.elapsed().as_secs_f64();
        preds = rows
            .iter()
            .map(|r| {
                let kz: f64 = rows.iter().zip(&alpha).map(|(t, a)| kernel(r, t) * a).sum();
                kz * y_std + y_mean
            })
            .collect();
        secs
    });
    (secs, preds)
}

fn speedup_cell(scalar: f64, batched: f64) -> String {
    if scalar > 0.0 && batched > 0.0 {
        format!("{:.2}x", scalar / batched)
    } else {
        "-".into()
    }
}

fn fmt_opt_secs(v: f64) -> String {
    if v > 0.0 {
        fmt_secs(v)
    } else {
        "-".into()
    }
}

fn main() {
    let args = parse_args();
    let repeats = if args.smoke { 1 } else { args.repeats };
    println!("== perf_nn: batched dense kernels vs scalar reference ==");
    println!(
        "settings: repeats={repeats} seed={:#x} threads={} backends={}{}",
        args.seed,
        runtime::global_threads(),
        if args.run_scalar { "scalar " } else { "" },
        if args.run_batched { "batched" } else { "" },
    );

    if args.smoke {
        // CI gate: batched ResNet training must not lose to the scalar
        // reference at the acceptance shape, and the two fits must be the
        // same network bit for bit.
        let (n_rows, n_features, epochs) = SMOKE_SHAPE;
        let (x, y, n_classes) = class_data("perf-nn-smoke", n_rows, n_features, args.seed);
        let base = ResNetConfig {
            epochs,
            seed: args.seed,
            ..ResNetConfig::default()
        };
        let mut scalar = ResNetClassifier::new(ResNetConfig {
            backend: NnBackend::Scalar,
            ..base
        });
        let t = Instant::now();
        scalar.fit(&x, &y, n_classes).expect("scalar fit");
        let scalar_secs = t.elapsed().as_secs_f64();
        let mut batched = ResNetClassifier::new(base);
        let t = Instant::now();
        batched.fit(&x, &y, n_classes).expect("batched fit");
        let batched_secs = t.elapsed().as_secs_f64();
        for (a, b) in batched
            .trained_params()
            .expect("fitted")
            .iter()
            .zip(scalar.trained_params().expect("fitted"))
        {
            assert_eq!(a.to_bits(), b.to_bits(), "smoke: backends diverged");
        }
        println!(
            "resnet {n_rows}x{n_features}: scalar {} batched {} ({:.2}x)",
            fmt_secs(scalar_secs),
            fmt_secs(batched_secs),
            scalar_secs / batched_secs,
        );
        if batched_secs > scalar_secs {
            eprintln!(
                "SMOKE FAIL: batched fit ({}) slower than scalar ({})",
                fmt_secs(batched_secs),
                fmt_secs(scalar_secs)
            );
            std::process::exit(1);
        }
        println!("smoke ok: batched <= scalar, networks bit-identical");
        return;
    }

    let mut kernels = Vec::new();
    let mut rtdl = Vec::new();
    let mut table = TextTable::new(vec![
        "Learner", "Shape", "Epochs", "Scalar", "Batched", "Speedup",
    ]);

    for learner in ["mlp", "resnet"] {
        if !args.wants(learner) {
            continue;
        }
        for &(n_rows, n_features, epochs) in SHAPES {
            let (x, y, n_classes) = class_data(
                &format!("perf-nn-{n_rows}x{n_features}"),
                n_rows,
                n_features,
                args.seed,
            );
            let time_backend = |backend: NnBackend| match learner {
                "mlp" => time_mlp(
                    &x,
                    &y,
                    n_classes,
                    MlpConfig {
                        epochs,
                        seed: args.seed,
                        backend,
                        ..MlpConfig::default()
                    },
                    repeats,
                ),
                _ => time_resnet(
                    &x,
                    &y,
                    n_classes,
                    ResNetConfig {
                        epochs,
                        seed: args.seed,
                        backend,
                        ..ResNetConfig::default()
                    },
                    repeats,
                ),
            };
            let scalar_secs = if args.run_scalar {
                time_backend(NnBackend::Scalar)
            } else {
                0.0
            };
            let batched_secs = if args.run_batched {
                time_backend(NnBackend::Batched)
            } else {
                0.0
            };
            if !args.common.quiet {
                eprintln!(
                    "  {learner} {n_rows}x{n_features}: {}",
                    speedup_cell(scalar_secs, batched_secs)
                );
            }
            table.row(vec![
                learner.to_string(),
                format!("{n_rows}x{n_features}"),
                epochs.to_string(),
                fmt_opt_secs(scalar_secs),
                fmt_opt_secs(batched_secs),
                speedup_cell(scalar_secs, batched_secs),
            ]);
            kernels.push(KernelRow {
                learner: learner.to_string(),
                rows: n_rows,
                features: n_features,
                epochs,
                scalar_secs,
                batched_secs,
                speedup: if scalar_secs > 0.0 && batched_secs > 0.0 {
                    scalar_secs / batched_secs
                } else {
                    0.0
                },
            });
        }
    }

    if args.wants("gp") {
        for &n in GP_SIZES {
            let mut rng = StdRng::seed_from_u64(args.seed ^ n as u64);
            let x: Vec<Vec<f64>> = (0..GP_FEATURES)
                .map(|_| (0..n).map(|_| rng.gen_range(-2.0f64..2.0)).collect())
                .collect();
            let y: Vec<f64> = (0..n)
                .map(|r| x.iter().map(|c| c[r]).sum::<f64>().sin())
                .collect();
            let cfg = GpConfig {
                max_train_rows: n,
                ..GpConfig::default()
            };
            let (scalar_secs, ref_preds) = if args.run_scalar {
                time_gp_scalar(&x, &y, cfg, repeats)
            } else {
                (0.0, Vec::new())
            };
            let (batched_secs, preds) = if args.run_batched {
                time_gp_batched(&x, &y, cfg, repeats)
            } else {
                (0.0, Vec::new())
            };
            if args.run_scalar && args.run_batched {
                for (p, q) in preds.iter().zip(&ref_preds) {
                    assert_eq!(p.to_bits(), q.to_bits(), "gp n={n}: backends diverged");
                }
            }
            if !args.common.quiet {
                eprintln!(
                    "  gp {n}x{GP_FEATURES}: {}",
                    speedup_cell(scalar_secs, batched_secs)
                );
            }
            table.row(vec![
                "gp".to_string(),
                format!("{n}x{GP_FEATURES}"),
                "-".to_string(),
                fmt_opt_secs(scalar_secs),
                fmt_opt_secs(batched_secs),
                speedup_cell(scalar_secs, batched_secs),
            ]);
            kernels.push(KernelRow {
                learner: "gp".to_string(),
                rows: n,
                features: GP_FEATURES,
                epochs: 0,
                scalar_secs,
                batched_secs,
                speedup: if scalar_secs > 0.0 && batched_secs > 0.0 {
                    scalar_secs / batched_secs
                } else {
                    0.0
                },
            });
        }
    }

    if args.wants("rtdl") {
        let (n_rows, n_features) = RTDL_SHAPE;
        let frame = SynthSpec::new("perf-nn-rtdl", n_rows, n_features, Task::Classification)
            .with_seed(args.seed)
            .generate()
            .expect("synthetic frame");
        let resnet_epochs = 15;
        let run = |backend: NnBackend| {
            let cfg = DlBaselineConfig {
                resnet: ResNetConfig {
                    epochs: resnet_epochs,
                    backend,
                    ..ResNetConfig::default()
                },
                seed: args.seed,
                ..DlBaselineConfig::default()
            };
            let mut score = 0.0;
            let secs = time_min(repeats, || {
                let t = Instant::now();
                let r = run_rtdl_n(&cfg, &frame).expect("run_rtdl_n");
                score = r.best_score;
                t.elapsed().as_secs_f64()
            });
            (secs, score)
        };
        let (scalar_secs, scalar_score) = if args.run_scalar {
            run(NnBackend::Scalar)
        } else {
            (0.0, 0.0)
        };
        let (batched_secs, batched_score) = if args.run_batched {
            run(NnBackend::Batched)
        } else {
            (0.0, 0.0)
        };
        if args.run_scalar && args.run_batched {
            assert_eq!(
                scalar_score.to_bits(),
                batched_score.to_bits(),
                "rtdl: backends reported different scores ({scalar_score} vs {batched_score})"
            );
        }
        let score = if args.run_batched {
            batched_score
        } else {
            scalar_score
        };
        if !args.common.quiet {
            eprintln!(
                "  rtdl {n_rows}x{n_features}: {} (score {score:.3})",
                speedup_cell(scalar_secs, batched_secs)
            );
        }
        table.row(vec![
            "rtdl_n".to_string(),
            format!("{n_rows}x{n_features}"),
            resnet_epochs.to_string(),
            fmt_opt_secs(scalar_secs),
            fmt_opt_secs(batched_secs),
            speedup_cell(scalar_secs, batched_secs),
        ]);
        rtdl.push(RtdlRow {
            rows: n_rows,
            features: n_features,
            resnet_epochs,
            scalar_secs,
            batched_secs,
            speedup: if scalar_secs > 0.0 && batched_secs > 0.0 {
                scalar_secs / batched_secs
            } else {
                0.0
            },
            score,
        });
    }

    table.print();
    args.common
        .write_json("BENCH_nn.json", &Data { kernels, rtdl });
    args.common.finish();
}
