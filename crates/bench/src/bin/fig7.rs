//! **Figure 7** — learning curves: best downstream score vs training
//! epoch for AutoFS_R, NFS, E-AFE_D and E-AFE. The paper's claim: E-AFE
//! saturates ≥ 2× faster than NFS (and reaches the same score with far
//! fewer downstream evaluations / seconds).
//!
//! Regenerate: `cargo run -p bench --release --bin fig7 [--epochs2 12]`

use bench::{fmt_score, print_header, CommonArgs, TextTable};
use eafe::{Engine, RunResult};
use minhash::HashFamily;
use serde::Serialize;

#[derive(Serialize)]
struct Curve {
    dataset: String,
    method: String,
    /// (epoch, best score so far, cumulative downstream evals, seconds)
    points: Vec<(usize, f64, usize, f64)>,
}

fn curve(result: &RunResult, dataset: &str) -> Curve {
    Curve {
        dataset: dataset.to_string(),
        method: result.method.clone(),
        points: result
            .trace
            .iter()
            .map(|p| (p.epoch, p.score, p.downstream_evals, p.elapsed_secs))
            .collect(),
    }
}

fn main() {
    let args = CommonArgs::parse();
    print_header("Figure 7: learning curves (score vs epoch)", &args);
    let cfg = args.config();
    let fpe = args.fpe_model(HashFamily::Ccws, 48);

    let mut curves = Vec::new();
    for info in args.dataset_infos() {
        if !args.quiet {
            eprintln!("running {} ...", info.name);
        }
        let frame = args.load(&info);
        let runs = vec![
            args.run_autofs_r(&cfg, &frame).expect("FS_R"),
            args.engine(Engine::nfs(cfg.clone()))
                .run(&frame)
                .expect("NFS"),
            args.engine(Engine::e_afe_d(cfg.clone(), 0.5))
                .run(&frame)
                .expect("E-AFE_D"),
            args.engine(Engine::e_afe(cfg.clone(), fpe.clone()))
                .run(&frame)
                .expect("E-AFE"),
        ];

        println!("--- {} ({}) ---", info.name, frame.shape_str());
        let max_epoch = runs.iter().map(|r| r.trace.len()).max().unwrap_or(0);
        let mut table = TextTable::new(vec!["epoch", "AutoFS_R", "NFS", "E-AFE_D", "E-AFE"]);
        for e in 0..max_epoch {
            let cell = |r: &RunResult| {
                r.trace
                    .get(e.min(r.trace.len().saturating_sub(1)))
                    .map(|p| fmt_score(p.score))
                    .unwrap_or_else(|| "-".into())
            };
            table.row(vec![
                e.to_string(),
                cell(&runs[0]),
                cell(&runs[1]),
                cell(&runs[2]),
                cell(&runs[3]),
            ]);
        }
        table.print();

        // Speed-to-score: epochs each method needs to reach 99% of NFS's
        // final score (the paper's "2x faster when saturated").
        let nfs_final = runs[1].trace.last().map(|p| p.score).unwrap_or(0.0);
        let target = runs[1].base_score + 0.99 * (nfs_final - runs[1].base_score);
        for r in &runs {
            let reach = r
                .trace
                .iter()
                .find(|p| p.score >= target)
                .map(|p| p.epoch.to_string())
                .unwrap_or_else(|| "never".into());
            println!(
                "{:>8}: reaches 99% of NFS-final at epoch {reach} \
                 (final {:.3}, evals {}, {:.1}s)",
                r.method, r.best_score, r.downstream_evals, r.total_secs
            );
        }
        println!();
        for r in &runs {
            curves.push(curve(r, info.name));
        }
    }
    args.write_json("fig7.json", &curves);
    args.finish();
}
