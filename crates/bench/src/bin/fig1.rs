//! **Figure 1** — sample percentage vs downstream performance and vs
//! computation time. The paper's motivation study: score plateaus well
//! before 100% of the samples, while evaluation time keeps climbing.
//!
//! Regenerate: `cargo run -p bench --release --bin fig1 [--scale 0.2]`

use bench::{fmt_score, fmt_secs, print_header, CommonArgs, TextTable};
use serde::Serialize;
use std::time::Instant;
use tabular::sample::stratified_subsample;

const FRACTIONS: [f64; 8] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1.0];
const REPEATS: u64 = 5; // the paper repeats 10 times; 5 keeps this quick

#[derive(Serialize)]
struct Point {
    dataset: String,
    fraction: f64,
    mean_score: f64,
    mean_secs: f64,
}

fn main() {
    let args = CommonArgs::parse();
    print_header("Figure 1: sample percentage vs performance and time", &args);
    let evaluator = args.cached(args.evaluator());

    let mut points = Vec::new();
    for info in args.dataset_infos() {
        let frame = args.load(&info);
        let mut table = TextTable::new(vec!["Sample %", "Score", "Eval time"]);
        for &fraction in &FRACTIONS {
            let mut score_sum = 0.0;
            let mut secs_sum = 0.0;
            for rep in 0..REPEATS {
                let sub =
                    stratified_subsample(&frame, fraction, args.seed ^ rep).expect("subsample");
                let t0 = Instant::now();
                let score = evaluator.evaluate(&sub).expect("evaluate");
                secs_sum += t0.elapsed().as_secs_f64();
                score_sum += score;
            }
            let p = Point {
                dataset: info.name.to_string(),
                fraction,
                mean_score: score_sum / REPEATS as f64,
                mean_secs: secs_sum / REPEATS as f64,
            };
            table.row(vec![
                format!("{:.0}%", fraction * 100.0),
                fmt_score(p.mean_score),
                fmt_secs(p.mean_secs),
            ]);
            points.push(p);
        }
        println!("--- {} ({}) ---", info.name, frame.shape_str());
        table.print();
        println!();
    }
    args.write_json("fig1.json", &points);

    // Shape check the paper's claim: for each dataset, the score at 50%
    // samples should be within a few points of the 100% score while time
    // should be clearly lower.
    for info in args.dataset_infos() {
        let series: Vec<&Point> = points.iter().filter(|p| p.dataset == info.name).collect();
        let half = series.iter().find(|p| p.fraction == 0.5).unwrap();
        let full = series.iter().find(|p| p.fraction == 1.0).unwrap();
        println!(
            "{}: score@50% = {:.3} vs score@100% = {:.3} (gap {:+.3}); \
             time@50% = {} vs time@100% = {}",
            info.name,
            half.mean_score,
            full.mean_score,
            half.mean_score - full.mean_score,
            fmt_secs(half.mean_secs),
            fmt_secs(full.mean_secs),
        );
    }
    args.finish();
}
