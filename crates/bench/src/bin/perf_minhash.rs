//! **MinHash sketch benchmark** — naive scalar sketching vs the
//! table-driven and batch kernels, plus the content-addressed signature
//! cache, at paper-scale shapes (d = 48, 1k–10k rows, 100–1000 columns).
//!
//! For each shape the binary sketches every column through the
//! compressor's `to_weights` weighting under three paths:
//!
//! - **naive** — `WeightedMinHasher::signature`, re-deriving every
//!   `(i, k)` draw per column (the pre-PR-4 hot loop);
//! - **table** — `signature_tabled`, per-column lookups into the
//!   precomputed [`DrawTables`] (warm-table regime; the one-off build
//!   cost is its own column);
//! - **batch** — `signature_batch`, one table pass shared by all columns.
//!
//! All three produce bit-identical signatures (asserted every run). A
//! final section times a cold vs warm `compress_normalized_batch` through
//! the runtime's signature cache and reports the warm pass's cache misses
//! (zero when the cache is doing its job).
//!
//! Regenerate: `scripts/bench_minhash.sh` (or
//! `cargo run -p bench --release --bin perf_minhash`).
//!
//! ```text
//! --family <f>   ccws|icws|pcws|0bit|minhash|all     (default ccws)
//! --dim <d>      signature dimension                 (default 48)
//! --rows <n>     override the shape grid: rows       (with --cols)
//! --cols <n>     override the shape grid: columns    (with --rows)
//! --naive / --table / --batch
//!                time only the named paths           (default: all)
//! --no-cache     skip the signature-cache section
//! --smoke        one small shape, 1 repeat, no artifact; exit 1 if the
//!                table path is slower than naive (the CI gate)
//! --repeats <n>  timing repeats per cell, min taken  (default 2)
//! --seed <n>     data + hasher seed                  (default 0xEAFE)
//! --out <dir>    artifact directory                  (default bench_results)
//! --threads <n>  worker-thread ceiling, 0 = all      (default 0)
//! --quiet        suppress per-shape progress lines
//! --metrics      end-of-run telemetry counter/histogram summary
//! --trace-out <path>  JSON-lines telemetry event stream
//! ```
//!
//! [`DrawTables`]: minhash::DrawTables

use bench::{fmt_secs, CommonArgs, TextTable};
use minhash::{HashFamily, SampleCompressor, Signature, WeightedMinHasher};
use serde::Serialize;
use std::time::Instant;

/// Paper-shaped (rows, columns) grid at the default d = 48.
const SHAPES: &[(usize, usize)] = &[(1000, 100), (5000, 500), (10_000, 1000)];
const SMOKE_SHAPE: (usize, usize) = (1000, 100);

#[derive(Serialize)]
struct Row {
    family: String,
    d: usize,
    rows: usize,
    cols: usize,
    naive_secs: f64,
    table_secs: f64,
    batch_secs: f64,
    table_build_secs: f64,
    speedup_table: f64,
    speedup_batch: f64,
    cache_cold_secs: f64,
    cache_warm_secs: f64,
    cache_warm_misses: u64,
}

struct Args {
    families: Vec<HashFamily>,
    dim: usize,
    shape: Option<(usize, usize)>,
    run_naive: bool,
    run_table: bool,
    run_batch: bool,
    cache_section: bool,
    smoke: bool,
    repeats: usize,
    seed: u64,
    common: CommonArgs,
}

fn parse_family(name: &str) -> Vec<HashFamily> {
    match name {
        "ccws" => vec![HashFamily::Ccws],
        "icws" => vec![HashFamily::Icws],
        "pcws" => vec![HashFamily::Pcws],
        "0bit" | "zerobit" => vec![HashFamily::ZeroBitCws],
        "minhash" => vec![HashFamily::MinHash],
        "all" => HashFamily::ALL.to_vec(),
        other => panic!("--family must be ccws|icws|pcws|0bit|minhash|all, got {other}"),
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        families: vec![HashFamily::Ccws],
        dim: 48,
        shape: None,
        run_naive: false,
        run_table: false,
        run_batch: false,
        cache_section: true,
        smoke: false,
        repeats: 2,
        seed: 0xE_AFE,
        common: CommonArgs::default(),
    };
    let (mut rows, mut cols) = (None, None);
    let mut threads = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--family" => args.families = parse_family(&value("--family")),
            "--dim" => args.dim = value("--dim").parse().expect("int dim"),
            "--rows" => rows = Some(value("--rows").parse().expect("int rows")),
            "--cols" => cols = Some(value("--cols").parse().expect("int cols")),
            "--naive" => args.run_naive = true,
            "--table" => args.run_table = true,
            "--batch" => args.run_batch = true,
            "--no-cache" => args.cache_section = false,
            "--smoke" => args.smoke = true,
            "--repeats" => args.repeats = value("--repeats").parse().expect("int repeats"),
            "--seed" => args.seed = value("--seed").parse().expect("int seed"),
            "--out" => args.common.out = std::path::PathBuf::from(value("--out")),
            "--threads" => threads = value("--threads").parse().expect("int threads"),
            "--quiet" => args.common.quiet = true,
            "--metrics" => args.common.metrics = true,
            "--trace-out" => {
                args.common.trace_out = Some(std::path::PathBuf::from(value("--trace-out")))
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --family ccws|icws|pcws|0bit|minhash|all --dim n --rows n \
                     --cols n --naive --table --batch --no-cache --smoke --repeats n \
                     --seed n --out dir --threads n --quiet --metrics --trace-out path"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    // No path flag = time every path.
    if !(args.run_naive || args.run_table || args.run_batch) {
        args.run_naive = true;
        args.run_table = true;
        args.run_batch = true;
    }
    match (rows, cols) {
        (Some(r), Some(c)) => args.shape = Some((r, c)),
        (None, None) => {}
        _ => panic!("--rows and --cols must be given together"),
    }
    assert!(args.repeats >= 1, "--repeats must be >= 1");
    assert!(args.dim >= 1, "--dim must be >= 1");
    runtime::set_global_threads(threads);
    args.common.install_telemetry();
    args
}

/// Deterministic synthetic columns: smooth, all-finite, distinct content
/// per column (so every column is a distinct cache entry).
fn make_columns(rows: usize, cols: usize, seed: u64) -> Vec<Vec<f64>> {
    (0..cols)
        .map(|j| {
            let phase = (seed.wrapping_add(j as u64) % 997) as f64 * 0.013;
            (0..rows)
                .map(|i| ((i as f64) * 0.37 + (j as f64) * 1.73 + phase).sin() * 5.0)
                .collect()
        })
        .collect()
}

/// Minimum wall-clock of `f` over `repeats` runs; `f` must return the
/// signatures so the work cannot be optimised away (and so parity between
/// paths can be asserted).
fn time_sketch(repeats: usize, mut f: impl FnMut() -> Vec<Signature>) -> (f64, Vec<Signature>) {
    let mut best = f64::INFINITY;
    let mut out = Vec::new();
    for _ in 0..repeats {
        let t = Instant::now();
        out = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, out)
}

fn main() {
    let args = parse_args();
    let shapes: Vec<(usize, usize)> = match (args.smoke, args.shape) {
        (true, _) => vec![SMOKE_SHAPE],
        (false, Some(s)) => vec![s],
        (false, None) => SHAPES.to_vec(),
    };
    let repeats = if args.smoke { 1 } else { args.repeats };
    println!("== perf_minhash: naive vs table vs batch sketching ==");
    println!(
        "settings: d={} repeats={repeats} seed={:#x} threads={} families={}",
        args.dim,
        args.seed,
        runtime::global_threads(),
        args.families
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(","),
    );

    let mut table = TextTable::new(vec![
        "Family",
        "Shape",
        "Naive",
        "Table",
        "Batch",
        "Build (once)",
        "Speedup T",
        "Speedup B",
        "Cache cold/warm",
        "Warm miss",
    ]);
    let mut rows_out = Vec::new();
    for &family in &args.families {
        for &(n_rows, n_cols) in &shapes {
            let columns = make_columns(n_rows, n_cols, args.seed);
            let hasher = WeightedMinHasher::new(family, args.dim, args.seed).expect("hasher");
            let compressor =
                SampleCompressor::new(family, args.dim, args.seed).expect("compressor");
            let weights: Vec<Vec<f64>> = columns
                .iter()
                .map(|c| SampleCompressor::to_weights(c))
                .collect();
            let wrefs: Vec<&[f64]> = weights.iter().map(Vec::as_slice).collect();

            // One-off table build (the warm-up that also makes the timed
            // table/batch passes see the engine's steady-state regime).
            let t = Instant::now();
            minhash::draw_tables(&hasher).sketch(&[(n_rows - 1, 1.0)]);
            let table_build_secs = t.elapsed().as_secs_f64();

            let (naive_secs, naive_sigs) = if args.run_naive {
                time_sketch(repeats, || {
                    wrefs
                        .iter()
                        .map(|w| hasher.signature(w).expect("naive signature"))
                        .collect()
                })
            } else {
                (0.0, Vec::new())
            };
            let (table_secs, table_sigs) = if args.run_table {
                time_sketch(repeats, || {
                    wrefs
                        .iter()
                        .map(|w| hasher.signature_tabled(w).expect("tabled signature"))
                        .collect()
                })
            } else {
                (0.0, Vec::new())
            };
            let (batch_secs, batch_sigs) = if args.run_batch {
                time_sketch(repeats, || {
                    hasher.signature_batch(&wrefs).expect("batch signature")
                })
            } else {
                (0.0, Vec::new())
            };
            if args.run_naive && args.run_table {
                assert_eq!(naive_sigs, table_sigs, "table path diverged from naive");
            }
            if args.run_naive && args.run_batch {
                assert_eq!(naive_sigs, batch_sigs, "batch path diverged from naive");
            }

            let (mut cache_cold, mut cache_warm, mut warm_misses) = (0.0, 0.0, 0u64);
            if args.cache_section {
                let crefs: Vec<&[f64]> = columns.iter().map(Vec::as_slice).collect();
                let t = Instant::now();
                let cold = runtime::compress_normalized_batch(&compressor, &crefs)
                    .expect("cold batch compress");
                cache_cold = t.elapsed().as_secs_f64();
                let before = runtime::sig_cache_stats();
                let t = Instant::now();
                let warm = runtime::compress_normalized_batch(&compressor, &crefs)
                    .expect("warm batch compress");
                cache_warm = t.elapsed().as_secs_f64();
                warm_misses = runtime::sig_cache_stats().misses - before.misses;
                assert_eq!(cold, warm, "warm cache pass changed the output");
            }

            let div = |a: f64, b: f64| if a > 0.0 && b > 0.0 { a / b } else { 0.0 };
            let speedup_table = div(naive_secs, table_secs);
            let speedup_batch = div(naive_secs, batch_secs);
            if !args.common.quiet {
                eprintln!(
                    "  {} {n_rows}x{n_cols}: table {speedup_table:.2}x, batch {speedup_batch:.2}x",
                    family.name()
                );
            }
            table.row(vec![
                family.name().to_string(),
                format!("{n_rows}x{n_cols}"),
                fmt_secs(naive_secs),
                fmt_secs(table_secs),
                fmt_secs(batch_secs),
                fmt_secs(table_build_secs),
                format!("{speedup_table:.2}x"),
                format!("{speedup_batch:.2}x"),
                format!("{}/{}", fmt_secs(cache_cold), fmt_secs(cache_warm)),
                warm_misses.to_string(),
            ]);
            rows_out.push(Row {
                family: family.name().to_string(),
                d: args.dim,
                rows: n_rows,
                cols: n_cols,
                naive_secs,
                table_secs,
                batch_secs,
                table_build_secs,
                speedup_table,
                speedup_batch,
                cache_cold_secs: cache_cold,
                cache_warm_secs: cache_warm,
                cache_warm_misses: warm_misses,
            });
        }
    }
    table.print();

    if args.smoke {
        for r in &rows_out {
            if r.naive_secs > 0.0 && r.table_secs > r.naive_secs {
                eprintln!(
                    "SMOKE FAIL: {} table path ({}) slower than naive ({})",
                    r.family,
                    fmt_secs(r.table_secs),
                    fmt_secs(r.naive_secs)
                );
                std::process::exit(1);
            }
            if r.cache_warm_misses > 0 {
                eprintln!(
                    "SMOKE FAIL: {} warm cache pass missed {} times",
                    r.family, r.cache_warm_misses
                );
                std::process::exit(1);
            }
        }
        println!("smoke ok: table <= naive, warm cache miss-free");
        args.common.finish();
        return;
    }
    args.common.write_json("BENCH_minhash.json", &rows_out);
    args.common.finish();
}
