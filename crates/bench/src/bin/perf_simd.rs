//! **SIMD kernel benchmark** — the pinned-reduction-tree kernels in the
//! `simd` crate against naive strict-order scalar loops, at the vector
//! lengths the learners actually use (GEMV rows, RBF distances, CWS
//! table scans).
//!
//! Three kernels, each timed at several lengths:
//!
//! - `dot` — the lane-tree dot product vs a single-accumulator
//!   sequential loop. The sequential loop's summation order is a strict
//!   FP dependency chain, so the compiler cannot auto-vectorise it; the
//!   tree's four independent accumulators are where the speedup comes
//!   from (and the documented reduction order is why it is still
//!   deterministic — DESIGN.md §13).
//! - `sq_dist` — squared Euclidean distance, same comparison (the GP RBF
//!   fill's inner loop).
//! - `axpy` — `out[i] += a·x[i]`: elementwise, bitwise tier-independent,
//!   reported for completeness (the naive loop vectorises here too, so
//!   expect parity rather than a win).
//!
//! Before any timing, the dispatched kernels are asserted bit-identical
//! to the portable tier on every benchmarked length.
//!
//! Regenerate: `scripts/bench_simd.sh` (or
//! `cargo run -p bench --release --bin perf_simd`).
//!
//! ```text
//! --smoke            assert dispatched dot <= naive at the gate length,
//!                    no artifact; exit 1 on failure (the CI gate)
//! --repeats <n>      timing repeats per cell, min taken     (default 5)
//! --seed <n>         input data seed                        (default 0xEAFE)
//! --out <dir>        artifact directory                     (default bench_results)
//! --threads <n>      worker-thread ceiling, 0 = all cores   (default 0)
//! --quiet            suppress per-length progress lines
//! --metrics          print the end-of-run telemetry summary
//! --trace-out <p>    stream telemetry events to a JSON-lines file
//! ```

use bench::{fmt_secs, CommonArgs, TextTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::hint::black_box;
use std::time::Instant;

/// Vector lengths covering the learners' working sizes: small GEMV rows
/// up through CWS table scans and RBF rows.
const LENGTHS: &[usize] = &[64, 256, 1024, 4096, 16384];
/// The `--smoke` / CI-gate length.
const SMOKE_LENGTH: usize = 4096;
/// Work per timing sample, in f64 multiply-adds (iterations scale down
/// as the vectors grow so every cell does comparable work).
const WORK_PER_SAMPLE: usize = 8_000_000;

/// Naive sequential dot product: one accumulator, ascending order — the
/// strict-FP baseline the lane tree replaced.
fn dot_naive(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        acc += x * y;
    }
    acc
}

/// Naive sequential squared distance.
fn sq_dist_naive(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Naive axpy.
fn axpy_naive(out: &mut [f64], a: f64, x: &[f64]) {
    for (o, v) in out.iter_mut().zip(x) {
        *o += a * v;
    }
}

#[derive(Serialize)]
struct KernelRow {
    kernel: String,
    n: usize,
    naive_secs: f64,
    simd_secs: f64,
    speedup: f64,
}

#[derive(Serialize)]
struct Data {
    isa: String,
    rows: Vec<KernelRow>,
}

struct Args {
    smoke: bool,
    repeats: usize,
    seed: u64,
    common: CommonArgs,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        repeats: 5,
        seed: 0xE_AFE,
        common: CommonArgs::default(),
    };
    let mut threads = 0usize;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--repeats" => args.repeats = value("--repeats").parse().expect("int repeats"),
            "--seed" => args.seed = value("--seed").parse().expect("int seed"),
            "--out" => args.common.out = std::path::PathBuf::from(value("--out")),
            "--threads" => threads = value("--threads").parse().expect("int threads"),
            "--quiet" => args.common.quiet = true,
            "--metrics" => args.common.metrics = true,
            "--trace-out" => {
                args.common.trace_out = Some(std::path::PathBuf::from(value("--trace-out")))
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --smoke --repeats n --seed n --out dir --threads n --quiet \
                     --metrics --trace-out path"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    assert!(args.repeats >= 1, "--repeats must be >= 1");
    runtime::set_global_threads(threads);
    args.common.install_telemetry();
    args
}

fn inputs(seed: u64, n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed ^ n as u64);
    let a = (0..n).map(|_| rng.gen_range(-2.0f64..2.0)).collect();
    let b = (0..n).map(|_| rng.gen_range(-2.0f64..2.0)).collect();
    (a, b)
}

/// Minimum wall-clock over `repeats` samples of `iters` kernel calls.
fn time_min(repeats: usize, iters: usize, mut run: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..repeats {
        let t = Instant::now();
        for _ in 0..iters {
            run();
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// Time one (kernel, length) cell: returns (naive_secs, simd_secs) for
/// the same number of kernel calls each.
fn time_cell(kernel: &str, a: &[f64], b: &[f64], repeats: usize) -> (f64, f64) {
    let n = a.len();
    let iters = (WORK_PER_SAMPLE / n).max(1);
    match kernel {
        "dot" => (
            time_min(repeats, iters, || {
                black_box(dot_naive(black_box(a), black_box(b)));
            }),
            time_min(repeats, iters, || {
                black_box(simd::dot(black_box(a), black_box(b)));
            }),
        ),
        "sq_dist" => (
            time_min(repeats, iters, || {
                black_box(sq_dist_naive(black_box(a), black_box(b)));
            }),
            time_min(repeats, iters, || {
                black_box(simd::sq_dist(black_box(a), black_box(b)));
            }),
        ),
        "axpy" => {
            let mut out = vec![0.0; n];
            let naive = time_min(repeats, iters, || {
                axpy_naive(black_box(&mut out), black_box(0.5), black_box(a));
            });
            out.fill(0.0);
            let tree = time_min(repeats, iters, || {
                simd::axpy(black_box(&mut out), black_box(0.5), black_box(a));
            });
            black_box(&out);
            (naive, tree)
        }
        other => unreachable!("unknown kernel {other}"),
    }
}

/// The dispatched tier must be bitwise the portable tier on every length
/// before any timing is trusted.
fn assert_tiers_bitwise(seed: u64) {
    for &n in LENGTHS {
        let (a, b) = inputs(seed, n);
        assert_eq!(
            simd::dot(&a, &b).to_bits(),
            simd::dot_portable(&a, &b).to_bits(),
            "dot tier mismatch at n={n}"
        );
        assert_eq!(
            simd::sq_dist(&a, &b).to_bits(),
            simd::sq_dist_portable(&a, &b).to_bits(),
            "sq_dist tier mismatch at n={n}"
        );
    }
}

fn main() {
    let args = parse_args();
    println!("== perf_simd: pinned-tree kernels vs naive sequential loops ==");
    println!(
        "settings: repeats={} seed={:#x} threads={} isa={} (simd-arch feature {}) cpu=[{}]",
        args.repeats,
        args.seed,
        runtime::global_threads(),
        simd::active_isa().name(),
        if simd::arch_feature_enabled() {
            "on"
        } else {
            "off"
        },
        simd::detected_cpu_features().join(", "),
    );
    assert_tiers_bitwise(args.seed);

    if args.smoke {
        // CI gate: the lane-tree dot product must not lose to the naive
        // sequential loop at the gate length. The naive loop is a strict
        // FP dependency chain the compiler cannot vectorise, so the tree
        // should win on any tier; losing means the dispatch or the tree
        // itself regressed.
        let (a, b) = inputs(args.seed, SMOKE_LENGTH);
        let (naive_secs, simd_secs) = time_cell("dot", &a, &b, args.repeats.max(5));
        println!(
            "dot n={SMOKE_LENGTH}: naive {} simd {} ({:.2}x)",
            fmt_secs(naive_secs),
            fmt_secs(simd_secs),
            naive_secs / simd_secs,
        );
        if simd_secs > naive_secs {
            eprintln!(
                "SMOKE FAIL: simd dot ({}) slower than naive sequential ({})",
                fmt_secs(simd_secs),
                fmt_secs(naive_secs)
            );
            std::process::exit(1);
        }
        println!("smoke ok: simd dot <= naive, tiers bit-identical");
        return;
    }

    let mut rows = Vec::new();
    let mut table = TextTable::new(vec!["Kernel", "n", "Naive", "SIMD", "Speedup"]);
    for kernel in ["dot", "sq_dist", "axpy"] {
        for &n in LENGTHS {
            let (a, b) = inputs(args.seed, n);
            let (naive_secs, simd_secs) = time_cell(kernel, &a, &b, args.repeats);
            let speedup = naive_secs / simd_secs;
            if !args.common.quiet {
                eprintln!("  {kernel} n={n}: {speedup:.2}x");
            }
            table.row(vec![
                kernel.to_string(),
                n.to_string(),
                fmt_secs(naive_secs),
                fmt_secs(simd_secs),
                format!("{speedup:.2}x"),
            ]);
            rows.push(KernelRow {
                kernel: kernel.to_string(),
                n,
                naive_secs,
                simd_secs,
                speedup,
            });
        }
    }
    table.print();
    args.common.write_json(
        "BENCH_simd.json",
        &Data {
            isa: simd::active_isa().name().to_string(),
            rows,
        },
    );
    args.common.finish();
}
