//! Offline trace analysis for `--trace-out` JSON-lines files.
//!
//! ```text
//! trace_tool <trace.jsonl> [more.jsonl ...] [sections]
//!
//!   --folded [PATH]       collapsed-stack flamegraph output (inferno /
//!                         speedscope folded format); written to PATH,
//!                         or stdout when PATH is omitted or `-`
//!   --critical-path       heaviest root-to-leaf span chain
//!   --attribution [KEY]   self-time grouped by span field KEY
//!                         (default `job`), inherited down the tree
//!   --cache               cache-efficiency report from counter totals
//! ```
//!
//! Several trace files merge into one report: file `p`'s spans are
//! tagged with a `process = p` field (order of the command line), span
//! ids are re-based so per-process id counters never collide, and
//! counter totals sum. `--attribution process` then splits time per
//! process — the natural view for a distributed run's coordinator +
//! worker trace files.
//!
//! With no section flags, every report prints to stdout. Typical
//! flamegraph pipeline:
//!
//! ```sh
//! cargo run --release --bin table1 -- --trace-out out/trace.jsonl
//! cargo run --release --bin trace_tool -- out/trace.jsonl --folded out/trace.folded
//! inferno-flamegraph < out/trace.folded > out/flame.svg
//! ```

use bench::trace::Trace;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    // Leading non-flag arguments are input files; several merge into one
    // report with per-file `process` tags.
    let mut inputs: Vec<PathBuf> = Vec::new();
    while let Some(path) = args
        .peek()
        .filter(|a| !a.starts_with("--") && *a != "-h")
        .cloned()
    {
        inputs.push(PathBuf::from(path));
        args.next();
    }
    if inputs.is_empty() {
        eprintln!(
            "usage: trace_tool <trace.jsonl> [more.jsonl ...] [--folded [PATH|-]] \
             [--critical-path] [--attribution [KEY]] [--cache]"
        );
        return ExitCode::FAILURE;
    }

    // Section selection; an optional value follows --folded/--attribution
    // when the next token is not itself a flag.
    let mut folded: Option<Option<PathBuf>> = None;
    let mut critical = false;
    let mut attribution: Option<String> = None;
    let mut cache = false;
    let mut any = false;
    while let Some(flag) = args.next() {
        any = true;
        // An optional value follows when the next token is not a flag.
        let mut optional_value = || -> Option<String> {
            let next = args.peek().filter(|v| !v.starts_with("--")).cloned();
            if next.is_some() {
                args.next();
            }
            next
        };
        match flag.as_str() {
            "--folded" => {
                folded = Some(optional_value().filter(|p| p != "-").map(PathBuf::from));
            }
            "--critical-path" => critical = true,
            "--attribution" => {
                attribution = Some(optional_value().unwrap_or_else(|| "job".to_string()));
            }
            "--cache" => cache = true,
            other => {
                eprintln!("trace_tool: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if !any {
        folded = Some(None);
        critical = true;
        attribution = Some("job".to_string());
        cache = true;
    }

    let mut traces = Vec::with_capacity(inputs.len());
    for path in &inputs {
        match Trace::from_path(path) {
            Ok(t) => traces.push(t),
            Err(e) => {
                eprintln!("trace_tool: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    let trace = if traces.len() == 1 {
        traces.pop().expect("one trace")
    } else {
        Trace::merged(traces)
    };
    eprintln!(
        "loaded {} file(s): {} spans, {} counters",
        inputs.len(),
        trace.spans.len(),
        trace.counts.len()
    );

    if let Some(dest) = folded {
        let text = trace.folded();
        match dest {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &text) {
                    eprintln!("trace_tool: write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "wrote {} folded stacks to {}",
                    text.lines().count(),
                    path.display()
                );
            }
            None => print!("{text}"),
        }
    }
    if critical {
        print!("{}", trace.critical_path());
    }
    if let Some(key) = attribution {
        print!("{}", trace.attribution(&key));
    }
    if cache {
        print!("{}", trace.cache_report());
    }
    ExitCode::SUCCESS
}
