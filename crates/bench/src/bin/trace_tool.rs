//! Offline trace analysis for `--trace-out` JSON-lines files.
//!
//! ```text
//! trace_tool <trace.jsonl> [sections]
//!
//!   --folded [PATH]       collapsed-stack flamegraph output (inferno /
//!                         speedscope folded format); written to PATH,
//!                         or stdout when PATH is omitted or `-`
//!   --critical-path       heaviest root-to-leaf span chain
//!   --attribution [KEY]   self-time grouped by span field KEY
//!                         (default `job`), inherited down the tree
//!   --cache               cache-efficiency report from counter totals
//! ```
//!
//! With no section flags, every report prints to stdout. Typical
//! flamegraph pipeline:
//!
//! ```sh
//! cargo run --release --bin table1 -- --trace-out out/trace.jsonl
//! cargo run --release --bin trace_tool -- out/trace.jsonl --folded out/trace.folded
//! inferno-flamegraph < out/trace.folded > out/flame.svg
//! ```

use bench::trace::Trace;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1).peekable();
    let Some(input) = args.next().filter(|a| a != "--help" && a != "-h") else {
        eprintln!(
            "usage: trace_tool <trace.jsonl> [--folded [PATH|-]] [--critical-path] \
             [--attribution [KEY]] [--cache]"
        );
        return ExitCode::FAILURE;
    };

    // Section selection; an optional value follows --folded/--attribution
    // when the next token is not itself a flag.
    let mut folded: Option<Option<PathBuf>> = None;
    let mut critical = false;
    let mut attribution: Option<String> = None;
    let mut cache = false;
    let mut any = false;
    while let Some(flag) = args.next() {
        any = true;
        // An optional value follows when the next token is not a flag.
        let mut optional_value = || -> Option<String> {
            let next = args.peek().filter(|v| !v.starts_with("--")).cloned();
            if next.is_some() {
                args.next();
            }
            next
        };
        match flag.as_str() {
            "--folded" => {
                folded = Some(optional_value().filter(|p| p != "-").map(PathBuf::from));
            }
            "--critical-path" => critical = true,
            "--attribution" => {
                attribution = Some(optional_value().unwrap_or_else(|| "job".to_string()));
            }
            "--cache" => cache = true,
            other => {
                eprintln!("trace_tool: unknown flag `{other}`");
                return ExitCode::FAILURE;
            }
        }
    }
    if !any {
        folded = Some(None);
        critical = true;
        attribution = Some("job".to_string());
        cache = true;
    }

    let trace = match Trace::from_path(&PathBuf::from(&input)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace_tool: {e}");
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "loaded {}: {} spans, {} counters",
        input,
        trace.spans.len(),
        trace.counts.len()
    );

    if let Some(dest) = folded {
        let text = trace.folded();
        match dest {
            Some(path) => {
                if let Err(e) = std::fs::write(&path, &text) {
                    eprintln!("trace_tool: write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                eprintln!(
                    "wrote {} folded stacks to {}",
                    text.lines().count(),
                    path.display()
                );
            }
            None => print!("{text}"),
        }
    }
    if critical {
        print!("{}", trace.critical_path());
    }
    if let Some(key) = attribution {
        print!("{}", trace.attribution(&key));
    }
    if cache {
        print!("{}", trace.cache_report());
    }
    ExitCode::SUCCESS
}
