//! **Distributed search benchmark** — end-to-end wall-clock of
//! `dist::Coordinator` driving real worker child processes over TCP
//! against the identical solo `Engine::run_full`, with the bitwise
//! determinism contract asserted at every worker count.
//!
//! Workers are this binary re-exec'd with `--worker` (the same
//! speculative cache-warming protocol `dist_worker` speaks). The
//! workload is an eval-heavy NFS stage-2 search whose downstream
//! evaluator carries a synthetic per-evaluation latency
//! (`--delay-ms`, `learners::Evaluator::synthetic_delay_us`): it models
//! the regime the paper's Table I identifies — downstream evaluation
//! dominating epoch time — where the cost is latency a distributed pool
//! can overlap, rather than local CPU. That keeps the measured speedup
//! honest on single-core CI boxes (the committed artifact records the
//! knob and the host's CPU count, and a delay-free CPU-bound 2-worker
//! ratio is reported alongside for contrast: on one core it shows the
//! protocol's pure overhead, on many cores it shows real CPU overlap).
//!
//! Regenerate: `scripts/bench_dist.sh` (or
//! `cargo run -p bench --release --bin perf_dist`).
//!
//! ```text
//! --smoke           CI gate: 2-worker run bitwise == solo and wall-clock
//!                   <= solo; exit 1 on failure
//! --rows <n>        dataset rows                          (default 400)
//! --cols <n>        feature columns                       (default 6)
//! --epochs <n>      stage-2 epochs                        (default 24)
//! --steps <n>       policy steps per epoch                (default 2)
//! --delay-ms <n>    synthetic per-evaluation latency      (default 150)
//! --seed <n>        search + data seed                    (default 0xEAFE)
//! --out <dir>       artifact directory                    (default bench_results)
//! --threads <n>     coordinator worker-thread ceiling     (default 0)
//! --quiet / --metrics / --trace-out <p>   as in every bench bin
//! --worker --connect HOST:PORT [--worker-threads n]   (internal: run as
//!                   a worker process)
//! ```

use bench::{fmt_secs, CommonArgs, TextTable};
use dist::{Coordinator, TcpTransport, Worker};
use eafe::{EafeConfig, Engine, RunResult, SplitMethod};
use serde::Serialize;
use std::net::TcpListener;
use std::time::Instant;
use tabular::{DataFrame, SynthSpec, Task};

// ---------------------------------------------------------------------------
// Worker mode — this binary re-exec'd as a worker process.
// ---------------------------------------------------------------------------

fn run_worker(addr: &str, threads: usize) -> ! {
    runtime::set_global_threads(threads);
    let exit = match TcpTransport::connect(addr) {
        Ok(mut transport) => match Worker::serve(&mut transport) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("perf_dist worker: session failed: {e}");
                1
            }
        },
        Err(e) => {
            eprintln!("perf_dist worker: cannot connect to {addr}: {e}");
            1
        }
    };
    std::process::exit(exit);
}

// ---------------------------------------------------------------------------
// Parent
// ---------------------------------------------------------------------------

struct Args {
    smoke: bool,
    rows: usize,
    cols: usize,
    epochs: usize,
    steps: usize,
    delay_ms: u64,
    seed: u64,
    threads: usize,
    common: CommonArgs,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        rows: 400,
        cols: 6,
        epochs: 24,
        steps: 2,
        delay_ms: 150,
        seed: 0xE_AFE,
        threads: 0,
        common: CommonArgs::default(),
    };
    let mut worker = false;
    let mut connect: Option<String> = None;
    let mut worker_threads: usize = 0;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--worker" => worker = true,
            "--connect" => connect = Some(value("--connect")),
            "--worker-threads" => {
                worker_threads = value("--worker-threads").parse().expect("int threads")
            }
            "--smoke" => args.smoke = true,
            "--rows" => args.rows = value("--rows").parse().expect("int rows"),
            "--cols" => args.cols = value("--cols").parse().expect("int cols"),
            "--epochs" => args.epochs = value("--epochs").parse().expect("int epochs"),
            "--steps" => args.steps = value("--steps").parse().expect("int steps"),
            "--delay-ms" => args.delay_ms = value("--delay-ms").parse().expect("int delay-ms"),
            "--seed" => args.seed = value("--seed").parse().expect("int seed"),
            "--threads" => args.threads = value("--threads").parse().expect("int threads"),
            "--out" => args.common.out = std::path::PathBuf::from(value("--out")),
            "--quiet" => args.common.quiet = true,
            "--metrics" => args.common.metrics = true,
            "--trace-out" => {
                args.common.trace_out = Some(std::path::PathBuf::from(value("--trace-out")))
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --smoke --rows n --cols n --epochs n --steps n --delay-ms n \
                     --seed n --out dir --threads n --quiet --metrics --trace-out path"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    if worker {
        let addr = connect.unwrap_or_else(|| {
            eprintln!("--worker requires --connect HOST:PORT");
            std::process::exit(2);
        });
        run_worker(&addr, worker_threads);
    }
    runtime::set_global_threads(args.threads);
    args.common.install_telemetry();
    args
}

fn dataset(args: &Args) -> DataFrame {
    SynthSpec::new("dist-bench", args.rows, args.cols, Task::Classification)
        .with_seed(args.seed)
        .generate()
        .expect("generate dataset")
}

/// The eval-heavy NFS engine: stage-2 only, every candidate evaluated
/// downstream, evaluation cost dominated by the latency knob.
fn engine(args: &Args, delay_ms: u64) -> Engine {
    let mut cfg = EafeConfig::fast();
    cfg.seed = args.seed;
    cfg.stage1_epochs = 0;
    cfg.stage2_epochs = args.epochs;
    cfg.steps_per_epoch = args.steps;
    cfg.evaluator.folds = 2;
    cfg.evaluator.forest.n_trees = 8;
    cfg.evaluator.forest.tree.max_depth = 5;
    cfg.evaluator.forest.tree.split = SplitMethod::Histogram;
    cfg.evaluator.synthetic_delay_us = delay_ms * 1000;
    Engine::nfs(cfg)
}

/// Spawn `n` worker children of this binary and a coordinator adopting
/// their accepted connections.
fn worker_pool(n: usize) -> (Coordinator<TcpTransport>, Vec<std::process::Child>) {
    let exe = std::env::current_exe().expect("current_exe");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr").to_string();
    let children: Vec<std::process::Child> = (0..n)
        .map(|_| {
            std::process::Command::new(&exe)
                .args(["--worker", "--connect", &addr, "--worker-threads", "1"])
                .spawn()
                .expect("spawn worker child")
        })
        .collect();
    let transports: Vec<TcpTransport> = (0..n)
        .map(|_| TcpTransport::from_stream(listener.accept().expect("accept worker").0))
        .collect();
    (Coordinator::new(transports), children)
}

/// Reap worker children, propagating any nonzero exit status.
fn reap(children: Vec<std::process::Child>) {
    for mut child in children {
        let status = child.wait().expect("wait for worker child");
        if !status.success() {
            eprintln!("worker child failed: {status}");
            std::process::exit(status.code().unwrap_or(1));
        }
    }
}

/// Hard determinism check: the distributed result must be bitwise the
/// solo result. Exits nonzero on divergence — a wrong answer is a failed
/// bench, not a data point.
fn assert_identical(solo: &(RunResult, DataFrame), dist: &(RunResult, DataFrame), what: &str) {
    let (a, af) = solo;
    let (b, bf) = dist;
    let ok = a.best_score.to_bits() == b.best_score.to_bits()
        && a.base_score.to_bits() == b.base_score.to_bits()
        && a.downstream_evals == b.downstream_evals
        && a.generated_features == b.generated_features
        && a.selected == b.selected
        && a.trace.len() == b.trace.len()
        && a.trace
            .iter()
            .zip(&b.trace)
            .all(|(x, y)| x.score.to_bits() == y.score.to_bits())
        && runtime::fingerprint_frame(af) == runtime::fingerprint_frame(bf);
    if !ok {
        eprintln!("DETERMINISM FAIL: {what} diverged from solo");
        std::process::exit(1);
    }
}

#[derive(Serialize, Clone)]
struct WorkerRun {
    workers: usize,
    secs: f64,
    speedup: f64,
    /// Coordinator-side wire + merge overhead as a share of wall-clock.
    wire_share: f64,
    wire_us: u64,
    bytes_sent: u64,
    bytes_received: u64,
    shards_dispatched: u64,
    shards_completed: u64,
    shards_retried: u64,
    entries_merged: u64,
    entries_fresh: u64,
    /// Cache hits the warmed sequential search served (solo serves ~0).
    cache_hits: u64,
}

/// One timed distributed run at `n` workers.
fn dist_run(args: &Args, delay_ms: u64, solo: &(RunResult, DataFrame), n: usize) -> WorkerRun {
    let frame = dataset(args);
    let engine = engine(args, delay_ms);
    let before = runtime::global_dist_stats();
    let (mut coordinator, children) = worker_pool(n);
    let start = Instant::now();
    let out = coordinator.run(&engine, &frame).expect("distributed run");
    let secs = start.elapsed().as_secs_f64();
    drop(coordinator);
    reap(children);
    let after = runtime::global_dist_stats();
    assert_identical(solo, &out, &format!("{n}-worker run"));
    let wire_us = after.wire_us - before.wire_us;
    WorkerRun {
        workers: n,
        secs,
        speedup: solo.0.total_secs / secs,
        wire_share: (wire_us as f64 / 1e6) / secs,
        wire_us,
        bytes_sent: after.bytes_sent - before.bytes_sent,
        bytes_received: after.bytes_received - before.bytes_received,
        shards_dispatched: after.shards_dispatched - before.shards_dispatched,
        shards_completed: after.shards_completed - before.shards_completed,
        shards_retried: after.shards_retried - before.shards_retried,
        entries_merged: after.entries_merged - before.entries_merged,
        entries_fresh: after.entries_fresh - before.entries_fresh,
        cache_hits: out.0.cache_hits,
    }
}

/// Timed solo baseline (its `total_secs` is the speedup denominator —
/// compute time as the engine itself accounts it).
fn solo_run(args: &Args, delay_ms: u64) -> (RunResult, DataFrame) {
    let frame = dataset(args);
    engine(args, delay_ms).run_full(&frame).expect("solo run")
}

#[derive(Serialize)]
struct Data {
    rows: usize,
    cols: usize,
    stage2_epochs: usize,
    steps_per_epoch: usize,
    eval_delay_ms: u64,
    host_cpus: usize,
    solo_secs: f64,
    solo_evals: usize,
    runs: Vec<WorkerRun>,
    /// 2-worker wall over solo wall with the latency knob off — the
    /// CPU-bound protocol overhead on this host (< 1 means real CPU
    /// overlap; ~1+ on a single-core host).
    cpu_bound_2worker_ratio: f64,
}

fn main() {
    let args = parse_args();
    println!("== perf_dist: coordinator + worker processes vs solo search ==");
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut run_args = args;
    if run_args.smoke {
        run_args.rows = 300;
        run_args.cols = 5;
        run_args.epochs = 8;
        run_args.steps = 2;
        run_args.delay_ms = run_args.delay_ms.min(40);
    }
    let (rows, cols, epochs, steps, delay_ms) = (
        run_args.rows,
        run_args.cols,
        run_args.epochs,
        run_args.steps,
        run_args.delay_ms,
    );
    println!(
        "settings: rows={rows} cols={cols} epochs={epochs} steps={steps} delay={delay_ms}ms \
         host_cpus={host_cpus} seed={:#x}",
        run_args.seed
    );

    let solo = solo_run(&run_args, delay_ms);
    println!(
        "solo: {} ({} downstream evals, best {:.4})",
        fmt_secs(solo.0.total_secs),
        solo.0.downstream_evals,
        solo.0.best_score
    );

    if run_args.smoke {
        let run = dist_run(&run_args, delay_ms, &solo, 2);
        println!(
            "2 workers: {} ({:.2}x solo, wire share {:.1}%)",
            fmt_secs(run.secs),
            run.speedup,
            run.wire_share * 100.0
        );
        if run.secs > solo.0.total_secs {
            eprintln!(
                "SMOKE FAIL: 2-worker wall {} exceeds solo {}",
                fmt_secs(run.secs),
                fmt_secs(solo.0.total_secs)
            );
            std::process::exit(1);
        }
        println!("smoke ok: 2-worker run bitwise == solo and no slower");
        run_args.common.finish();
        return;
    }

    let mut runs = Vec::new();
    for n in [1usize, 2, 4] {
        let run = dist_run(&run_args, delay_ms, &solo, n);
        println!(
            "{} workers: {} ({:.2}x solo, wire share {:.1}%, {} KiB on the wire)",
            run.workers,
            fmt_secs(run.secs),
            run.speedup,
            run.wire_share * 100.0,
            (run.bytes_sent + run.bytes_received) / 1024
        );
        runs.push(run);
    }

    // CPU-bound contrast run: same search, latency knob off, 2 workers.
    let solo_nodelay = solo_run(&run_args, 0);
    let nodelay = dist_run(&run_args, 0, &solo_nodelay, 2);
    let cpu_bound_ratio = nodelay.secs / solo_nodelay.0.total_secs;
    println!(
        "cpu-bound contrast (delay off, 2 workers): {:.2}x solo wall on {host_cpus} cpu(s)",
        cpu_bound_ratio
    );

    let mut table = TextTable::new(vec!["Workers", "Wall", "Speedup", "Wire share", "Wire KiB"]);
    table.row(vec![
        "solo".to_string(),
        fmt_secs(solo.0.total_secs),
        "1.00x".to_string(),
        "-".to_string(),
        "-".to_string(),
    ]);
    for r in &runs {
        table.row(vec![
            r.workers.to_string(),
            fmt_secs(r.secs),
            format!("{:.2}x", r.speedup),
            format!("{:.1}%", r.wire_share * 100.0),
            ((r.bytes_sent + r.bytes_received) / 1024).to_string(),
        ]);
    }
    table.print();

    run_args.common.write_json(
        "BENCH_dist.json",
        &Data {
            rows,
            cols,
            stage2_epochs: epochs,
            steps_per_epoch: steps,
            eval_delay_ms: delay_ms,
            host_cpus,
            solo_secs: solo.0.total_secs,
            solo_evals: solo.0.downstream_evals,
            runs,
            cpu_bound_2worker_ratio: cpu_bound_ratio,
        },
    );
    run_args.common.finish();
}
