//! **Figure 9** — scalability: running-time and performance improvement of
//! E-AFE over NFS as the sample count and the feature count grow. The
//! paper's claim: the improvements grow with dataset size.
//!
//! Regenerate: `cargo run -p bench --release --bin fig9`

use bench::{print_header, CommonArgs, TextTable};
use eafe::Engine;
use minhash::HashFamily;
use serde::Serialize;
use tabular::{SynthSpec, Task};

#[derive(Serialize)]
struct Point {
    axis: String,
    n_samples: usize,
    n_features: usize,
    nfs_secs: f64,
    eafe_secs: f64,
    speedup: f64,
    nfs_score: f64,
    eafe_score: f64,
    improvement: f64,
}

fn main() {
    let args = CommonArgs::parse();
    print_header("Figure 9: scalability in samples and features", &args);
    let cfg = args.config();
    let fpe = args.fpe_model(HashFamily::Ccws, 48);

    let mut points = Vec::new();
    let mut run_pair = |axis: &str, n: usize, m: usize| {
        let frame = SynthSpec::new(format!("scale-{n}x{m}"), n, m, Task::Classification)
            .with_seed(args.seed)
            .generate()
            .expect("synthetic frame");
        let nfs = args
            .engine(Engine::nfs(cfg.clone()))
            .run(&frame)
            .expect("NFS");
        let eafe = args
            .engine(Engine::e_afe(cfg.clone(), fpe.clone()))
            .run(&frame)
            .expect("E-AFE");
        points.push(Point {
            axis: axis.to_string(),
            n_samples: n,
            n_features: m,
            nfs_secs: nfs.total_secs,
            eafe_secs: eafe.total_secs,
            speedup: nfs.total_secs / eafe.total_secs.max(1e-9),
            nfs_score: nfs.best_score,
            eafe_score: eafe.best_score,
            improvement: eafe.best_score - nfs.best_score,
        });
    };

    // Sample-count sweep at fixed width.
    for &n in &[250usize, 500, 1000, 2000] {
        if !args.quiet {
            eprintln!("samples sweep: n = {n}");
        }
        run_pair("samples", n, 8);
    }
    // Feature-count sweep at fixed height.
    for &m in &[4usize, 8, 16, 32] {
        if !args.quiet {
            eprintln!("features sweep: m = {m}");
        }
        run_pair("features", 500, m);
    }

    for axis in ["samples", "features"] {
        println!("--- sweep over {axis} ---");
        let mut table = TextTable::new(vec![
            "n x m",
            "NFS secs",
            "E-AFE secs",
            "speedup",
            "NFS score",
            "E-AFE score",
            "delta",
        ]);
        for p in points.iter().filter(|p| p.axis == axis) {
            table.row(vec![
                format!("{}x{}", p.n_samples, p.n_features),
                format!("{:.1}", p.nfs_secs),
                format!("{:.1}", p.eafe_secs),
                format!("{:.2}x", p.speedup),
                format!("{:.3}", p.nfs_score),
                format!("{:.3}", p.eafe_score),
                format!("{:+.3}", p.improvement),
            ]);
        }
        table.print();
        println!();
    }
    args.write_json("fig9.json", &points);
    println!(
        "paper shape: the time advantage (speedup) should grow with dataset \
         size — bigger datasets make each avoided downstream evaluation \
         more expensive."
    );
    args.finish();
}
