//! **Out-of-core data layer benchmark** — peak RSS and wall-clock of the
//! chunked columnar pipeline (`tabular::ChunkedFrame`) against the flat
//! in-RAM `DataFrame` baseline, over the three chunk consumers the
//! tentpole rewired: histogram building (`learners::BinnedColumn`),
//! MinHash sketching (streamed `SignatureStream`), and elementwise
//! operator application (`eafe::Operator::apply_chunk`).
//!
//! Peak RSS is `VmHWM` from `/proc/self/status` — a process-lifetime
//! high-water mark — so every measured configuration runs in its own
//! child process (the binary re-execs itself with `--child <mode>`).
//! Modes:
//!
//! - `flat` — `SynthSpec::generate()` materializes the full `f64` frame,
//!   workload runs on flat columns;
//! - `mem` — `generate_chunked` streams into an `InMemoryStore` (budget
//!   bounds *decoded* residency; encoded bytes stay in RAM);
//! - `mmap` — `generate_chunked` streams into an `MmapStore` (`.eafc`
//!   file); under a `FrameBudget` the resident working set tracks the
//!   budget, not the dataset.
//!
//! The streamed generator is a seed-pinned *sibling* of the in-RAM one
//! (same marginals, chunk-size-dependent draws), so chunked modes are
//! fingerprint-compared against each other, while flat ≡ chunked bitwise
//! identity is asserted in-process on a shared `from_dataframe` copy
//! before any child runs.
//!
//! Regenerate: `scripts/bench_frame.sh` (or
//! `cargo run -p bench --release --bin perf_frame`).
//!
//! ```text
//! --smoke              CI gate: chunked workload <= 1.15x flat at a
//!                      fit-in-RAM size, and a budget-capped mmap run
//!                      completing (with spills) at 4x-budget data size;
//!                      exit 1 on failure
//! --rows <n>           dataset rows                       (default 6000000)
//! --cols <n>           feature columns                    (default 24)
//! --chunk-rows <n>     rows per chunk                     (default 65536)
//! --budget-mb <n>      FrameBudget for budgeted modes, 0 = unbounded
//!                                                         (default 24)
//! --store mem|mmap     backend for the budgeted run       (default mmap)
//! --engine-rows <n>    also run a chunked NFS engine pass at this row
//!                      count (0 = skip)                   (default 0)
//! --engine-budget-mb <n>  FrameBudget for the engine pass (default 64)
//! --seed <n>           data seed                          (default 0xEAFE)
//! --out <dir>          artifact directory                 (default bench_results)
//! --threads <n>        worker-thread ceiling, 0 = all cores (default 0)
//! --quiet / --metrics / --trace-out <p>   as in every bench bin
//! ```

use bench::{fmt_secs, CommonArgs, TextTable};
use eafe::{EafeConfig, Engine, Operator, SplitMethod};
use learners::BinnedColumn;
use minhash::{HashFamily, SampleCompressor, WeightBounds};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;
use tabular::{
    ChunkEncoding, ChunkOptions, ChunkedFrame, ColumnStore, DataFrame, FrameBudget, InMemoryStore,
    MmapStore, SynthSpec, Task, DEFAULT_CHUNK_ROWS,
};

/// Bins for the histogram stage (the learners' default working size).
const MAX_BINS: usize = 64;
/// MinHash signature dimension for the sketch stage.
const SKETCH_D: usize = 16;
/// Rows sketched per column (both workloads sketch the same prefix). The
/// CWS draw tables are `O(rows × d)` **workload** state — at 4M rows and
/// d = 16 they alone are ~1.5 GiB, identical in every mode, which would
/// drown the data-layer RSS comparison this bench exists to make. Two
/// chunks' worth still exercises the multi-chunk streamed sketch path.
const SKETCH_ROWS: usize = 2 * DEFAULT_CHUNK_ROWS;

// ---------------------------------------------------------------------------
// Fingerprinting — FNV-1a over value bit patterns, identical fold order in
// the flat and chunked workloads so equal data ⇒ equal fingerprint.
// ---------------------------------------------------------------------------

fn fnv_mix(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(0x100000001b3)
}

/// Peak resident set size of this process, in KiB (`VmHWM`).
fn vm_hwm_kb() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

fn sketcher(seed: u64) -> SampleCompressor {
    SampleCompressor::new(HashFamily::Ccws, SKETCH_D, seed).expect("valid compressor")
}

/// The three-consumer workload over flat columns; returns the fingerprint.
fn workload_flat(df: &DataFrame, seed: u64) -> u64 {
    let c = sketcher(seed);
    let mut h: u64 = 0xcbf29ce484222325;
    for j in 0..df.n_cols() {
        let values = &df.column(j).expect("column").values;
        // 1. Histogram codes.
        let b = BinnedColumn::build(values, MAX_BINS);
        h = fnv_mix(h, b.n_bins() as u64);
        for r in 0..values.len() {
            h = fnv_mix(h, b.codes().get(r) as u64);
        }
        // 2. MinHash compressed representation (capped prefix; see
        //    SKETCH_ROWS).
        let cap = values.len().min(SKETCH_ROWS);
        let compressed = c.compress_normalized(&values[..cap]).expect("compress");
        for v in &compressed {
            h = fnv_mix(h, v.to_bits());
        }
        // 3. Elementwise operator pass.
        let out = Operator::Log.apply(values, &[]);
        for v in &out {
            h = fnv_mix(h, v.to_bits());
        }
    }
    h
}

/// The same workload over chunked columns: histogram from encoded chunks,
/// sketch streamed chunk-at-a-time, operator applied per chunk. On equal
/// data this is bit-identical to [`workload_flat`].
fn workload_chunked(frame: &ChunkedFrame, seed: u64) -> u64 {
    let c = sketcher(seed);
    let chunk_rows = frame.chunk_rows();
    let mut h: u64 = 0xcbf29ce484222325;
    let mut buf: Vec<f64> = Vec::with_capacity(chunk_rows);
    let mut out: Vec<f64> = Vec::with_capacity(chunk_rows);
    for j in 0..frame.n_cols() {
        // 1. Histogram codes straight from the encoded chunks. The binned
        //    builder needs the whole column's encodings at once (its
        //    thresholds are full-column quantiles), so this stage pins one
        //    column of Arc handles; they are dropped before the streaming
        //    stages so the FrameBudget governs residency everywhere else.
        let handles: Vec<Arc<ChunkEncoding>> = (0..frame.n_chunks())
            .map(|k| frame.chunk(j, k).expect("chunk"))
            .collect();
        let b = BinnedColumn::build_chunked(&handles, MAX_BINS);
        drop(handles);
        h = fnv_mix(h, b.n_bins() as u64);
        for r in 0..frame.n_rows() {
            h = fnv_mix(h, b.codes().get(r) as u64);
        }
        // 2. MinHash: bounds pass, then streamed sketch + keyed gather,
        //    over the same capped prefix as the flat workload. Chunks are
        //    re-fetched on demand — the budget's LRU decides what stays.
        let cap = frame.n_rows().min(SKETCH_ROWS);
        let sketch_chunks = cap.div_ceil(chunk_rows);
        let mut bounds = WeightBounds::new();
        for k in 0..sketch_chunks {
            let enc = frame.chunk(j, k).expect("chunk");
            enc.decode_into(&mut buf);
            let take = buf.len().min(cap - k * chunk_rows);
            bounds.absorb(&buf[..take]);
        }
        let mut stream = c.begin_signature(bounds);
        for k in 0..sketch_chunks {
            let enc = frame.chunk(j, k).expect("chunk");
            enc.decode_into(&mut buf);
            let take = buf.len().min(cap - k * chunk_rows);
            stream.absorb(&buf[..take]);
        }
        let sig = stream.finish().expect("signature");
        let mut compressed: Vec<f64> = sig
            .keys()
            .map(|k| SampleCompressor::gather_value(frame.value_at(j, k).expect("value")))
            .collect();
        SampleCompressor::normalize(&mut compressed);
        for v in &compressed {
            h = fnv_mix(h, v.to_bits());
        }
        // 3. Elementwise operator pass, chunk-at-a-time, on-demand fetch.
        for k in 0..frame.n_chunks() {
            let enc = frame.chunk(j, k).expect("chunk");
            enc.decode_into(&mut buf);
            out.clear();
            Operator::Log.apply_chunk(&buf, &[], None, &mut out);
            for v in &out {
                h = fnv_mix(h, v.to_bits());
            }
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Child processes — one per measured configuration.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Serialize, Deserialize)]
struct ChildResult {
    mode: String,
    rows: usize,
    cols: usize,
    chunk_rows: usize,
    budget_mb: u64,
    gen_secs: f64,
    workload_secs: f64,
    total_secs: f64,
    vm_hwm_kb: u64,
    /// Workload fingerprint (hex), or the engine's best score bits.
    fingerprint: String,
    chunks_spilled: u64,
    chunks_loaded: u64,
    encoded_bytes: u64,
}

fn budget(mb: u64) -> FrameBudget {
    if mb == 0 {
        FrameBudget::unbounded()
    } else {
        FrameBudget::from_mib(mb)
    }
}

fn spec(rows: usize, cols: usize, seed: u64) -> SynthSpec {
    SynthSpec::new("frame-bench", rows, cols, Task::Classification).with_seed(seed)
}

fn eafc_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("perf_frame_{}_{tag}.eafc", std::process::id()))
}

fn make_store(mode: &str, tag: &str) -> Box<dyn ColumnStore> {
    if mode == "mmap" {
        Box::new(MmapStore::create(eafc_path(tag)).expect("create .eafc"))
    } else {
        Box::new(InMemoryStore::new())
    }
}

/// One measured pipeline in this (child) process. Prints a `RESULT` line.
fn run_child(mode: &str, rows: usize, cols: usize, chunk_rows: usize, budget_mb: u64, seed: u64) {
    let start = Instant::now();
    let result = match mode {
        "flat" => {
            let df = spec(rows, cols, seed).generate().expect("generate");
            let gen_secs = start.elapsed().as_secs_f64();
            let w = Instant::now();
            let fp = workload_flat(&df, seed);
            finish_child(
                mode,
                rows,
                cols,
                chunk_rows,
                budget_mb,
                gen_secs,
                w,
                start,
                format!("{fp:016x}"),
                0,
            )
        }
        "mem" | "mmap" => {
            let opts = ChunkOptions::default()
                .with_chunk_rows(chunk_rows)
                .with_budget(budget(budget_mb));
            let frame = spec(rows, cols, seed)
                .generate_chunked(opts, make_store(mode, "data"))
                .expect("generate_chunked");
            let gen_secs = start.elapsed().as_secs_f64();
            let w = Instant::now();
            let fp = workload_chunked(&frame, seed);
            let enc = frame.encoded_bytes();
            let mut r = finish_child(
                mode,
                rows,
                cols,
                chunk_rows,
                budget_mb,
                gen_secs,
                w,
                start,
                format!("{fp:016x}"),
                enc,
            );
            let stats = frame.stats();
            r.chunks_spilled = stats.chunks_spilled;
            r.chunks_loaded = stats.chunks_loaded;
            r
        }
        "engine" => {
            // A full (small-config) NFS engine pass over an out-of-core
            // frame: the acceptance-criterion run that must complete with
            // the budget below the dataset's f64 footprint.
            let opts = ChunkOptions::default()
                .with_chunk_rows(chunk_rows)
                .with_budget(budget(budget_mb));
            let frame = spec(rows, cols, seed)
                .generate_chunked(opts, make_store("mmap", "engine"))
                .expect("generate_chunked");
            let gen_secs = start.elapsed().as_secs_f64();
            let mut cfg = EafeConfig::fast();
            cfg.seed = seed;
            cfg.max_order = 3;
            cfg.steps_per_epoch = 1;
            cfg.stage2_epochs = 1;
            cfg.evaluator.folds = 2;
            cfg.evaluator.forest.n_trees = 4;
            cfg.evaluator.forest.tree.max_depth = 5;
            cfg.evaluator.forest.tree.split = SplitMethod::Histogram;
            let w = Instant::now();
            let (res, eng) = Engine::nfs(cfg).run_chunked(frame).expect("engine run");
            let enc = eng.encoded_bytes();
            let mut r = finish_child(
                mode,
                rows,
                cols,
                chunk_rows,
                budget_mb,
                gen_secs,
                w,
                start,
                format!(
                    "best={:016x} evals={}",
                    res.best_score.to_bits(),
                    res.downstream_evals
                ),
                enc,
            );
            let stats = eng.stats();
            r.chunks_spilled = stats.chunks_spilled;
            r.chunks_loaded = stats.chunks_loaded;
            r
        }
        other => panic!("unknown child mode {other}"),
    };
    let _ = std::fs::remove_file(eafc_path("data"));
    let _ = std::fs::remove_file(eafc_path("engine"));
    println!(
        "RESULT {}",
        serde_json::to_string(&result).expect("serialize result")
    );
}

#[allow(clippy::too_many_arguments)]
fn finish_child(
    mode: &str,
    rows: usize,
    cols: usize,
    chunk_rows: usize,
    budget_mb: u64,
    gen_secs: f64,
    workload_start: Instant,
    start: Instant,
    fingerprint: String,
    encoded_bytes: u64,
) -> ChildResult {
    ChildResult {
        mode: mode.to_string(),
        rows,
        cols,
        chunk_rows,
        budget_mb,
        gen_secs,
        workload_secs: workload_start.elapsed().as_secs_f64(),
        total_secs: start.elapsed().as_secs_f64(),
        vm_hwm_kb: vm_hwm_kb(),
        fingerprint,
        chunks_spilled: 0,
        chunks_loaded: 0,
        encoded_bytes,
    }
}

/// Re-exec this binary to run one configuration in a fresh process (so
/// each mode gets its own `VmHWM`). A failing child fails this run with
/// its own exit code (see `bench::run_self_child`).
fn spawn_child(args: &Args, mode: &str, rows: usize, budget_mb: u64) -> ChildResult {
    let child_args: Vec<String> = [
        "--child",
        mode,
        "--rows",
        &rows.to_string(),
        "--cols",
        &args.cols.to_string(),
        "--chunk-rows",
        &args.chunk_rows.to_string(),
        "--budget-mb",
        &budget_mb.to_string(),
        "--seed",
        &args.seed.to_string(),
        "--threads",
        &args.threads.to_string(),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let what = format!("mode {mode}");
    let stdout = bench::run_self_child(&child_args, &what);
    serde_json::from_str(bench::child_result_line(&stdout, &what)).expect("parse child result")
}

// ---------------------------------------------------------------------------
// Parent
// ---------------------------------------------------------------------------

#[derive(Serialize)]
struct Data {
    rows: usize,
    cols: usize,
    chunk_rows: usize,
    budget_mb: u64,
    store: String,
    flat_f64_mb: f64,
    runs: Vec<ChildResult>,
    /// Chunked (unbounded, in-RAM) workload vs flat workload, percent.
    workload_overhead_pct: f64,
    /// Flat peak RSS over the budgeted out-of-core run's peak RSS.
    rss_reduction: f64,
    engine: Option<ChildResult>,
}

struct Args {
    smoke: bool,
    rows: usize,
    cols: usize,
    chunk_rows: usize,
    budget_mb: u64,
    store: String,
    engine_rows: usize,
    engine_budget_mb: u64,
    seed: u64,
    threads: usize,
    child: Option<String>,
    common: CommonArgs,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        rows: 6_000_000,
        cols: 24,
        chunk_rows: DEFAULT_CHUNK_ROWS,
        budget_mb: 24,
        store: "mmap".to_string(),
        engine_rows: 0,
        engine_budget_mb: 64,
        seed: 0xE_AFE,
        threads: 0,
        child: None,
        common: CommonArgs::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("missing value for {name}"))
        };
        match flag.as_str() {
            "--smoke" => args.smoke = true,
            "--rows" => args.rows = value("--rows").parse().expect("int rows"),
            "--cols" => args.cols = value("--cols").parse().expect("int cols"),
            "--chunk-rows" => {
                args.chunk_rows = value("--chunk-rows").parse().expect("int chunk-rows")
            }
            "--budget-mb" => args.budget_mb = value("--budget-mb").parse().expect("int budget-mb"),
            "--store" => {
                args.store = value("--store");
                assert!(
                    args.store == "mem" || args.store == "mmap",
                    "--store must be mem|mmap"
                );
            }
            "--engine-rows" => {
                args.engine_rows = value("--engine-rows").parse().expect("int engine-rows")
            }
            "--engine-budget-mb" => {
                args.engine_budget_mb = value("--engine-budget-mb")
                    .parse()
                    .expect("int engine-budget-mb")
            }
            "--seed" => args.seed = value("--seed").parse().expect("int seed"),
            "--threads" => args.threads = value("--threads").parse().expect("int threads"),
            "--child" => args.child = Some(value("--child")),
            "--out" => args.common.out = std::path::PathBuf::from(value("--out")),
            "--quiet" => args.common.quiet = true,
            "--metrics" => args.common.metrics = true,
            "--trace-out" => {
                args.common.trace_out = Some(std::path::PathBuf::from(value("--trace-out")))
            }
            "--help" | "-h" => {
                eprintln!(
                    "flags: --smoke --rows n --cols n --chunk-rows n --budget-mb n \
                     --store mem|mmap --engine-rows n --engine-budget-mb n --seed n \
                     --out dir --threads n --quiet --metrics --trace-out path"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    assert!(args.chunk_rows > 0, "--chunk-rows must be >= 1");
    runtime::set_global_threads(args.threads);
    args.common.install_telemetry();
    args
}

/// Flat ≡ chunked bitwise identity on *identical* data: `from_dataframe`
/// is a bit-copy of the flat frame, so the two workloads must agree.
fn assert_flat_chunked_parity(seed: u64) {
    let df = SynthSpec::new("frame-parity", 30_000, 6, Task::Classification)
        .with_seed(seed)
        .generate()
        .expect("generate parity frame");
    let flat_fp = workload_flat(&df, seed);
    let cf = ChunkedFrame::from_dataframe(
        &df,
        ChunkOptions::default().with_chunk_rows(4096),
        Box::new(InMemoryStore::new()),
    )
    .expect("from_dataframe");
    let chunked_fp = workload_chunked(&cf, seed);
    assert_eq!(
        format!("{flat_fp:016x}"),
        format!("{chunked_fp:016x}"),
        "flat and chunked workloads diverged on identical data"
    );
}

fn mb(kb: u64) -> f64 {
    kb as f64 / 1024.0
}

fn main() {
    let args = parse_args();
    if let Some(mode) = &args.child {
        run_child(
            mode,
            args.rows,
            args.cols,
            args.chunk_rows,
            args.budget_mb,
            args.seed,
        );
        return;
    }

    println!("== perf_frame: out-of-core chunked data layer vs flat in-RAM frames ==");
    let flat_f64_mb = (args.rows * args.cols * 8) as f64 / (1024.0 * 1024.0);
    println!(
        "settings: rows={} cols={} ({:.0} MiB as f64) chunk_rows={} budget={} MiB store={} threads={}",
        args.rows,
        args.cols,
        flat_f64_mb,
        args.chunk_rows,
        args.budget_mb,
        args.store,
        runtime::global_threads(),
    );
    assert_flat_chunked_parity(args.seed);
    println!("parity ok: flat == chunked workload fingerprints on identical data");

    if args.smoke {
        run_smoke(&args);
        return;
    }

    // Artifact run: flat baseline, fit-in-RAM chunked (unbounded memory
    // store), and the budgeted out-of-core configuration.
    let flat = spawn_child(&args, "flat", args.rows, 0);
    let mem = spawn_child(&args, "mem", args.rows, 0);
    let capped = spawn_child(&args, &args.store, args.rows, args.budget_mb);
    assert_eq!(
        mem.fingerprint, capped.fingerprint,
        "budgeted {} run diverged from unbounded chunked run",
        args.store
    );

    let mut runs = vec![flat.clone(), mem.clone(), capped.clone()];
    let engine = if args.engine_rows > 0 {
        // The engine pass uses a narrow frame (4 columns) so the search
        // has few agents; the point is out-of-core completion, not score.
        let e_args = Args {
            smoke: false,
            rows: args.engine_rows,
            cols: 4,
            chunk_rows: args.chunk_rows,
            budget_mb: args.engine_budget_mb,
            store: "mmap".to_string(),
            engine_rows: 0,
            engine_budget_mb: 0,
            seed: args.seed,
            threads: args.threads,
            child: None,
            common: CommonArgs::default(),
        };
        let r = spawn_child(&e_args, "engine", args.engine_rows, args.engine_budget_mb);
        println!(
            "engine: {} rows under {} MiB budget -> {} in {} (peak RSS {:.0} MiB, {} spills)",
            args.engine_rows,
            args.engine_budget_mb,
            r.fingerprint,
            fmt_secs(r.total_secs),
            mb(r.vm_hwm_kb),
            r.chunks_spilled,
        );
        runs.push(r.clone());
        Some(r)
    } else {
        None
    };

    let overhead_pct = (mem.workload_secs / flat.workload_secs - 1.0) * 100.0;
    let rss_reduction = flat.vm_hwm_kb as f64 / capped.vm_hwm_kb as f64;

    let mut table = TextTable::new(vec![
        "Mode",
        "Budget",
        "Gen",
        "Workload",
        "Peak RSS",
        "Spills",
        "Fingerprint",
    ]);
    for r in &runs {
        table.row(vec![
            r.mode.clone(),
            if r.budget_mb == 0 {
                "-".to_string()
            } else {
                format!("{} MiB", r.budget_mb)
            },
            fmt_secs(r.gen_secs),
            fmt_secs(r.workload_secs),
            format!("{:.0} MiB", mb(r.vm_hwm_kb)),
            r.chunks_spilled.to_string(),
            r.fingerprint.clone(),
        ]);
    }
    table.print();
    println!(
        "chunked workload overhead (fit-in-RAM): {overhead_pct:+.1}%  |  peak-RSS reduction \
         (flat / budgeted {}): {rss_reduction:.1}x",
        args.store
    );
    if overhead_pct > 15.0 {
        eprintln!("WARNING: chunked workload overhead above the 15% target");
    }
    if rss_reduction < 4.0 {
        eprintln!("WARNING: peak-RSS reduction below the 4x target");
    }

    args.common.write_json(
        "BENCH_frame.json",
        &Data {
            rows: args.rows,
            cols: args.cols,
            chunk_rows: args.chunk_rows,
            budget_mb: args.budget_mb,
            store: args.store.clone(),
            flat_f64_mb,
            runs,
            workload_overhead_pct: overhead_pct,
            rss_reduction,
            engine,
        },
    );
    args.common.finish();
}

/// The CI gate: small enough to run in release CI, strict enough to catch
/// a broken chunk pipeline or a pathological slowdown.
fn run_smoke(args: &Args) {
    let rows = if args.rows == 4_000_000 {
        400_000
    } else {
        args.rows
    };
    let cols = if args.cols == 12 { 8 } else { args.cols };
    let chunk_rows = if args.chunk_rows == DEFAULT_CHUNK_ROWS {
        32_768
    } else {
        args.chunk_rows
    };
    let smoke_args = Args {
        smoke: true,
        rows,
        cols,
        chunk_rows,
        budget_mb: args.budget_mb,
        store: args.store.clone(),
        engine_rows: 0,
        engine_budget_mb: 0,
        seed: args.seed,
        threads: args.threads,
        child: None,
        common: CommonArgs::default(),
    };
    // Budget at a quarter of the dataset's f64 footprint: the capped run
    // below therefore processes 4x its RAM budget.
    let f64_mb = (rows * cols * 8) as f64 / (1024.0 * 1024.0);
    let budget_mb = ((f64_mb / 4.0) as u64).max(1);

    // Two timing samples per timed mode; min taken (smoke sizes are small
    // enough for scheduler noise to matter).
    let flat = [
        spawn_child(&smoke_args, "flat", rows, 0),
        spawn_child(&smoke_args, "flat", rows, 0),
    ];
    let mem = [
        spawn_child(&smoke_args, "mem", rows, 0),
        spawn_child(&smoke_args, "mem", rows, 0),
    ];
    let capped = spawn_child(&smoke_args, "mmap", rows, budget_mb);

    let flat_secs = flat[0].workload_secs.min(flat[1].workload_secs);
    let mem_secs = mem[0].workload_secs.min(mem[1].workload_secs);
    let ratio = mem_secs / flat_secs;
    println!(
        "workload: flat {} chunked {} ({:.2}x) | capped mmap run: {} spills, fp {}",
        fmt_secs(flat_secs),
        fmt_secs(mem_secs),
        ratio,
        capped.chunks_spilled,
        capped.fingerprint,
    );
    let mut failed = false;
    if mem[0].fingerprint != capped.fingerprint {
        eprintln!("SMOKE FAIL: budget-capped mmap fingerprint diverged from in-RAM chunked");
        failed = true;
    }
    if capped.chunks_spilled == 0 {
        eprintln!(
            "SMOKE FAIL: {} MiB budget over {:.0} MiB data produced no spills",
            budget_mb, f64_mb
        );
        failed = true;
    }
    if ratio > 1.15 {
        eprintln!("SMOKE FAIL: chunked workload {ratio:.2}x flat (target <= 1.15x)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("smoke ok: parity, spill-under-budget completion, and overhead within 15%");
}
