//! **Table III** — the main comparison: scores of all eleven methods on
//! the target datasets (F1 for classification, 1-RAE for regression).
//!
//! Columns, in paper order: `FS_R` (AutoFS over random features), `DL_N`
//! (RTDL ResNet re-headed with RF), `NFS`, `FE|DL`, `DL|FE`, `E-AFE_R`,
//! `E-AFE_D`, `E-AFE^L` (0-bit CWS), `E-AFE^P` (PCWS), `E-AFE^I` (ICWS),
//! and `E-AFE` (CCWS, the full method).
//!
//! Regenerate (4 quick datasets): `cargo run -p bench --release --bin table3`
//! Full paper matrix:            `... --bin table3 -- --datasets all`
//!
//! The JSON artifact feeds `table6` (significance analysis).

use bench::{fmt_score, print_header, CommonArgs, TextTable};
use eafe::baselines::{run_dl_fe, run_fe_dl, run_rtdl_n, DlBaselineConfig};
use eafe::{Engine, RunResult};
use minhash::HashFamily;
use serde::Serialize;

/// Artifact row: every method's score and wall time on one dataset.
#[derive(Serialize)]
pub struct DatasetRow {
    dataset: String,
    task: String,
    shape: String,
    scores: Vec<(String, f64)>,
    times: Vec<(String, f64)>,
}

fn record(row: &mut DatasetRow, result: &RunResult) {
    row.scores.push((result.method.clone(), result.best_score));
    row.times.push((result.method.clone(), result.total_secs));
}

fn main() {
    let args = CommonArgs::parse();
    print_header("Table III: comparison on target datasets", &args);

    let cfg = args.config();
    let dl_cfg = DlBaselineConfig {
        seed: args.seed,
        ..DlBaselineConfig::default()
    };
    // One FPE model per hash-family variant (cached across runs).
    let fpe_ccws = args.fpe_model(HashFamily::Ccws, 48);
    let fpe_licws = args.fpe_model(HashFamily::ZeroBitCws, 48);
    let fpe_pcws = args.fpe_model(HashFamily::Pcws, 48);
    let fpe_icws = args.fpe_model(HashFamily::Icws, 48);

    // (column header, recorded method name) in paper order.
    const METHODS: [(&str, &str); 11] = [
        ("FS_R", "AutoFS_R"),
        ("DL_N", "RTDL_N"),
        ("NFS", "NFS"),
        ("FE|DL", "FE|DL"),
        ("DL|FE", "DL|FE"),
        ("E-AFE_R", "E-AFE_R"),
        ("E-AFE_D", "E-AFE_D"),
        ("E-AFE^L", "E-AFE^L"),
        ("E-AFE^P", "E-AFE^P"),
        ("E-AFE^I", "E-AFE^I"),
        ("E-AFE", "E-AFE"),
    ];
    let mut headers = vec!["Dataset".to_string(), "C\\R".into(), "Samples\\Feat".into()];
    headers.extend(METHODS.iter().map(|(label, _)| label.to_string()));
    let mut table = TextTable::new(headers);

    let mut rows: Vec<DatasetRow> = Vec::new();
    for info in args.dataset_infos() {
        if !args.quiet {
            eprintln!("running {} ...", info.name);
        }
        let frame = args.load(&info);
        let mut row = DatasetRow {
            dataset: info.name.to_string(),
            task: info.task.code().to_string(),
            shape: frame.shape_str(),
            scores: Vec::new(),
            times: Vec::new(),
        };

        // The full E-AFE first: its engineered features also feed FE|DL.
        let (eafe_result, engineered) = args
            .engine(Engine::e_afe(cfg.clone(), fpe_ccws.clone()))
            .run_full(&frame)
            .expect("E-AFE");

        record(&mut row, &args.run_autofs_r(&cfg, &frame).expect("FS_R"));
        record(&mut row, &run_rtdl_n(&dl_cfg, &frame).expect("DL_N"));
        record(
            &mut row,
            &args
                .engine(Engine::nfs(cfg.clone()))
                .run(&frame)
                .expect("NFS"),
        );
        record(&mut row, &run_fe_dl(&dl_cfg, &engineered).expect("FE|DL"));
        record(&mut row, &run_dl_fe(&dl_cfg, &frame).expect("DL|FE"));
        record(
            &mut row,
            &args
                .engine(Engine::e_afe_r(cfg.clone(), fpe_ccws.clone()))
                .run(&frame)
                .expect("E-AFE_R"),
        );
        record(
            &mut row,
            &args
                .engine(Engine::e_afe_d(cfg.clone(), 0.5))
                .run(&frame)
                .expect("E-AFE_D"),
        );
        record(
            &mut row,
            &args
                .engine(Engine::e_afe_variant(
                    cfg.clone(),
                    fpe_licws.clone(),
                    "E-AFE^L",
                ))
                .run(&frame)
                .expect("E-AFE^L"),
        );
        record(
            &mut row,
            &args
                .engine(Engine::e_afe_variant(
                    cfg.clone(),
                    fpe_pcws.clone(),
                    "E-AFE^P",
                ))
                .run(&frame)
                .expect("E-AFE^P"),
        );
        record(
            &mut row,
            &args
                .engine(Engine::e_afe_variant(
                    cfg.clone(),
                    fpe_icws.clone(),
                    "E-AFE^I",
                ))
                .run(&frame)
                .expect("E-AFE^I"),
        );
        record(&mut row, &eafe_result);

        let mut cells = vec![row.dataset.clone(), row.task.clone(), row.shape.clone()];
        for (label, recorded) in METHODS {
            let score = row
                .scores
                .iter()
                .find(|(name, _)| name == recorded)
                .map(|(_, s)| *s)
                .unwrap_or_else(|| panic!("method {label} not recorded"));
            cells.push(fmt_score(score));
        }
        table.row(cells);
        rows.push(row);
    }
    table.print();
    args.write_json("table3.json", &rows);

    // Summary: the paper reports E-AFE ~2.9% above the best baseline mean.
    let mean_of = |name: &str| -> f64 {
        let vals: Vec<f64> = rows
            .iter()
            .flat_map(|r| r.scores.iter())
            .filter(|(m, _)| m == name)
            .map(|(_, s)| *s)
            .collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    };
    println!();
    for (label, recorded) in METHODS {
        println!("mean {label:<8} = {:.4}", mean_of(recorded));
    }
    args.finish();
}
