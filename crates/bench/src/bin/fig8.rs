//! **Figure 8** — hyper-parameter sensitivity of E-AFE: the label
//! threshold `thre`, the MinHash signature output dimension `d`, and the
//! maximum transformation order. Each sweep varies one parameter with the
//! others at their paper defaults (thre = 0.01, d = 48, order = 5), on the
//! first configured dataset.
//!
//! Regenerate: `cargo run -p bench --release --bin fig8`

use bench::{fmt_score, print_header, CommonArgs, TextTable};
use eafe::fpe::{search, FpeSearchSpace, RawLabels};
use eafe::Engine;
use minhash::HashFamily;
use serde::Serialize;
use tabular::registry::public_corpus;

#[derive(Serialize)]
struct SweepPoint {
    parameter: String,
    value: f64,
    score: f64,
    downstream_evals: usize,
    total_secs: f64,
}

fn main() {
    let args = CommonArgs::parse();
    print_header("Figure 8: hyperparameter sensitivity", &args);
    let info = args.dataset_infos()[0];
    let frame = args.load(&info);
    println!("dataset: {} ({})\n", info.name, frame.shape_str());

    // Pre-compute corpus labels once; each (thre, d) candidate re-trains
    // the FPE classifier from them (the cheap part).
    let mut label_ev = args.evaluator();
    label_ev.folds = 3;
    let label_ev = args.cached(label_ev);
    let corpus = public_corpus(10, 5, args.seed).expect("corpus");
    let train = RawLabels::compute(&corpus[..12], &label_ev).expect("train labels");
    let val = RawLabels::compute(&corpus[12..], &label_ev).expect("val labels");

    let mut points = Vec::new();
    let cfg = args.config();
    let fpe_for = |thre: f64, d: usize| {
        let space = FpeSearchSpace {
            families: vec![HashFamily::Ccws],
            dims: vec![d],
            thre,
            seed: args.seed,
        };
        search(&space, &train, &val).expect("FPE search").model
    };

    // --- Sweep 1: thre ---
    let mut t1 = TextTable::new(vec!["thre", "score", "evals", "secs"]);
    for &thre in &[0.005, 0.01, 0.02, 0.05] {
        let mut c = cfg.clone();
        c.thre = thre;
        let r = args
            .engine(Engine::e_afe(c, fpe_for(thre, 48)))
            .run(&frame)
            .expect("run");
        t1.row(vec![
            format!("{thre}"),
            fmt_score(r.best_score),
            r.downstream_evals.to_string(),
            format!("{:.1}", r.total_secs),
        ]);
        points.push(SweepPoint {
            parameter: "thre".into(),
            value: thre,
            score: r.best_score,
            downstream_evals: r.downstream_evals,
            total_secs: r.total_secs,
        });
    }
    println!("sweep: thre (d = 48, order = 5)");
    t1.print();

    // --- Sweep 2: MinHash signature output dimension d ---
    let mut t2 = TextTable::new(vec!["d", "score", "evals", "secs"]);
    for &d in &[16usize, 32, 48, 64, 96] {
        let mut c = cfg.clone();
        c.signature_dim = d;
        let r = args
            .engine(Engine::e_afe(c, fpe_for(0.01, d)))
            .run(&frame)
            .expect("run");
        t2.row(vec![
            d.to_string(),
            fmt_score(r.best_score),
            r.downstream_evals.to_string(),
            format!("{:.1}", r.total_secs),
        ]);
        points.push(SweepPoint {
            parameter: "signature_dim".into(),
            value: d as f64,
            score: r.best_score,
            downstream_evals: r.downstream_evals,
            total_secs: r.total_secs,
        });
    }
    println!("\nsweep: MinHash output dimension (thre = 0.01, order = 5)");
    t2.print();

    // --- Sweep 3: maximum transformation order ---
    let fpe_default = fpe_for(0.01, 48);
    let mut t3 = TextTable::new(vec!["max order", "score", "evals", "secs"]);
    for order in 1..=5usize {
        let mut c = cfg.clone();
        c.max_order = order;
        let r = args
            .engine(Engine::e_afe(c, fpe_default.clone()))
            .run(&frame)
            .expect("run");
        t3.row(vec![
            order.to_string(),
            fmt_score(r.best_score),
            r.downstream_evals.to_string(),
            format!("{:.1}", r.total_secs),
        ]);
        points.push(SweepPoint {
            parameter: "max_order".into(),
            value: order as f64,
            score: r.best_score,
            downstream_evals: r.downstream_evals,
            total_secs: r.total_secs,
        });
    }
    println!("\nsweep: maximum order (thre = 0.01, d = 48)");
    t3.print();

    args.write_json("fig8.json", &points);
    println!(
        "\npaper shape: E-AFE is not strictly sensitive to these parameters; \
         smaller thre → larger recall; very small d hurts; higher order can \
         help some datasets at sharply growing cost."
    );
    args.finish();
}
