//! **Ablation (extra)** — the paper's λ-return (Eqs. 9–10) vs the textbook
//! rewards-to-go policy-gradient return, holding everything else (FPE gate,
//! two-stage training) fixed. DESIGN.md §4 calls this design choice out.
//!
//! Regenerate: `cargo run -p bench --release --bin ablation_lambda`

use bench::{fmt_score, print_header, CommonArgs, TextTable};
use eafe::Engine;
use minhash::HashFamily;
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    dataset: String,
    lambda_score: f64,
    rewards_to_go_score: f64,
    lambda_secs: f64,
    rewards_to_go_secs: f64,
}

fn main() {
    let args = CommonArgs::parse();
    print_header("Ablation: lambda-returns vs rewards-to-go", &args);
    let fpe = args.fpe_model(HashFamily::Ccws, 48);

    let mut table = TextTable::new(vec![
        "Dataset",
        "score (lambda)",
        "score (rtg)",
        "secs (lambda)",
        "secs (rtg)",
    ]);
    let mut rows = Vec::new();
    for info in args.dataset_infos() {
        if !args.quiet {
            eprintln!("running {} ...", info.name);
        }
        let frame = args.load(&info);
        let lambda = args
            .engine(Engine::e_afe(args.config(), fpe.clone()))
            .run(&frame)
            .expect("E-AFE lambda");
        let mut rtg_engine = args.engine(Engine::e_afe(args.config(), fpe.clone()));
        rtg_engine.use_lambda_returns = false;
        rtg_engine.method_name = "E-AFE(rtg)".into();
        let rtg = rtg_engine.run(&frame).expect("E-AFE rtg");
        table.row(vec![
            info.name.to_string(),
            fmt_score(lambda.best_score),
            fmt_score(rtg.best_score),
            format!("{:.1}", lambda.total_secs),
            format!("{:.1}", rtg.total_secs),
        ]);
        rows.push(Row {
            dataset: info.name.to_string(),
            lambda_score: lambda.best_score,
            rewards_to_go_score: rtg.best_score,
            lambda_secs: lambda.total_secs,
            rewards_to_go_secs: rtg.total_secs,
        });
    }
    table.print();
    args.write_json("ablation_lambda.json", &rows);

    let mean = |f: fn(&Row) -> f64| rows.iter().map(f).sum::<f64>() / rows.len().max(1) as f64;
    println!(
        "\nmean score lambda {:.4} vs rewards-to-go {:.4}",
        mean(|r| r.lambda_score),
        mean(|r| r.rewards_to_go_score)
    );
    args.finish();
}
