//! Offline analysis of `--trace-out` JSON-lines files.
//!
//! A trace file is one [`telemetry::Event`] per line: closed spans with
//! parentage (`Span`) and end-of-run counter totals (`Count`). This
//! module loads such a file into a [`Trace`] and derives four reports:
//!
//! - [`Trace::folded`] — collapsed-stack flamegraph output (the folded
//!   format consumed by `inferno-flamegraph` and speedscope): one line
//!   per distinct span stack, weighted by *self* time (span duration
//!   minus the duration of its direct children);
//! - [`Trace::critical_path`] — the heaviest root-to-leaf chain through
//!   the span tree, with each hop's share of its parent's time;
//! - [`Trace::attribution`] — self-time totals grouped by a span field
//!   (default `job`), inherited through the parent chain so leaf work
//!   is attributed to the tenant/job/route that enclosed it;
//! - [`Trace::cache_report`] — hit rates per cache family, reassembled
//!   from the counter totals the bench harness appends at end-of-run
//!   (per-shard `score_cache.shardNN.*` rows are folded into one
//!   `score_cache` family).
//!
//! Every report is a deterministic function of the trace bytes: ties
//! break on span ids and output maps are sorted, so golden tests can
//! compare exact strings.

use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use telemetry::{Event, SpanEvent};

/// Walks at most this many ancestors before declaring a parent cycle —
/// far beyond any real instrumentation depth.
const MAX_DEPTH: usize = 128;

/// A parsed trace: spans in file order plus the final value of every
/// counter that appeared (last write wins, matching counter-total
/// semantics).
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Closed spans, in the order the file recorded them.
    pub spans: Vec<SpanEvent>,
    /// Counter name → final value.
    pub counts: BTreeMap<String, u64>,
}

impl Trace {
    /// Parse a trace from the contents of a JSON-lines file. Blank lines
    /// are skipped; a malformed line is an error naming its line number.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut trace = Trace::default();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            match Event::from_json(line) {
                Ok(Event::Span(s)) => trace.spans.push(s),
                Ok(Event::Count(c)) => {
                    trace.counts.insert(c.name, c.value);
                }
                Err(e) => return Err(format!("line {}: {e}", i + 1)),
            }
        }
        Ok(trace)
    }

    /// Load a trace file from disk.
    pub fn from_path(path: &Path) -> Result<Trace, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Trace::parse(&text)
    }

    /// Merge per-process traces (e.g. a distributed coordinator's file
    /// plus each worker's) into one analyzable trace. File `p`'s spans
    /// gain a `process = p` field — so `attribution("process")` splits
    /// time per process — and their ids are re-based past every id of
    /// the preceding files, keeping parent chains intact while ids that
    /// collide across processes stay distinct. Counter totals sum, since
    /// each process counted its own share of the run's work.
    pub fn merged(traces: Vec<Trace>) -> Trace {
        let mut out = Trace::default();
        let mut offset: u64 = 0;
        for (p, trace) in traces.into_iter().enumerate() {
            let mut max_id = 0u64;
            for mut s in trace.spans {
                max_id = max_id.max(s.id);
                s.id += offset;
                if s.parent != 0 {
                    s.parent += offset;
                }
                s.fields.push(("process".to_string(), p as f64));
                out.spans.push(s);
            }
            offset += max_id;
            for (name, value) in trace.counts {
                *out.counts.entry(name).or_insert(0) += value;
            }
        }
        out
    }

    /// Index from span id to position, keeping the *first* occurrence
    /// when ids collide (synthetic ids in mixed streams).
    fn index(&self) -> HashMap<u64, usize> {
        let mut map = HashMap::with_capacity(self.spans.len());
        for (i, s) in self.spans.iter().enumerate() {
            map.entry(s.id).or_insert(i);
        }
        map
    }

    /// Self time per span: duration minus the summed duration of direct
    /// children (saturating — clock skew can make children overrun).
    fn self_us(&self, index: &HashMap<u64, usize>) -> Vec<u64> {
        let mut child_sum = vec![0u64; self.spans.len()];
        for s in &self.spans {
            if s.parent != 0 {
                if let Some(&p) = index.get(&s.parent) {
                    child_sum[p] = child_sum[p].saturating_add(s.dur_us);
                }
            }
        }
        self.spans
            .iter()
            .zip(&child_sum)
            .map(|(s, &c)| s.dur_us.saturating_sub(c))
            .collect()
    }

    /// Ancestor chain of span `i` (nearest first), stopping at roots,
    /// unknown parents, cycles, or [`MAX_DEPTH`].
    fn ancestors(&self, index: &HashMap<u64, usize>, i: usize) -> Vec<usize> {
        let mut chain = Vec::new();
        let mut cur = self.spans[i].parent;
        while cur != 0 && chain.len() < MAX_DEPTH {
            match index.get(&cur) {
                Some(&p) if !chain.contains(&p) && p != i => {
                    chain.push(p);
                    cur = self.spans[p].parent;
                }
                _ => break,
            }
        }
        chain
    }

    /// Collapsed-stack (folded) flamegraph output: one line per distinct
    /// root-to-span stack, `root;child;leaf <self_us>`, weighted by self
    /// time in microseconds and sorted by stack. Zero-weight stacks are
    /// omitted. Feed this to `inferno-flamegraph` or import into
    /// speedscope.
    pub fn folded(&self) -> String {
        let index = self.index();
        let self_us = self.self_us(&index);
        let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
        for (i, s) in self.spans.iter().enumerate() {
            if self_us[i] == 0 {
                continue;
            }
            let mut names: Vec<&str> = self
                .ancestors(&index, i)
                .into_iter()
                .map(|p| self.spans[p].name.as_str())
                .collect();
            names.reverse();
            names.push(&s.name);
            let stack = names.join(";");
            *stacks.entry(stack).or_insert(0) += self_us[i];
        }
        let mut out = String::new();
        for (stack, us) in &stacks {
            out.push_str(stack);
            out.push(' ');
            out.push_str(&us.to_string());
            out.push('\n');
        }
        out
    }

    /// The critical path: starting from the longest root span, descend
    /// into the longest direct child at every level. Each line shows the
    /// span's duration, self time, and share of its parent.
    pub fn critical_path(&self) -> String {
        let index = self.index();
        let self_us = self.self_us(&index);
        // Direct children of each span position (file order).
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in self.spans.iter().enumerate() {
            match index.get(&s.parent) {
                Some(&p) if s.parent != 0 && p != i => children[p].push(i),
                _ => roots.push(i),
            }
        }
        // Heaviest span wins; ties break on (start, id) for determinism.
        let weight = |&i: &usize| {
            let s = &self.spans[i];
            (
                s.dur_us,
                std::cmp::Reverse(s.start_us),
                std::cmp::Reverse(s.id),
            )
        };
        let mut out = String::from("critical path (heaviest chain):\n");
        let Some(mut cur) = roots.iter().max_by_key(|i| weight(i)).copied() else {
            out.push_str("  (no spans)\n");
            return out;
        };
        let mut parent_dur: Option<u64> = None;
        let mut depth = 0;
        loop {
            let s = &self.spans[cur];
            let share = match parent_dur {
                Some(p) if p > 0 => {
                    format!("{:5.1}% of parent", 100.0 * s.dur_us as f64 / p as f64)
                }
                _ => "root".to_string(),
            };
            out.push_str(&format!(
                "  {:indent$}{}  total {} us, self {} us  [{share}]\n",
                "",
                s.name,
                s.dur_us,
                self_us[cur],
                indent = depth * 2,
            ));
            parent_dur = Some(s.dur_us);
            match children[cur].iter().max_by_key(|i| weight(i)).copied() {
                Some(next) if depth < MAX_DEPTH => {
                    cur = next;
                    depth += 1;
                }
                _ => break,
            }
        }
        out
    }

    /// Effective value of field `key` for span `i`: the span's own field
    /// if present, else the nearest ancestor's.
    fn field_value(&self, index: &HashMap<u64, usize>, i: usize, key: &str) -> Option<f64> {
        let own = |p: usize| {
            self.spans[p]
                .fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|&(_, v)| v)
        };
        own(i).or_else(|| self.ancestors(index, i).into_iter().find_map(own))
    }

    /// Self-time attribution by span field `key` (e.g. `job`, `epoch`):
    /// spans inherit the nearest ancestor's value, so leaf work counts
    /// toward the job/tenant/route that enclosed it. Spans with no value
    /// anywhere in their chain land in `(unattributed)`. Sorted by
    /// descending time, then label.
    pub fn attribution(&self, key: &str) -> String {
        let index = self.index();
        let self_us = self.self_us(&index);
        let mut totals: BTreeMap<String, u64> = BTreeMap::new();
        let mut grand = 0u64;
        for (i, &us) in self_us.iter().enumerate() {
            let label = match self.field_value(&index, i, key) {
                Some(v) if v.fract() == 0.0 && v.abs() < 1e15 => format!("{key}={}", v as i64),
                Some(v) => format!("{key}={v}"),
                None => "(unattributed)".to_string(),
            };
            *totals.entry(label).or_insert(0) += us;
            grand += us;
        }
        let mut rows: Vec<(&String, &u64)> = totals.iter().collect();
        rows.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        let mut out = format!("time attribution by `{key}` ({grand} us total):\n");
        for (label, us) in rows {
            let pct = if grand > 0 {
                100.0 * *us as f64 / grand as f64
            } else {
                0.0
            };
            out.push_str(&format!("  {label:<24} {us:>12} us  {pct:5.1}%\n"));
        }
        out
    }

    /// Cache efficiency from the trace's counter totals. Counters named
    /// `<family>.hits` / `.misses` / `.inserts` / `.evictions` / `.len`
    /// form a family; `shardNN` path segments are stripped so per-shard
    /// rows aggregate into one family. The evaluator's
    /// `evaluator.cache_hits` / `evaluator.evals_computed` pair and
    /// MinHash's `minhash.sig_cache_hits` are reported as-is when present.
    pub fn cache_report(&self) -> String {
        #[derive(Default)]
        struct Family {
            hits: u64,
            misses: u64,
            inserts: u64,
            evictions: u64,
            len: u64,
        }
        let mut families: BTreeMap<String, Family> = BTreeMap::new();
        for (name, &value) in &self.counts {
            let Some((prefix, stat)) = name.rsplit_once('.') else {
                continue;
            };
            if !matches!(stat, "hits" | "misses" | "inserts" | "evictions" | "len") {
                continue;
            }
            // Fold `score_cache.shard03` → `score_cache`.
            let family: String = prefix
                .split('.')
                .filter(|seg| {
                    !(seg.starts_with("shard") && seg[5..].chars().all(|c| c.is_ascii_digit()))
                })
                .collect::<Vec<_>>()
                .join(".");
            let f = families.entry(family).or_default();
            match stat {
                "hits" => f.hits += value,
                "misses" => f.misses += value,
                "inserts" => f.inserts += value,
                "evictions" => f.evictions += value,
                _ => f.len += value,
            }
        }
        // The evaluator's pair is hits/misses under other names: every
        // eval actually computed was a score-cache miss at the
        // evaluator's level.
        if let (Some(&h), Some(&m)) = (
            self.counts.get("evaluator.cache_hits"),
            self.counts.get("evaluator.evals_computed"),
        ) {
            families.insert(
                "evaluator".to_string(),
                Family {
                    hits: h,
                    misses: m,
                    ..Family::default()
                },
            );
        }
        let mut out = String::from("cache efficiency:\n");
        if families.is_empty() {
            out.push_str("  (no cache counters in trace)\n");
        }
        for (name, f) in &families {
            let total = f.hits + f.misses;
            let rate = if total > 0 {
                100.0 * f.hits as f64 / total as f64
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {name:<16} {:>10} hits {:>10} misses  {rate:5.1}% hit rate  \
                 {} inserts, {} evictions, {} live\n",
                f.hits, f.misses, f.inserts, f.evictions, f.len,
            ));
        }
        if let Some(v) = self.counts.get("minhash.sig_cache_hits") {
            out.push_str(&format!("  {:<16} {v:>10} hits\n", "sig_cache"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use telemetry::CountEvent;

    fn span(
        name: &str,
        id: u64,
        parent: u64,
        start: u64,
        dur: u64,
        fields: &[(&str, f64)],
    ) -> String {
        Event::Span(SpanEvent {
            name: name.into(),
            id,
            parent,
            start_us: start,
            dur_us: dur,
            fields: fields.iter().map(|&(k, v)| (k.to_string(), v)).collect(),
        })
        .to_json()
    }

    fn count(name: &str, value: u64) -> String {
        Event::Count(CountEvent {
            name: name.into(),
            value,
        })
        .to_json()
    }

    fn sample() -> Trace {
        // root(100) -> eval(60) -> fit(25); root self = 40, eval self = 35.
        let lines = [
            span("root", 1, 0, 0, 100, &[("job", 1.0)]),
            span("eval", 2, 1, 10, 60, &[]),
            span("fit", 3, 2, 15, 25, &[]),
            span("stray", 9, 0, 200, 5, &[]),
            count("score_cache.shard00.hits", 8),
            count("score_cache.shard01.hits", 2),
            count("score_cache.shard00.misses", 5),
            count("score_cache.shard01.misses", 5),
        ];
        Trace::parse(&lines.join("\n")).unwrap()
    }

    #[test]
    fn folded_stacks_weight_by_self_time() {
        let folded = sample().folded();
        assert_eq!(folded, "root 40\nroot;eval 35\nroot;eval;fit 25\nstray 5\n");
    }

    #[test]
    fn critical_path_descends_heaviest_children() {
        let report = sample().critical_path();
        assert!(report.contains("root  total 100 us, self 40 us  [root]"));
        assert!(report.contains("eval  total 60 us, self 35 us  [ 60.0% of parent]"));
        assert!(report.contains("fit  total 25 us, self 25 us  [ 41.7% of parent]"));
    }

    #[test]
    fn attribution_inherits_fields_through_the_chain() {
        let report = sample().attribution("job");
        // fit + eval + root self all inherit job=1 (100 us); stray has none.
        assert!(report.contains("job=1"), "{report}");
        assert!(report.contains("100 us"), "{report}");
        assert!(report.contains("(unattributed)"), "{report}");
    }

    #[test]
    fn cache_report_folds_shards_into_one_family() {
        let report = sample().cache_report();
        assert!(
            report.contains("score_cache") && report.contains("50.0% hit rate"),
            "{report}"
        );
    }

    #[test]
    fn merged_traces_tag_processes_rebase_ids_and_sum_counters() {
        // Two processes whose span ids collide (both use 1 and 2) and
        // whose counters overlap — the coordinator/worker trace shape.
        let coordinator = Trace::parse(
            &[
                span("run", 1, 0, 0, 100, &[]),
                span("dist.slice", 2, 1, 10, 30, &[]),
                count("evaluator.cache_hits", 40),
                count("dist.shards_dispatched", 6),
            ]
            .join("\n"),
        )
        .unwrap();
        let worker = Trace::parse(
            &[
                span("serve", 1, 0, 0, 80, &[]),
                span("dist.shard", 2, 1, 5, 60, &[]),
                count("evaluator.cache_hits", 10),
            ]
            .join("\n"),
        )
        .unwrap();
        let merged = Trace::merged(vec![coordinator, worker]);

        // Golden: folded stacks keep each process's parent chain intact.
        assert_eq!(
            merged.folded(),
            "run 70\nrun;dist.slice 30\nserve 20\nserve;dist.shard 60\n"
        );
        // Golden: per-process attribution covers every span, nothing
        // unattributed, ordered by descending self time.
        assert_eq!(
            merged.attribution("process"),
            "time attribution by `process` (180 us total):\n  \
             process=0                         100 us   55.6%\n  \
             process=1                          80 us   44.4%\n"
        );
        // Overlapping counters sum; singletons pass through.
        assert_eq!(merged.counts["evaluator.cache_hits"], 50);
        assert_eq!(merged.counts["dist.shards_dispatched"], 6);
        // Worker ids were re-based past the coordinator's (max id 2).
        assert_eq!(merged.spans[2].id, 3);
        assert_eq!(merged.spans[3].parent, 3);
    }

    #[test]
    fn malformed_lines_name_their_line_number() {
        let err = Trace::parse("{\"Span\"").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    #[test]
    fn empty_trace_reports_are_well_formed() {
        let t = Trace::parse("").unwrap();
        assert_eq!(t.folded(), "");
        assert!(t.critical_path().contains("(no spans)"));
        assert!(t.cache_report().contains("no cache counters"));
    }
}
