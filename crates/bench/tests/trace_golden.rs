//! Golden-output tests for the offline trace toolchain: the committed
//! fixture models a two-job run (nested engine→epoch→evaluate spans plus
//! end-of-run cache counters) and every report is pinned to its exact
//! expected text, so any drift in folded-stack weighting, critical-path
//! descent, attribution, or cache aggregation fails loudly.

use bench::trace::Trace;
use std::path::Path;
use std::process::Command;

fn fixture() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/trace_small.jsonl"
    ))
}

#[test]
fn folded_output_matches_golden() {
    let trace = Trace::from_path(fixture()).unwrap();
    assert_eq!(
        trace.folded(),
        "engine.run 250\n\
         engine.run;epoch 700\n\
         engine.run;epoch;evaluate 450\n\
         engine.run;epoch;evaluate;forest.fit 200\n"
    );
}

#[test]
fn critical_path_matches_golden() {
    let trace = Trace::from_path(fixture()).unwrap();
    assert_eq!(
        trace.critical_path(),
        "critical path (heaviest chain):\n\
         \x20 engine.run  total 1000 us, self 150 us  [root]\n\
         \x20   epoch  total 450 us, self 100 us  [ 45.0% of parent]\n\
         \x20     evaluate  total 350 us, self 350 us  [ 77.8% of parent]\n"
    );
}

#[test]
fn attribution_matches_golden() {
    let trace = Trace::from_path(fixture()).unwrap();
    let report = trace.attribution("job");
    assert!(report.starts_with("time attribution by `job` (1600 us total):\n"));
    let rows: Vec<String> = report
        .lines()
        .skip(1)
        .map(|l| l.split_whitespace().collect::<Vec<_>>().join(" "))
        .collect();
    assert_eq!(rows, ["job=1 1000 us 62.5%", "job=2 600 us 37.5%"]);
}

#[test]
fn cache_report_matches_golden() {
    let trace = Trace::from_path(fixture()).unwrap();
    let report = trace.cache_report();
    assert!(report.starts_with("cache efficiency:\n"), "{report}");
    assert!(
        report.contains("score_cache") && report.contains("50.0% hit rate"),
        "per-shard counters must fold into one score_cache family: {report}"
    );
    let evaluator = report
        .lines()
        .find(|l| l.trim_start().starts_with("evaluator"))
        .expect("evaluator hit/miss pair becomes a family row");
    assert!(
        evaluator.contains("50 hits") && evaluator.contains("50.0% hit rate"),
        "{evaluator}"
    );
}

/// The CLI end-to-end: run the real binary on the fixture with no
/// section flags and require all four reports on stdout.
#[test]
fn trace_tool_cli_prints_all_sections() {
    let out = Command::new(env!("CARGO_BIN_EXE_trace_tool"))
        .arg(fixture())
        .output()
        .expect("run trace_tool");
    assert!(out.status.success(), "{:?}", out);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("engine.run;epoch;evaluate;forest.fit 200"));
    assert!(stdout.contains("critical path (heaviest chain):"));
    assert!(stdout.contains("time attribution by `job`"));
    assert!(stdout.contains("cache efficiency:"));
}

/// `--folded PATH` writes the folded stacks to the named file and keeps
/// stdout free of them.
#[test]
fn trace_tool_cli_writes_folded_file() {
    let dir = std::env::temp_dir().join("eafe_trace_golden");
    std::fs::create_dir_all(&dir).unwrap();
    let folded = dir.join("trace_small.folded");
    let out = Command::new(env!("CARGO_BIN_EXE_trace_tool"))
        .arg(fixture())
        .arg("--folded")
        .arg(&folded)
        .output()
        .expect("run trace_tool");
    assert!(out.status.success(), "{:?}", out);
    let text = std::fs::read_to_string(&folded).unwrap();
    assert_eq!(text.lines().count(), 4);
    assert!(text.contains("engine.run 250"));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.is_empty(),
        "folded-to-file leaves stdout empty: {stdout}"
    );
}
