//! Criterion micro-benchmarks of the sample compressor's hot path:
//! signature computation per hash family and per signature dimension.
//! Supports the paper's Q6 discussion (why CCWS is the default) with
//! throughput numbers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use minhash::{HashFamily, SampleCompressor, WeightedMinHasher};

fn column(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64) * 0.37).sin() * 4.0 + 5.0)
        .collect()
}

fn bench_families(c: &mut Criterion) {
    let values = column(1000);
    let weights = SampleCompressor::to_weights(&values);
    let mut group = c.benchmark_group("signature_by_family_d48_n1000");
    for family in HashFamily::ALL {
        let hasher = WeightedMinHasher::new(family, 48, 7).unwrap();
        group.bench_function(BenchmarkId::from_parameter(family.name()), |b| {
            b.iter(|| hasher.signature(black_box(&weights)).unwrap())
        });
    }
    group.finish();
}

fn bench_dimensions(c: &mut Criterion) {
    let values = column(1000);
    let weights = SampleCompressor::to_weights(&values);
    let mut group = c.benchmark_group("ccws_signature_by_d_n1000");
    for d in [16usize, 32, 48, 64, 96] {
        let hasher = WeightedMinHasher::new(HashFamily::Ccws, d, 7).unwrap();
        group.bench_function(BenchmarkId::from_parameter(d), |b| {
            b.iter(|| hasher.signature(black_box(&weights)).unwrap())
        });
    }
    group.finish();
}

fn bench_sample_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ccws_compress_by_rows_d48");
    for n in [100usize, 1000, 10_000] {
        let values = column(n);
        let compressor = SampleCompressor::new(HashFamily::Ccws, 48, 7).unwrap();
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| compressor.compress_normalized(black_box(&values)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_families,
    bench_dimensions,
    bench_sample_sizes
);
criterion_main!(benches);
