//! Criterion micro-benchmarks of the feature-generation path: operator
//! application, full candidate generation, and FPE gate inference — the
//! cheap side of the Table I time budget.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use eafe::{GeneratedFeature, Operator};
use tabular::Column;

fn column(n: usize, phase: f64) -> Column {
    Column::new(
        "f",
        (0..n).map(|i| ((i as f64) * phase).sin() * 3.0).collect(),
    )
}

fn bench_operators(c: &mut Criterion) {
    let a = column(1000, 0.37);
    let b = column(1000, 0.11);
    let mut group = c.benchmark_group("operator_apply_n1000");
    for op in Operator::ALL {
        group.bench_function(BenchmarkId::from_parameter(op.symbol()), |bch| {
            bch.iter(|| op.apply(black_box(&a.values), black_box(&b.values)))
        });
    }
    group.finish();
}

fn bench_generate(c: &mut Criterion) {
    let a = column(1000, 0.37);
    let b = column(1000, 0.11);
    c.bench_function("generated_feature_full_n1000", |bch| {
        bch.iter(|| {
            let g =
                GeneratedFeature::generate(Operator::Divide, black_box(&a), 1, black_box(&b), 2);
            black_box(g.is_degenerate());
            g
        })
    });
}

fn bench_degeneracy_check(c: &mut Criterion) {
    let a = column(10_000, 0.37);
    let g = GeneratedFeature::generate(Operator::Log, &a, 0, &a, 0);
    c.bench_function("is_degenerate_n10000", |bch| {
        bch.iter(|| black_box(&g).is_degenerate())
    });
}

criterion_group!(
    benches,
    bench_operators,
    bench_generate,
    bench_degeneracy_check
);
criterion_main!(benches);
