//! Criterion micro-benchmarks of the downstream-task substrate: Random
//! Forest fit/predict and the full cross-validated evaluation `A_T(F, y)`
//! that dominates AFE runtime (the Table I phenomenon at micro scale).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use learners::{feature_matrix, Evaluator, ForestConfig, RandomForestClassifier};
use tabular::{SynthSpec, Task};

fn frame(n: usize, m: usize) -> tabular::DataFrame {
    SynthSpec::new(format!("bench-{n}x{m}"), n, m, Task::Classification)
        .with_seed(1)
        .generate()
        .unwrap()
}

fn bench_fit(c: &mut Criterion) {
    let mut group = c.benchmark_group("rf_fit");
    group.sample_size(10);
    for (n, m) in [(200usize, 8usize), (500, 8), (500, 32)] {
        let f = frame(n, m);
        let x = feature_matrix(&f);
        let y = f.label().classes().unwrap().to_vec();
        group.bench_function(BenchmarkId::from_parameter(format!("{n}x{m}")), |b| {
            b.iter(|| {
                let mut rf = RandomForestClassifier::new(ForestConfig::fast());
                rf.fit(black_box(&x), black_box(&y), 2).unwrap();
                rf
            })
        });
    }
    group.finish();
}

fn bench_predict(c: &mut Criterion) {
    let f = frame(500, 8);
    let x = feature_matrix(&f);
    let y = f.label().classes().unwrap().to_vec();
    let mut rf = RandomForestClassifier::new(ForestConfig::fast());
    rf.fit(&x, &y, 2).unwrap();
    c.bench_function("rf_predict_500x8", |b| {
        b.iter(|| rf.predict(black_box(&x)).unwrap())
    });
}

fn bench_cv_evaluate(c: &mut Criterion) {
    let mut group = c.benchmark_group("cv_evaluate");
    group.sample_size(10);
    for n in [200usize, 500] {
        let f = frame(n, 8);
        let mut ev = Evaluator {
            folds: 5,
            ..Evaluator::default()
        };
        ev.forest.n_trees = 10;
        group.bench_function(BenchmarkId::from_parameter(n), |b| {
            b.iter(|| ev.evaluate(black_box(&f)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fit, bench_predict, bench_cv_evaluate);
criterion_main!(benches);
