//! Property tests for the pinned reduction tree (DESIGN.md §13).
//!
//! Two families of guarantees:
//!
//! 1. **Tier parity** — the dispatched kernels are bitwise identical to
//!    the portable tier on arbitrary inputs and lengths (this is what
//!    CI's feature-on pass verifies against the intrinsics).
//! 2. **Tolerance vs. naive** — the tree's one deliberate
//!    reassociation stays numerically close to the plain sequential
//!    sum, so swapping callers onto the tree was a rounding-level
//!    change, not a numerical rewrite.

use proptest::prelude::*;

fn values() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 0..200)
}

/// Trim two independently generated vectors to a shared length so every
/// kernel sees equal-length slices (covering all tail shapes).
fn paired(a: &[f64], b: &[f64]) -> (Vec<f64>, Vec<f64>) {
    let n = a.len().min(b.len());
    (a[..n].to_vec(), b[..n].to_vec())
}

fn naive_dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn naive_sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dispatched_dot_is_portable_bitwise(xs in values(), ys in values()) {
        let (a, b) = paired(&xs, &ys);
        prop_assert_eq!(
            simd::dot(&a, &b).to_bits(),
            simd::dot_portable(&a, &b).to_bits()
        );
    }

    #[test]
    fn dispatched_sq_dist_is_portable_bitwise(xs in values(), ys in values()) {
        let (a, b) = paired(&xs, &ys);
        prop_assert_eq!(
            simd::sq_dist(&a, &b).to_bits(),
            simd::sq_dist_portable(&a, &b).to_bits()
        );
    }

    #[test]
    fn dispatched_axpy_is_portable_bitwise(
        xs in values(),
        ys in values(),
        a in -10.0f64..10.0,
    ) {
        let (x, mut out) = paired(&xs, &ys);
        let mut want = out.clone();
        simd::axpy_portable(&mut want, a, &x);
        simd::axpy(&mut out, a, &x);
        for (got, want) in out.iter().zip(&want) {
            prop_assert_eq!(got.to_bits(), want.to_bits());
        }
    }

    #[test]
    fn tree_dot_is_tolerance_close_to_sequential(xs in values(), ys in values()) {
        let (a, b) = paired(&xs, &ys);
        let tree = simd::dot(&a, &b);
        let seq = naive_dot(&a, &b);
        let scale = a.iter().zip(&b).map(|(x, y)| (x * y).abs()).sum::<f64>();
        prop_assert!((tree - seq).abs() <= 1e-12 * scale.max(1.0));
    }

    #[test]
    fn tree_sq_dist_is_tolerance_close_to_sequential(xs in values(), ys in values()) {
        let (a, b) = paired(&xs, &ys);
        let tree = simd::sq_dist(&a, &b);
        let seq = naive_sq_dist(&a, &b);
        prop_assert!((tree - seq).abs() <= 1e-12 * seq.max(1.0));
    }
}
