//! Fixed-lane `f64` kernels with a **pinned reduction tree**.
//!
//! Every summation kernel in this crate — and therefore every consumer
//! in the workspace (`learners::dense`, `learners::linalg`,
//! `minhash::tables`) — reduces in one canonical order:
//!
//! ```text
//! LANES = 4 independent accumulators over chunks of 4:
//!     acc[j] += a[4i + j] * b[4i + j]        (i ascending, j = 0..4)
//! final reduction, fixed associativity:
//!     total = (acc[0] + acc[1]) + (acc[2] + acc[3])
//! tail (len % 4 trailing elements), ascending, sequential:
//!     total += a[k] * b[k]
//! ```
//!
//! This tree is the *contract*, not an implementation detail (DESIGN.md
//! §13): the portable tier below is written exactly in that shape, and
//! the `std::arch` tiers behind the `simd-arch` cargo feature reproduce
//! it instruction-for-instruction — AVX2 holds the four accumulators in
//! one `__m256d`, SSE2 in two `__m128d`, both reduce `(0+1)+(2+3)`, and
//! neither uses FMA (fused multiply-add rounds once where the contract
//! rounds twice). Consequently **every tier is bitwise identical** to
//! the portable tier, which is what lets callers keep their existing
//! "fast path ≡ reference path" proptest guarantees while the reference
//! path itself got faster: the four-way accumulator split is the one
//! deliberate reassociation, chosen once, documented here, and shared
//! by both sides of every parity test.
//!
//! Elementwise kernels ([`axpy`], the CWS helpers) have no reduction at
//! all — each output element is produced by the same scalar expression
//! in every tier, so bitwise identity is trivial there.
//!
//! Tier selection is runtime CPU detection (`is_x86_feature_detected!`),
//! cached after the first query; without the `simd-arch` feature, or off
//! x86_64, the portable tier is the only one compiled.

#![warn(missing_docs)]

/// Fixed lane width of the reduction tree. Changing this changes every
/// downstream float result; it is part of the pinned contract.
pub const LANES: usize = 4;

/// Instruction-set tier actually executing the kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Isa {
    /// Plain Rust loops in the canonical tree shape (always available).
    Portable,
    /// Two-`__m128d` x86_64 tier (baseline on every x86_64 CPU).
    Sse2,
    /// One-`__m256d` x86_64 tier (runtime-detected).
    Avx2,
}

impl Isa {
    /// Stable lower-case name for logs and bench artifact headers.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Portable => "portable",
            Isa::Sse2 => "sse2",
            Isa::Avx2 => "avx2",
        }
    }
}

/// The tier kernels dispatch to on this machine, given how the crate
/// was compiled. Detection runs once and is cached.
pub fn active_isa() -> Isa {
    #[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
    {
        arch::detect()
    }
    #[cfg(not(all(feature = "simd-arch", target_arch = "x86_64")))]
    {
        Isa::Portable
    }
}

/// Whether the `simd-arch` cargo feature was compiled in (regardless of
/// what the CPU supports). Recorded in bench artifact headers.
pub fn arch_feature_enabled() -> bool {
    cfg!(feature = "simd-arch")
}

/// SIMD-relevant CPU features present on this machine, independent of
/// whether the arch tier is compiled in. Recorded in bench artifact
/// headers so committed results are reproducible against their ISA.
pub fn detected_cpu_features() -> Vec<&'static str> {
    #[cfg(target_arch = "x86_64")]
    {
        let mut out = Vec::new();
        macro_rules! probe {
            ($($f:tt),*) => {
                $(if is_x86_feature_detected!($f) { out.push($f); })*
            };
        }
        probe!("sse2", "sse4.1", "sse4.2", "avx", "avx2", "fma", "avx512f");
        out
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Vec::new()
    }
}

// ---------------------------------------------------------------------
// Reduction kernels (the pinned tree)
// ---------------------------------------------------------------------

/// Dot product `Σ a[i]·b[i]` in the canonical reduction tree.
///
/// Slices must be the same length (debug-asserted; the shorter length
/// is used in release builds, matching `zip` semantics).
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
    match active_isa() {
        // SAFETY: detect() returned a tier only if the CPU has it.
        Isa::Avx2 => return unsafe { arch::dot_avx2(a, b) },
        Isa::Sse2 => return unsafe { arch::dot_sse2(a, b) },
        Isa::Portable => {}
    }
    dot_portable(a, b)
}

/// Portable-tier [`dot`]: the reference body of the contract.
pub fn dot_portable(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let mut ca = a[..n].chunks_exact(LANES);
    let mut cb = b[..n].chunks_exact(LANES);
    let mut acc = [0.0f64; LANES];
    for (ka, kb) in ca.by_ref().zip(cb.by_ref()) {
        acc[0] += ka[0] * kb[0];
        acc[1] += ka[1] * kb[1];
        acc[2] += ka[2] * kb[2];
        acc[3] += ka[3] * kb[3];
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        total += x * y;
    }
    total
}

/// Squared Euclidean distance `Σ (a[i]−b[i])²` in the canonical tree.
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    #[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
    match active_isa() {
        // SAFETY: detect() returned a tier only if the CPU has it.
        Isa::Avx2 => return unsafe { arch::sq_dist_avx2(a, b) },
        Isa::Sse2 => return unsafe { arch::sq_dist_sse2(a, b) },
        Isa::Portable => {}
    }
    sq_dist_portable(a, b)
}

/// Portable-tier [`sq_dist`]: the reference body of the contract.
pub fn sq_dist_portable(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let mut ca = a[..n].chunks_exact(LANES);
    let mut cb = b[..n].chunks_exact(LANES);
    let mut acc = [0.0f64; LANES];
    for (ka, kb) in ca.by_ref().zip(cb.by_ref()) {
        let d0 = ka[0] - kb[0];
        let d1 = ka[1] - kb[1];
        let d2 = ka[2] - kb[2];
        let d3 = ka[3] - kb[3];
        acc[0] += d0 * d0;
        acc[1] += d1 * d1;
        acc[2] += d2 * d2;
        acc[3] += d3 * d3;
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for (x, y) in ca.remainder().iter().zip(cb.remainder()) {
        let d = x - y;
        total += d * d;
    }
    total
}

// ---------------------------------------------------------------------
// Elementwise kernels (no reduction; per-element expressions pinned)
// ---------------------------------------------------------------------

/// `out[i] += a · x[i]`. Elementwise: every tier computes each element
/// with one multiply then one add (no FMA), so results are bitwise
/// tier-independent.
pub fn axpy(out: &mut [f64], a: f64, x: &[f64]) {
    debug_assert_eq!(out.len(), x.len());
    #[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
    match active_isa() {
        // SAFETY: detect() returned a tier only if the CPU has it.
        Isa::Avx2 => return unsafe { arch::axpy_avx2(out, a, x) },
        Isa::Sse2 => return unsafe { arch::axpy_sse2(out, a, x) },
        Isa::Portable => {}
    }
    axpy_portable(out, a, x);
}

/// Portable-tier [`axpy`].
pub fn axpy_portable(out: &mut [f64], a: f64, x: &[f64]) {
    for (o, xi) in out.iter_mut().zip(x) {
        *o += a * xi;
    }
}

/// CWS scan step 1: `out[i] = (s / r[i] + beta[i]).floor()`.
///
/// The division is pinned: it is *not* rewritten as a `1/r` multiply,
/// whose rounding differs (see `minhash::tables`). `floor` rounds
/// toward −∞ in every tier (`_mm256_floor_pd` ≡ `f64::floor`). The
/// arch tier is AVX2-only: SSE2 has no packed floor.
pub fn div_add_floor(out: &mut [f64], s: f64, r: &[f64], beta: &[f64]) {
    debug_assert_eq!(out.len(), r.len());
    debug_assert_eq!(out.len(), beta.len());
    #[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detect() returned Avx2 only if the CPU has it.
        return unsafe { arch::div_add_floor_avx2(out, s, r, beta) };
    }
    for ((o, ri), bi) in out.iter_mut().zip(r).zip(beta) {
        *o = (s / ri + bi).floor();
    }
}

/// CWS scan step 2: `out[i] = r[i] · (t[i] − beta[i])`.
pub fn mul_sub(out: &mut [f64], r: &[f64], t: &[f64], beta: &[f64]) {
    debug_assert_eq!(out.len(), r.len());
    debug_assert_eq!(out.len(), t.len());
    debug_assert_eq!(out.len(), beta.len());
    #[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detect() returned Avx2 only if the CPU has it.
        return unsafe { arch::mul_sub_avx2(out, r, t, beta) };
    }
    for (((o, ri), ti), bi) in out.iter_mut().zip(r).zip(t).zip(beta) {
        *o = ri * (ti - bi);
    }
}

/// CWS scan step 3: `buf[i] = exp(buf[i])`, always scalar: `std::arch`
/// exposes no vector `exp`, and any polynomial approximation would
/// change the hash values. Kept here so the whole scan reads as one
/// pipeline at the call site.
pub fn exp_inplace(buf: &mut [f64]) {
    for v in buf.iter_mut() {
        *v = v.exp();
    }
}

/// CWS scan step 4: `out[i] = c[i] / (out[i] · er[i])` — the final
/// ICWS/PCWS hash value from `out = y` and the precomputed tables.
pub fn div_prod(out: &mut [f64], c: &[f64], er: &[f64]) {
    debug_assert_eq!(out.len(), c.len());
    debug_assert_eq!(out.len(), er.len());
    #[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detect() returned Avx2 only if the CPU has it.
        return unsafe { arch::div_prod_avx2(out, c, er) };
    }
    for ((o, ci), ei) in out.iter_mut().zip(c).zip(er) {
        *o = ci / (*o * ei);
    }
}

/// `buf[i] = buf[i].max(m)`. Scalar in every tier: `f64::max` NaN
/// semantics differ from `maxpd`, and this runs on the cold CCWS path.
pub fn max_scalar(buf: &mut [f64], m: f64) {
    for v in buf.iter_mut() {
        *v = v.max(m);
    }
}

/// `out[i] = c[i] / out[i]` — the CCWS hash value from `out = y`.
pub fn div_into(out: &mut [f64], c: &[f64]) {
    debug_assert_eq!(out.len(), c.len());
    #[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
    if active_isa() == Isa::Avx2 {
        // SAFETY: detect() returned Avx2 only if the CPU has it.
        return unsafe { arch::div_into_avx2(out, c) };
    }
    for (o, ci) in out.iter_mut().zip(c) {
        *o = ci / *o;
    }
}

// ---------------------------------------------------------------------
// std::arch tier
// ---------------------------------------------------------------------

#[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
mod arch {
    //! x86_64 intrinsics reproducing the portable tier bit-for-bit.
    //!
    //! Invariants every kernel here upholds:
    //! - multiply and add are separate instructions (never FMA);
    //! - the four lane accumulators reduce `(0+1)+(2+3)`;
    //! - the scalar tail runs ascending after the vector body, exactly
    //!   like the portable tier.

    use super::{Isa, LANES};
    use std::arch::x86_64::*;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Cached runtime detection: 0 = not yet probed.
    static CACHED: AtomicU8 = AtomicU8::new(0);

    pub(crate) fn detect() -> Isa {
        match CACHED.load(Ordering::Relaxed) {
            1 => return Isa::Portable,
            2 => return Isa::Sse2,
            3 => return Isa::Avx2,
            _ => {}
        }
        let (isa, tag) = if is_x86_feature_detected!("avx2") {
            (Isa::Avx2, 3)
        } else if is_x86_feature_detected!("sse2") {
            (Isa::Sse2, 2)
        } else {
            (Isa::Portable, 1)
        };
        CACHED.store(tag, Ordering::Relaxed);
        isa
    }

    /// Reduce a `__m256d` of lane accumulators as `(0+1)+(2+3)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn reduce_tree_avx2(acc: __m256d) -> f64 {
        let lo = _mm256_castpd256_pd128(acc); // lanes 0,1
        let hi = _mm256_extractf128_pd(acc, 1); // lanes 2,3
        let s01 = _mm_add_sd(lo, _mm_unpackhi_pd(lo, lo));
        let s23 = _mm_add_sd(hi, _mm_unpackhi_pd(hi, hi));
        _mm_cvtsd_f64(_mm_add_sd(s01, s23))
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn dot_avx2(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            let va = _mm256_loadu_pd(a.as_ptr().add(LANES * i));
            let vb = _mm256_loadu_pd(b.as_ptr().add(LANES * i));
            acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
        }
        let mut total = reduce_tree_avx2(acc);
        for k in chunks * LANES..n {
            total += a[k] * b[k];
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn sq_dist_avx2(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let mut acc = _mm256_setzero_pd();
        for i in 0..chunks {
            let va = _mm256_loadu_pd(a.as_ptr().add(LANES * i));
            let vb = _mm256_loadu_pd(b.as_ptr().add(LANES * i));
            let d = _mm256_sub_pd(va, vb);
            acc = _mm256_add_pd(acc, _mm256_mul_pd(d, d));
        }
        let mut total = reduce_tree_avx2(acc);
        for k in chunks * LANES..n {
            let d = a[k] - b[k];
            total += d * d;
        }
        total
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn axpy_avx2(out: &mut [f64], a: f64, x: &[f64]) {
        let n = out.len().min(x.len());
        let chunks = n / LANES;
        let va = _mm256_set1_pd(a);
        for i in 0..chunks {
            let p = out.as_mut_ptr().add(LANES * i);
            let vo = _mm256_loadu_pd(p);
            let vx = _mm256_loadu_pd(x.as_ptr().add(LANES * i));
            _mm256_storeu_pd(p, _mm256_add_pd(vo, _mm256_mul_pd(va, vx)));
        }
        for k in chunks * LANES..n {
            out[k] += a * x[k];
        }
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn div_add_floor_avx2(out: &mut [f64], s: f64, r: &[f64], beta: &[f64]) {
        let n = out.len().min(r.len()).min(beta.len());
        let chunks = n / LANES;
        let vs = _mm256_set1_pd(s);
        for i in 0..chunks {
            let vr = _mm256_loadu_pd(r.as_ptr().add(LANES * i));
            let vb = _mm256_loadu_pd(beta.as_ptr().add(LANES * i));
            let t = _mm256_floor_pd(_mm256_add_pd(_mm256_div_pd(vs, vr), vb));
            _mm256_storeu_pd(out.as_mut_ptr().add(LANES * i), t);
        }
        for k in chunks * LANES..n {
            out[k] = (s / r[k] + beta[k]).floor();
        }
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn mul_sub_avx2(out: &mut [f64], r: &[f64], t: &[f64], beta: &[f64]) {
        let n = out.len().min(r.len()).min(t.len()).min(beta.len());
        let chunks = n / LANES;
        for i in 0..chunks {
            let vr = _mm256_loadu_pd(r.as_ptr().add(LANES * i));
            let vt = _mm256_loadu_pd(t.as_ptr().add(LANES * i));
            let vb = _mm256_loadu_pd(beta.as_ptr().add(LANES * i));
            let v = _mm256_mul_pd(vr, _mm256_sub_pd(vt, vb));
            _mm256_storeu_pd(out.as_mut_ptr().add(LANES * i), v);
        }
        for k in chunks * LANES..n {
            out[k] = r[k] * (t[k] - beta[k]);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn div_prod_avx2(out: &mut [f64], c: &[f64], er: &[f64]) {
        let n = out.len().min(c.len()).min(er.len());
        let chunks = n / LANES;
        for i in 0..chunks {
            let p = out.as_mut_ptr().add(LANES * i);
            let vy = _mm256_loadu_pd(p);
            let vc = _mm256_loadu_pd(c.as_ptr().add(LANES * i));
            let ve = _mm256_loadu_pd(er.as_ptr().add(LANES * i));
            _mm256_storeu_pd(p, _mm256_div_pd(vc, _mm256_mul_pd(vy, ve)));
        }
        for k in chunks * LANES..n {
            out[k] = c[k] / (out[k] * er[k]);
        }
    }

    #[target_feature(enable = "avx2")]
    pub(crate) unsafe fn div_into_avx2(out: &mut [f64], c: &[f64]) {
        let n = out.len().min(c.len());
        let chunks = n / LANES;
        for i in 0..chunks {
            let p = out.as_mut_ptr().add(LANES * i);
            let vy = _mm256_loadu_pd(p);
            let vc = _mm256_loadu_pd(c.as_ptr().add(LANES * i));
            _mm256_storeu_pd(p, _mm256_div_pd(vc, vy));
        }
        for k in chunks * LANES..n {
            out[k] = c[k] / out[k];
        }
    }

    /// Reduce two `__m128d` lane-pair accumulators as `(0+1)+(2+3)`.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn reduce_tree_sse2(acc01: __m128d, acc23: __m128d) -> f64 {
        let s01 = _mm_add_sd(acc01, _mm_unpackhi_pd(acc01, acc01));
        let s23 = _mm_add_sd(acc23, _mm_unpackhi_pd(acc23, acc23));
        _mm_cvtsd_f64(_mm_add_sd(s01, s23))
    }

    #[target_feature(enable = "sse2")]
    pub(crate) unsafe fn dot_sse2(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        for i in 0..chunks {
            let pa = a.as_ptr().add(LANES * i);
            let pb = b.as_ptr().add(LANES * i);
            acc01 = _mm_add_pd(acc01, _mm_mul_pd(_mm_loadu_pd(pa), _mm_loadu_pd(pb)));
            acc23 = _mm_add_pd(
                acc23,
                _mm_mul_pd(_mm_loadu_pd(pa.add(2)), _mm_loadu_pd(pb.add(2))),
            );
        }
        let mut total = reduce_tree_sse2(acc01, acc23);
        for k in chunks * LANES..n {
            total += a[k] * b[k];
        }
        total
    }

    #[target_feature(enable = "sse2")]
    pub(crate) unsafe fn sq_dist_sse2(a: &[f64], b: &[f64]) -> f64 {
        let n = a.len().min(b.len());
        let chunks = n / LANES;
        let mut acc01 = _mm_setzero_pd();
        let mut acc23 = _mm_setzero_pd();
        for i in 0..chunks {
            let pa = a.as_ptr().add(LANES * i);
            let pb = b.as_ptr().add(LANES * i);
            let d01 = _mm_sub_pd(_mm_loadu_pd(pa), _mm_loadu_pd(pb));
            let d23 = _mm_sub_pd(_mm_loadu_pd(pa.add(2)), _mm_loadu_pd(pb.add(2)));
            acc01 = _mm_add_pd(acc01, _mm_mul_pd(d01, d01));
            acc23 = _mm_add_pd(acc23, _mm_mul_pd(d23, d23));
        }
        let mut total = reduce_tree_sse2(acc01, acc23);
        for k in chunks * LANES..n {
            let d = a[k] - b[k];
            total += d * d;
        }
        total
    }

    #[target_feature(enable = "sse2")]
    pub(crate) unsafe fn axpy_sse2(out: &mut [f64], a: f64, x: &[f64]) {
        let n = out.len().min(x.len());
        let pairs = n / 2;
        let va = _mm_set1_pd(a);
        for i in 0..pairs {
            let p = out.as_mut_ptr().add(2 * i);
            let vo = _mm_loadu_pd(p);
            let vx = _mm_loadu_pd(x.as_ptr().add(2 * i));
            _mm_storeu_pd(p, _mm_add_pd(vo, _mm_mul_pd(va, vx)));
        }
        for k in pairs * 2..n {
            out[k] += a * x[k];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_small_exact() {
        // Tail-only (n < LANES) and chunk+tail shapes, exact values.
        assert_eq!(dot(&[2.0, 3.0], &[4.0, 5.0]), 23.0);
        let a = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let b = [1.0; 6];
        assert_eq!(dot(&a, &b), 21.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn sq_dist_small_exact() {
        assert_eq!(sq_dist(&[1.0, 2.0], &[4.0, 6.0]), 25.0);
        let a = [0.0, 0.0, 0.0, 0.0, 3.0];
        let b = [1.0, 1.0, 1.0, 1.0, 0.0];
        assert_eq!(sq_dist(&a, &b), 13.0);
    }

    #[test]
    fn axpy_matches_scalar_expression() {
        let x: Vec<f64> = (0..13).map(|i| 0.3 * i as f64 - 1.7).collect();
        let mut out: Vec<f64> = (0..13).map(|i| (i as f64).sin()).collect();
        let mut want = out.clone();
        for (o, xi) in want.iter_mut().zip(&x) {
            *o += 0.7193 * xi;
        }
        axpy(&mut out, 0.7193, &x);
        for (a, b) in out.iter().zip(&want) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn dot_reduction_tree_is_the_documented_one() {
        // A sum whose value depends on associativity: the kernel must
        // match the documented tree, not plain sequential order.
        let a: Vec<f64> = (0..11).map(|i| (1.0 + i as f64).exp()).collect();
        let b: Vec<f64> = (0..11).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let mut acc = [0.0f64; LANES];
        for i in 0..(a.len() / LANES) * LANES {
            acc[i % LANES] += a[i] * b[i];
        }
        let mut want = (acc[0] + acc[1]) + (acc[2] + acc[3]);
        for i in (a.len() / LANES) * LANES..a.len() {
            want += a[i] * b[i];
        }
        assert_eq!(dot(&a, &b).to_bits(), want.to_bits());
    }

    #[test]
    fn cws_helpers_match_scalar_expressions() {
        let d = 11;
        let r: Vec<f64> = (0..d).map(|i| 0.4 + 0.13 * i as f64).collect();
        let beta: Vec<f64> = (0..d).map(|i| (0.17 * i as f64).fract()).collect();
        let c: Vec<f64> = (0..d).map(|i| 1.1 + 0.21 * i as f64).collect();
        let er: Vec<f64> = r.iter().map(|v| (0.5 * v).exp()).collect();
        let s = 1.37f64.ln();

        let mut t = vec![0.0; d];
        div_add_floor(&mut t, s, &r, &beta);
        let mut y = vec![0.0; d];
        mul_sub(&mut y, &r, &t, &beta);
        exp_inplace(&mut y);
        div_prod(&mut y, &c, &er);

        for i in 0..d {
            let ti = (s / r[i] + beta[i]).floor();
            assert_eq!(t[i].to_bits(), ti.to_bits());
            let yi = (r[i] * (ti - beta[i])).exp();
            let ai = c[i] / (yi * er[i]);
            assert_eq!(y[i].to_bits(), ai.to_bits());
        }

        let mut yc = vec![0.0; d];
        mul_sub(&mut yc, &r, &t, &beta);
        max_scalar(&mut yc, f64::MIN_POSITIVE);
        div_into(&mut yc, &c);
        for i in 0..d {
            let yi = (r[i] * (t[i] - beta[i])).max(f64::MIN_POSITIVE);
            assert_eq!(yc[i].to_bits(), (c[i] / yi).to_bits());
        }
    }

    #[test]
    fn active_isa_is_consistent_with_feature() {
        let isa = active_isa();
        if !arch_feature_enabled() {
            assert_eq!(isa, Isa::Portable);
        }
        assert!(!isa.name().is_empty());
    }

    #[cfg(all(feature = "simd-arch", target_arch = "x86_64"))]
    #[test]
    fn arch_tiers_match_portable_bitwise() {
        // Exercise every compiled tier explicitly, not just the active
        // one, on shapes covering empty, tail-only, and chunk+tail.
        for n in [0usize, 1, 3, 4, 5, 8, 17, 64, 129] {
            let a: Vec<f64> = (0..n).map(|i| (0.37 * i as f64).sin() * 3.0).collect();
            let b: Vec<f64> = (0..n).map(|i| (0.11 * i as f64).cos() + 0.2).collect();
            let want_dot = dot_portable(&a, &b);
            let want_sq = sq_dist_portable(&a, &b);
            if is_x86_feature_detected!("sse2") {
                // SAFETY: feature just detected.
                let (d, s) = unsafe { (arch::dot_sse2(&a, &b), arch::sq_dist_sse2(&a, &b)) };
                assert_eq!(d.to_bits(), want_dot.to_bits(), "sse2 dot n={n}");
                assert_eq!(s.to_bits(), want_sq.to_bits(), "sse2 sq_dist n={n}");
            }
            if is_x86_feature_detected!("avx2") {
                // SAFETY: feature just detected.
                let (d, s) = unsafe { (arch::dot_avx2(&a, &b), arch::sq_dist_avx2(&a, &b)) };
                assert_eq!(d.to_bits(), want_dot.to_bits(), "avx2 dot n={n}");
                assert_eq!(s.to_bits(), want_sq.to_bits(), "avx2 sq_dist n={n}");
            }
        }
    }
}
