//! The coordinator: authoritative sequential search plus shard dispatch.
//!
//! The coordinator owns the only `SearchState`. Per slice it speculates
//! the slice's compute-heavy work, shards it across live workers (shard
//! `i` takes tasks `i, i+n, i+2n, …`), dispatches a wave, collects one
//! result per in-flight shard, and merges returned cache snapshots in
//! ascending shard-index order before running the real `Engine::step`.
//! Merge order is fixed so the procedure is reproducible, and the merge
//! itself is idempotent (content-addressed, debug-asserted-equal
//! entries) — which together give the determinism contract:
//! solo ≡ 1 worker ≡ N workers, bitwise.
//!
//! Failure handling: any transport error, ticket mismatch, or protocol
//! violation kills the worker slot, re-queues the shard for a live
//! worker (`dist.shards_retried`), and carries on. With zero live
//! workers the warm rounds are skipped and the run continues solo.

use crate::protocol::{Msg, ShardResult, ShardTasks, WorkShard, STREAM_WORKER};
use crate::transport::Transport;
use crate::Result;
use eafe::{Engine, RunResult, SearchState};
use runtime::evaluator::DEFAULT_CACHE_CAPACITY;
use runtime::{derive_seed, dist_counters, ScoreCache};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::Instant;
use tabular::{Column, DataFrame};

/// Drives one search across a set of worker connections.
///
/// Slots hold `None` once a worker dies; the coordinator never blocks on
/// a dead slot again, so a late replay from a killed worker can never be
/// received, and the ticket check guards the remaining window (a live
/// worker answering out of order).
pub struct Coordinator<T: Transport> {
    workers: Vec<Option<T>>,
    /// Content fingerprints of columns already dispatched for FPE
    /// scoring this run — generated columns recur across epochs, and a
    /// column's signature-cache entries depend only on its content, so
    /// re-dispatching one buys nothing.
    fpe_dispatched: HashSet<runtime::Fingerprint>,
}

impl<T: Transport> Coordinator<T> {
    /// Adopt `workers` as the dispatch pool (may be empty — the run then
    /// degrades to plain solo search).
    pub fn new(workers: Vec<T>) -> Self {
        for _ in &workers {
            dist_counters::worker_up();
        }
        Coordinator {
            workers: workers.into_iter().map(Some).collect(),
            fpe_dispatched: HashSet::new(),
        }
    }

    /// Worker connections still usable.
    pub fn live_workers(&self) -> usize {
        self.workers.iter().filter(|w| w.is_some()).count()
    }

    /// Run `engine`'s search on `frame` to completion, warming caches
    /// through the workers before every slice. Returns exactly what a
    /// solo [`Engine::run_full`] returns — bitwise.
    pub fn run(&mut self, engine: &Engine, frame: &DataFrame) -> Result<(RunResult, DataFrame)> {
        // The search evaluator must share a cache with the merge target;
        // attach one if the caller's engine runs a private cache.
        let engine = match &engine.cache {
            Some(_) => engine.clone(),
            None => engine
                .clone()
                .with_cache(Arc::new(ScoreCache::new(DEFAULT_CACHE_CAPACITY))),
        };
        self.broadcast(&Msg::Hello {
            engine: engine.clone(),
        });
        let mut search = engine.start(frame)?;
        let mut slice: u64 = 0;
        while !search.is_done() {
            self.warm_slice(&engine, &search, slice)?;
            engine.step(&mut search)?;
            slice += 1;
        }
        self.shutdown();
        Ok(engine.finish(&search)?)
    }

    /// Speculate the next slice's work and warm the caches through the
    /// workers: round 0 merges signature entries, round 1 merges
    /// downstream scores. Errors here are engine errors (speculation
    /// itself failed); worker failures only shrink the pool.
    fn warm_slice(&mut self, engine: &Engine, search: &SearchState, slice: u64) -> Result<()> {
        if self.live_workers() == 0 {
            return Ok(());
        }
        let _span = telemetry::span("dist.slice");
        let root = engine.config.seed;

        // Pre-filter both rounds so workers only compute what the
        // coordinator is actually missing: shipping work the local
        // caches (or a previous dispatch) already cover would make the
        // wave's critical path longer for zero fresh entries. Filtering
        // is pure dedup — it never changes what `step` computes, so the
        // determinism contract is untouched.
        let mut columns = engine.speculate_fpe_columns(search)?;
        columns.retain(|c| {
            self.fpe_dispatched
                .insert(runtime::fingerprint_values(&c.values))
        });
        if !columns.is_empty() {
            let shards = make_shards(slice, 0, root, self.live_workers(), columns, |cols| {
                ShardTasks::Fpe { columns: cols }
            });
            let round = self.run_round(shards);
            let merging = Instant::now();
            for result in round {
                let fresh = runtime::sig_cache_merge(&result.sigs);
                note_merge(result.sigs.len(), fresh);
            }
            dist_counters::wire(merging.elapsed().as_micros() as u64);
        }

        let (prefix, mut candidates) = engine.speculate_evals(search)?;
        if !candidates.is_empty() && self.live_workers() > 0 {
            let cache = engine
                .cache
                .as_ref()
                .expect("coordinator engines always carry a shared cache")
                .clone();
            // Drop candidates whose evaluation is already in the shared
            // cache (merged from workers or computed by an earlier real
            // step) and slice-internal duplicates — the cache key is the
            // exact fingerprint `step` will probe with.
            let evaluator = engine.evaluator();
            let mut seen: HashSet<runtime::Fingerprint> = HashSet::new();
            candidates.retain(|candidate| {
                let Ok(frame) = prefix.with_extra_columns(std::slice::from_ref(candidate)) else {
                    return false;
                };
                let key = evaluator.cache_key(&frame);
                seen.insert(key) && !cache.contains(key)
            });
            if !candidates.is_empty() {
                let shards =
                    make_shards(slice, 1, root, self.live_workers(), candidates, |cands| {
                        ShardTasks::Eval {
                            prefix: prefix.clone(),
                            candidates: cands,
                        }
                    });
                let round = self.run_round(shards);
                let merging = Instant::now();
                for result in round {
                    let fresh = cache.merge(&result.scores);
                    note_merge(result.scores.len(), fresh);
                }
                dist_counters::wire(merging.elapsed().as_micros() as u64);
            }
        }
        Ok(())
    }

    /// Dispatch one round of shards and collect their results, waves of
    /// at most one in-flight shard per live worker. Shards whose worker
    /// dies (send failure, recv failure, ticket mismatch) re-queue for
    /// the next wave; the round ends when every shard completed or no
    /// workers remain (undone shards are simply not warmed). Results
    /// come back sorted by shard index — the merge order contract.
    fn run_round(&mut self, shards: Vec<WorkShard>) -> Vec<ShardResult> {
        let mut queue: VecDeque<WorkShard> = shards.into();
        let mut results: Vec<ShardResult> = Vec::new();
        let mut completed: HashSet<u32> = HashSet::new();
        while !queue.is_empty() && self.live_workers() > 0 {
            let wire = Instant::now();
            let wave_started = results.len();
            // Send phase: hand each live worker the next queued shard.
            let mut inflight: Vec<(usize, WorkShard)> = Vec::new();
            for slot in 0..self.workers.len() {
                if queue.is_empty() {
                    break;
                }
                if self.workers[slot].is_none() {
                    continue;
                }
                let shard = queue.pop_front().expect("queue non-empty");
                dist_counters::dispatched(1);
                telemetry::count("dist.shards_dispatched", 1);
                let sent = self.workers[slot]
                    .as_mut()
                    .expect("slot checked live")
                    .send(&Msg::Work(shard.clone()))
                    .is_ok();
                if sent {
                    inflight.push((slot, shard));
                } else {
                    self.kill(slot);
                    requeue(shard, &mut queue);
                }
            }
            // Collect phase: one result per in-flight shard, validated
            // against its ticket.
            for (slot, shard) in inflight {
                let reply = self.workers[slot].as_mut().expect("slot live").recv();
                match reply {
                    Ok(Msg::Result(result)) if result.matches(&shard) => {
                        // Completed-shard dedup: should a replay slip
                        // through, merge idempotence makes it harmless,
                        // but we don't even merge it twice.
                        if completed.insert(result.shard) {
                            dist_counters::completed(1);
                            telemetry::count("dist.shards_completed", 1);
                            telemetry::record(
                                &format!("dist.worker{slot}.busy_us"),
                                result.busy_us,
                            );
                            results.push(result);
                        }
                    }
                    Ok(_) | Err(_) => {
                        self.kill(slot);
                        requeue(shard, &mut queue);
                    }
                }
            }
            // Wire overhead = wave wall-clock minus the critical-path
            // worker's compute time (shards run concurrently, so the
            // slowest shard's busy time overlaps everything else); what
            // remains is serialization, transport, and scheduling.
            let wave_us = wire.elapsed().as_micros() as u64;
            let busy_max = results[wave_started..]
                .iter()
                .map(|r| r.busy_us)
                .max()
                .unwrap_or(0);
            let overhead = wave_us.saturating_sub(busy_max);
            dist_counters::wire(overhead);
            telemetry::record("dist.wire_us", overhead);
        }
        results.sort_by_key(|r| r.shard);
        results
    }

    /// Send `msg` to every live worker, killing slots that fail.
    fn broadcast(&mut self, msg: &Msg) {
        for slot in 0..self.workers.len() {
            let Some(worker) = self.workers[slot].as_mut() else {
                continue;
            };
            if worker.send(msg).is_err() {
                self.kill(slot);
            }
        }
    }

    /// Orderly shutdown: `Bye` to every live worker, then drop them all.
    pub fn shutdown(&mut self) {
        for slot in 0..self.workers.len() {
            if let Some(worker) = self.workers[slot].as_mut() {
                worker.send(&Msg::Bye).ok();
                self.workers[slot] = None;
                dist_counters::worker_down();
            }
        }
    }

    fn kill(&mut self, slot: usize) {
        if self.workers[slot].take().is_some() {
            dist_counters::worker_down();
            telemetry::count("dist.worker_deaths", 1);
        }
    }
}

impl<T: Transport> Drop for Coordinator<T> {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn requeue(shard: WorkShard, queue: &mut VecDeque<WorkShard>) {
    dist_counters::retried(1);
    telemetry::count("dist.shards_retried", 1);
    queue.push_back(shard);
}

fn note_merge(total: usize, fresh: usize) {
    dist_counters::merged(total as u64, fresh as u64);
    telemetry::count("dist.entries_merged", total as u64);
}

/// Partition `tasks` into `n_shards` strided shards: shard `i` holds
/// tasks `i, i+n, i+2n, …`, each stamped with its ticket seed
/// `derive_seed(root, STREAM_WORKER, i)`. Striding keeps shard loads
/// balanced whatever the task count, and the fixed rule means shard
/// contents depend only on (task list, shard count) — never on worker
/// identity or scheduling.
fn make_shards(
    slice: u64,
    round: u32,
    root: u64,
    n_shards: usize,
    tasks: Vec<Column>,
    build: impl Fn(Vec<Column>) -> ShardTasks,
) -> Vec<WorkShard> {
    let n_shards = n_shards.min(tasks.len()).max(1);
    let mut buckets: Vec<Vec<Column>> = (0..n_shards).map(|_| Vec::new()).collect();
    for (k, task) in tasks.into_iter().enumerate() {
        buckets[k % n_shards].push(task);
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(i, bucket)| WorkShard {
            slice,
            round,
            shard: i as u32,
            seed: derive_seed(root, STREAM_WORKER, i as u64),
            tasks: build(bucket),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_sharding_balances_and_stamps_tickets() {
        let tasks: Vec<Column> = (0..7)
            .map(|i| Column::new(format!("c{i}"), vec![i as f64]))
            .collect();
        let shards = make_shards(2, 0, 41, 3, tasks, |columns| ShardTasks::Fpe { columns });
        assert_eq!(shards.len(), 3);
        let sizes: Vec<usize> = shards
            .iter()
            .map(|s| match &s.tasks {
                ShardTasks::Fpe { columns } => columns.len(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(sizes, vec![3, 2, 2]);
        for (i, shard) in shards.iter().enumerate() {
            assert_eq!(shard.shard, i as u32);
            assert_eq!(shard.seed, derive_seed(41, STREAM_WORKER, i as u64));
            assert_eq!(shard.slice, 2);
        }
        // Shard 0 holds tasks 0, 3, 6 — the strided rule.
        let ShardTasks::Fpe { columns } = &shards[0].tasks else {
            unreachable!()
        };
        let names: Vec<&str> = columns.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, vec!["c0", "c3", "c6"]);
    }

    #[test]
    fn more_shards_than_tasks_collapses_to_task_count() {
        let tasks = vec![Column::new("only", vec![1.0])];
        let shards = make_shards(0, 1, 7, 4, tasks, |columns| ShardTasks::Fpe { columns });
        assert_eq!(shards.len(), 1);
    }
}
