//! Distributed E-AFE search: a coordinator/worker protocol that shards
//! the compute-heavy 90% of every epoch — candidate evaluation — across
//! worker processes without giving up bitwise determinism.
//!
//! # Design: speculative cache warming
//!
//! E-AFE's search is sequential at heart: every policy step draws from
//! RNG streams whose order the paper's method fixes, so naively farming
//! out *the search itself* would change results with worker count. The
//! coordinator therefore runs the one authoritative sequential search
//! locally and uses workers only to **warm content-addressed caches**
//! ahead of it:
//!
//! 1. Before each [`eafe::Engine::step`] slice, the coordinator replays
//!    the slice's candidate generation from cloned state
//!    ([`eafe::Engine::speculate_fpe_columns`] /
//!    [`eafe::Engine::speculate_evals`]) to predict the columns the slice
//!    will FPE-score and the frames it will send to the downstream
//!    evaluator.
//! 2. It shards that work across workers: round A warms weighted-MinHash
//!    signatures (the FPE gate's input), round B warms downstream CV
//!    scores. Shard *i* always holds tasks `i, i+n, i+2n, …` and carries
//!    the ticket seed `derive_seed(root, STREAM_WORKER, i)`.
//! 3. Workers execute shards as **pure functions** — score a frame,
//!    sketch a column — and return fingerprint-keyed cache snapshots
//!    ([`runtime::CacheSnapshot`]).
//! 4. The coordinator merges results in ascending shard-index order into
//!    its local caches, then runs the real `step`, which hits warm
//!    entries instead of recomputing.
//!
//! Because the caches are content-addressed and only ever *short-circuit
//! recomputation* — they can never change a score — a merged entry is
//! either exactly what the sequential search would have computed (and is
//! served as a hit) or is never looked up. That gives the determinism
//! contract for free: **solo ≡ 1 worker ≡ N workers, bitwise**, and a
//! worker crash mid-shard degrades throughput, never correctness. The
//! coordinator reassigns a dead worker's shard to a live one; replayed
//! results deduplicate at two levels (completed-shard tickets, then
//! idempotent fingerprint merge). With zero live workers the dispatch
//! rounds are skipped entirely and the run degrades to plain solo search.
//!
//! Speculation accuracy bounds the speedup, not the answer: stage-1
//! prediction is exact (within an epoch, generation never consumes FPE
//! feedback), stage-2 prediction is exact up to the slice's first
//! acceptance (an acceptance re-bases later candidates, which then miss
//! and are computed locally).
//!
//! # Layout
//!
//! - [`protocol`] — message types and the length-prefixed JSON frame codec.
//! - [`transport`] — the [`Transport`] trait, TCP via `std::net`, and an
//!   in-process loopback pair (still encodes/decodes real bytes) for tests.
//! - [`worker`] — the worker serve loop: `Hello` installs an engine,
//!   `Work` shards execute, `Bye` exits.
//! - [`coordinator`] — shard construction, wave dispatch, crash
//!   reassignment, deterministic merge, and the driving run loop.
//!
//! Protocol activity is observable through `runtime::global_dist_stats()`
//! (surfaced on the serve `/status` and `/metrics` pages) and the
//! `dist.*` telemetry counters/histograms (surfaced by `--metrics` in the
//! bench bins). See DESIGN.md §15 for the frame format and the
//! idempotency argument.

pub mod coordinator;
pub mod protocol;
pub mod transport;
pub mod worker;

pub use coordinator::Coordinator;
pub use protocol::{Msg, ShardResult, ShardTasks, WorkShard, STREAM_WORKER};
pub use transport::{loopback_pair, LoopbackTransport, TcpTransport, Transport, MAX_FRAME_BYTES};
pub use worker::Worker;

/// Errors surfaced by the distribution layer.
#[derive(Debug)]
pub enum DistError {
    /// Transport I/O failed (connection reset, listener gone, …).
    Io(std::io::Error),
    /// A frame failed to encode/decode or exceeded the size limit.
    Codec(String),
    /// A peer violated the protocol (unexpected message, missing Hello).
    Protocol(String),
    /// The sequential search itself failed on the coordinator.
    Engine(eafe::EafeError),
    /// A worker-side task (evaluation, sketch) failed.
    Task(String),
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DistError::Io(e) => write!(f, "transport i/o: {e}"),
            DistError::Codec(m) => write!(f, "frame codec: {m}"),
            DistError::Protocol(m) => write!(f, "protocol violation: {m}"),
            DistError::Engine(e) => write!(f, "engine: {e}"),
            DistError::Task(m) => write!(f, "worker task: {m}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Io(e) => Some(e),
            DistError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

impl From<eafe::EafeError> for DistError {
    fn from(e: eafe::EafeError) -> Self {
        DistError::Engine(e)
    }
}

pub type Result<T> = std::result::Result<T, DistError>;
