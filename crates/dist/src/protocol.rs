//! Wire messages and the framed codec.
//!
//! Messages reuse the workspace's vendored serde model (the same
//! externally-tagged JSON the telemetry trace format uses) and travel as
//! length-prefixed frames: an 8-byte little-endian payload length
//! followed by that many bytes of UTF-8 JSON. Finite `f64` values print
//! shortest-roundtrip, so scores and column values survive the wire
//! bit-exactly — the property the determinism contract leans on.

use eafe::Engine;
use minhash::Signature;
use runtime::CacheSnapshot;
use serde::{Deserialize, Serialize};
use tabular::{Column, DataFrame};

/// Seed stream for shard tickets: the ticket of shard `i` under root
/// seed `r` is `runtime::derive_seed(r, STREAM_WORKER, i)`. Workers echo
/// the ticket back with their result; the coordinator discards any result
/// whose `(slice, round, shard, seed)` does not match an outstanding
/// dispatch, which is what makes replays after a crash-reassignment safe
/// to receive in any order.
pub const STREAM_WORKER: u64 = 0x776f_726b; // "work"

/// The payload of one work shard: what the worker computes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum ShardTasks {
    /// Round A — sketch and FPE-score candidate columns, warming the
    /// process-wide signature cache; the result carries the cache delta.
    Fpe { columns: Vec<Column> },
    /// Round B — evaluate `prefix + candidates[k]` on the downstream
    /// learner for every `k`, warming the score cache. The prefix (the
    /// coordinator's current selected frame) ships once per shard; each
    /// evaluation frame is rebuilt worker-side with the same
    /// `with_extra_columns` construction the sequential search uses, so
    /// content-addressed fingerprints line up entry for entry.
    Eval {
        prefix: DataFrame,
        candidates: Vec<Column>,
    },
}

/// One unit of dispatch: shard `shard` of a dispatch round.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkShard {
    /// Coordinator slice counter (one slice per `Engine::step`).
    pub slice: u64,
    /// Dispatch round within the slice: 0 = FPE warm, 1 = eval warm.
    pub round: u32,
    /// Shard index within the round; results merge in ascending order.
    pub shard: u32,
    /// Ticket seed: `derive_seed(root, STREAM_WORKER, shard)`.
    pub seed: u64,
    /// The work itself.
    pub tasks: ShardTasks,
}

/// A worker's answer to one [`WorkShard`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ShardResult {
    /// Echo of the shard's slice counter.
    pub slice: u64,
    /// Echo of the dispatch round.
    pub round: u32,
    /// Echo of the shard index.
    pub shard: u32,
    /// Echo of the ticket seed.
    pub seed: u64,
    /// Downstream CV scores keyed by evaluation fingerprint (round B).
    pub scores: CacheSnapshot<f64>,
    /// MinHash signatures keyed by sketch fingerprint (round A).
    pub sigs: CacheSnapshot<Signature>,
    /// Microseconds the worker spent computing this shard.
    pub busy_us: u64,
}

impl ShardResult {
    /// Does this result answer `shard`? Used by the coordinator to
    /// discard stale or replayed results after a crash-reassignment.
    pub fn matches(&self, shard: &WorkShard) -> bool {
        self.slice == shard.slice
            && self.round == shard.round
            && self.shard == shard.shard
            && self.seed == shard.seed
    }
}

/// Protocol messages. A session is `Hello (Work Result)* Bye`: the
/// coordinator speaks `Hello`/`Work`/`Bye`, the worker answers every
/// `Work` with exactly one `Result`.
// `Hello` dwarfs the other variants, but a `Msg` only ever exists
// transiently on its way into/out of the codec — never in bulk storage —
// so boxing the engine would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Msg {
    /// Install the engine (method definition: config + gate, including
    /// any FPE model — the engine's process-local cache is not
    /// serialized). Sent once per session before any work.
    Hello { engine: Engine },
    /// Execute a shard.
    Work(WorkShard),
    /// Answer a shard.
    Result(ShardResult),
    /// Orderly shutdown; the worker's serve loop returns.
    Bye,
}

/// Encode a message to its JSON payload bytes (no length prefix).
pub fn encode(msg: &Msg) -> crate::Result<Vec<u8>> {
    let text = serde_json::to_string(&msg.to_value())
        .map_err(|e| crate::DistError::Codec(format!("{e}")))?;
    Ok(text.into_bytes())
}

/// Decode a message from its JSON payload bytes.
pub fn decode(payload: &[u8]) -> crate::Result<Msg> {
    let text = std::str::from_utf8(payload)
        .map_err(|e| crate::DistError::Codec(format!("frame is not UTF-8: {e}")))?;
    let value = serde_json::from_str(text).map_err(|e| crate::DistError::Codec(format!("{e}")))?;
    Msg::from_value(&value).map_err(|e| crate::DistError::Codec(format!("{e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::derive_seed;

    fn column(name: &str, values: Vec<f64>) -> Column {
        Column {
            name: name.into(),
            values,
        }
    }

    fn tiny_frame() -> DataFrame {
        DataFrame::new(
            "tiny",
            vec![column("x", vec![0.0, 1.0])],
            tabular::Label::Class {
                y: vec![0, 1],
                n_classes: 2,
            },
        )
        .unwrap()
    }

    #[test]
    fn work_shard_round_trips_through_the_codec() {
        let shard = WorkShard {
            slice: 3,
            round: 0,
            shard: 1,
            seed: derive_seed(41, STREAM_WORKER, 1),
            tasks: ShardTasks::Fpe {
                columns: vec![column("a*b", vec![1.5, -0.0, 2.25e-17])],
            },
        };
        let bytes = encode(&Msg::Work(shard.clone())).unwrap();
        let Msg::Work(back) = decode(&bytes).unwrap() else {
            panic!("decoded wrong variant");
        };
        assert_eq!(back.slice, shard.slice);
        assert_eq!(back.round, shard.round);
        assert_eq!(back.shard, shard.shard);
        assert_eq!(back.seed, shard.seed);
        let ShardTasks::Fpe { columns } = back.tasks else {
            panic!("decoded wrong tasks");
        };
        assert_eq!(columns[0].name, "a*b");
        // Bit-exact floats through the wire, including the sign of zero.
        for (a, b) in columns[0].values.iter().zip([1.5f64, -0.0, 2.25e-17]) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn result_ticket_matching_rejects_stale_results() {
        let shard = WorkShard {
            slice: 1,
            round: 1,
            shard: 0,
            seed: derive_seed(7, STREAM_WORKER, 0),
            tasks: ShardTasks::Eval {
                prefix: tiny_frame(),
                candidates: Vec::new(),
            },
        };
        let mut result = ShardResult {
            slice: 1,
            round: 1,
            shard: 0,
            seed: shard.seed,
            scores: CacheSnapshot::empty(),
            sigs: CacheSnapshot::empty(),
            busy_us: 12,
        };
        assert!(result.matches(&shard));
        result.seed ^= 1; // forged or stale ticket
        assert!(!result.matches(&shard));
        result.seed = shard.seed;
        result.slice = 2; // an earlier slice's replay
        assert!(!result.matches(&shard));
    }

    #[test]
    fn bye_and_result_round_trip() {
        let bytes = encode(&Msg::Bye).unwrap();
        assert!(matches!(decode(&bytes).unwrap(), Msg::Bye));

        let result = ShardResult {
            slice: 0,
            round: 1,
            shard: 2,
            seed: 9,
            scores: CacheSnapshot {
                entries: vec![(runtime::Fingerprint(42), 0.625f64)],
            },
            sigs: CacheSnapshot::empty(),
            busy_us: 100,
        };
        let bytes = encode(&Msg::Result(result)).unwrap();
        let Msg::Result(back) = decode(&bytes).unwrap() else {
            panic!("decoded wrong variant");
        };
        assert_eq!(
            back.scores.entries,
            vec![(runtime::Fingerprint(42), 0.625f64)]
        );
        assert_eq!(back.busy_us, 100);
    }
}
