//! Message transports: framed TCP and an in-process loopback pair.
//!
//! Every transport moves [`Msg`] values as length-prefixed frames — an
//! 8-byte little-endian payload length, then the JSON payload — and
//! counts the bytes it moves into `runtime::dist_counters` plus the
//! `dist.bytes_sent` / `dist.bytes_received` telemetry counters. The
//! loopback pair encodes and decodes the same real bytes TCP would, so
//! in-process tests exercise the codec and report true wire sizes.

use crate::protocol::{decode, encode, Msg};
use crate::{DistError, Result};
use runtime::dist_counters;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::mpsc;

/// Hard cap on a single frame's payload size (256 MiB). A peer
/// announcing a larger frame is treated as a protocol error rather than
/// an allocation request.
pub const MAX_FRAME_BYTES: usize = 256 << 20;

/// Frame header size: the 8-byte little-endian payload length.
const HEADER_BYTES: u64 = 8;

/// A bidirectional, blocking message channel to one peer.
///
/// `send` delivers one message or fails; `recv` blocks for the peer's
/// next message and fails on EOF. Any error means the connection is
/// unusable — the coordinator treats a failing worker transport as a
/// dead worker and reassigns its shard.
pub trait Transport: Send {
    /// Deliver one message to the peer.
    fn send(&mut self, msg: &Msg) -> Result<()>;
    /// Block for the peer's next message.
    fn recv(&mut self) -> Result<Msg>;
}

fn frame_bytes(msg: &Msg) -> Result<Vec<u8>> {
    let payload = encode(msg)?;
    if payload.len() > MAX_FRAME_BYTES {
        return Err(DistError::Codec(format!(
            "frame of {} bytes exceeds the {} byte cap",
            payload.len(),
            MAX_FRAME_BYTES
        )));
    }
    let mut framed = Vec::with_capacity(8 + payload.len());
    framed.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    framed.extend_from_slice(&payload);
    Ok(framed)
}

fn unframe(payload: Vec<u8>) -> Result<Msg> {
    let msg = decode(&payload)?;
    dist_counters::received(HEADER_BYTES + payload.len() as u64);
    telemetry::count("dist.bytes_received", HEADER_BYTES + payload.len() as u64);
    Ok(msg)
}

fn count_sent(framed_len: usize) {
    dist_counters::sent(framed_len as u64);
    telemetry::count("dist.bytes_sent", framed_len as u64);
}

/// Framed transport over a `std::net::TcpStream`.
#[derive(Debug)]
pub struct TcpTransport {
    stream: TcpStream,
}

impl TcpTransport {
    /// Connect to a listening peer (the worker side).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(TcpTransport { stream })
    }

    /// Wrap an accepted connection (the coordinator side).
    pub fn from_stream(stream: TcpStream) -> Self {
        stream.set_nodelay(true).ok();
        TcpTransport { stream }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, msg: &Msg) -> Result<()> {
        let framed = frame_bytes(msg)?;
        self.stream.write_all(&framed)?;
        self.stream.flush()?;
        count_sent(framed.len());
        Ok(())
    }

    fn recv(&mut self) -> Result<Msg> {
        let mut header = [0u8; 8];
        self.stream.read_exact(&mut header)?;
        let len = u64::from_le_bytes(header);
        if len as usize > MAX_FRAME_BYTES {
            return Err(DistError::Codec(format!(
                "peer announced a {len} byte frame (cap {MAX_FRAME_BYTES})"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.stream.read_exact(&mut payload)?;
        unframe(payload)
    }
}

/// In-process transport endpoint: frames cross an `mpsc` channel as the
/// same encoded bytes TCP would carry. Build pairs with
/// [`loopback_pair`]. A configurable send budget lets tests simulate a
/// worker process dying mid-protocol: once the budget is exhausted every
/// `send` fails, the owning serve loop exits, and the peer observes a
/// disconnected channel — exactly the failure surface a killed process
/// presents.
#[derive(Debug)]
pub struct LoopbackTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    sends_left: Option<usize>,
}

/// Create a connected pair of in-process endpoints.
pub fn loopback_pair() -> (LoopbackTransport, LoopbackTransport) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    (
        LoopbackTransport {
            tx: a_tx,
            rx: a_rx,
            sends_left: None,
        },
        LoopbackTransport {
            tx: b_tx,
            rx: b_rx,
            sends_left: None,
        },
    )
}

impl LoopbackTransport {
    /// Fail every `send` after the next `n` — the crash-simulation hook.
    pub fn set_send_budget(&mut self, n: usize) {
        self.sends_left = Some(n);
    }
}

impl Transport for LoopbackTransport {
    fn send(&mut self, msg: &Msg) -> Result<()> {
        if let Some(left) = self.sends_left.as_mut() {
            if *left == 0 {
                return Err(DistError::Io(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "send budget exhausted (simulated crash)",
                )));
            }
            *left -= 1;
        }
        let framed = frame_bytes(msg)?;
        let len = framed.len();
        self.tx.send(framed).map_err(|_| {
            DistError::Io(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "peer hung up",
            ))
        })?;
        count_sent(len);
        Ok(())
    }

    fn recv(&mut self) -> Result<Msg> {
        let mut framed = self.rx.recv().map_err(|_| {
            DistError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "peer hung up",
            ))
        })?;
        if framed.len() < 8 {
            return Err(DistError::Codec("short frame".into()));
        }
        let payload = framed.split_off(8);
        let len = u64::from_le_bytes(framed.as_slice().try_into().unwrap());
        if len as usize != payload.len() {
            return Err(DistError::Codec(format!(
                "frame header says {len} bytes, payload is {}",
                payload.len()
            )));
        }
        unframe(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_round_trips_and_counts_real_bytes() {
        let before = runtime::global_dist_stats();
        let (mut a, mut b) = loopback_pair();
        a.send(&Msg::Bye).unwrap();
        assert!(matches!(b.recv().unwrap(), Msg::Bye));
        let after = runtime::global_dist_stats();
        let moved = after.bytes_sent - before.bytes_sent;
        // "Bye" as JSON plus the 8-byte header.
        assert!(moved >= 8 + 2, "sent {moved} bytes");
        assert_eq!(
            after.bytes_received - before.bytes_received,
            moved,
            "received byte count must mirror sent"
        );
    }

    #[test]
    fn exhausted_send_budget_looks_like_a_dead_peer() {
        let (mut a, mut b) = loopback_pair();
        a.set_send_budget(1);
        a.send(&Msg::Bye).unwrap();
        assert!(a.send(&Msg::Bye).is_err(), "second send must fail");
        // The peer still sees the one delivered frame, then EOF once the
        // sender is dropped.
        assert!(matches!(b.recv().unwrap(), Msg::Bye));
        drop(a);
        assert!(b.recv().is_err(), "recv after peer death must error");
    }
}
