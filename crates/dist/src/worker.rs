//! The worker side: a serve loop that executes shards as pure functions.
//!
//! A worker holds no search state. `Hello` installs an engine (method
//! definition only — the worker builds its own private evaluator from
//! it), each `Work` shard is computed and answered with exactly one
//! `Result`, and `Bye` (or EOF) ends the session. Because every task is
//! a pure function of the shard contents and the engine definition,
//! re-executing a shard after a crash-reassignment produces identical
//! fingerprint-keyed entries — the property the coordinator's idempotent
//! merge leans on.

use crate::protocol::{Msg, ShardResult, ShardTasks, WorkShard};
use crate::transport::Transport;
use crate::{DistError, Result};
use eafe::{CachedEvaluator, Engine};
use runtime::CacheSnapshot;
use std::time::Instant;

/// Stateless worker entry point.
pub struct Worker;

/// Per-session state: the installed engine and its evaluator.
struct Session {
    engine: Engine,
    evaluator: CachedEvaluator,
}

impl Session {
    fn new(engine: Engine) -> Self {
        let evaluator = engine.evaluator();
        Session { engine, evaluator }
    }

    /// Execute one shard. Pure: the result depends only on the shard and
    /// the installed engine definition.
    fn execute(&mut self, shard: WorkShard) -> Result<ShardResult> {
        let _span = telemetry::span("dist.shard");
        let start = Instant::now();
        let mut scores = CacheSnapshot::empty();
        let mut sigs = CacheSnapshot::empty();
        match &shard.tasks {
            ShardTasks::Fpe { columns } => {
                // Score through the process-wide signature cache and ship
                // back the delta: everything touched since `baseline`,
                // which is a superset of the new sketches — harmless,
                // because the coordinator's merge is idempotent.
                let baseline = runtime::sig_cache_tick();
                for column in columns {
                    self.engine.fpe_score(&column.values)?;
                }
                sigs = runtime::sig_cache_snapshot_since(baseline);
            }
            ShardTasks::Eval { prefix, candidates } => {
                // Rebuild each evaluation frame exactly as the sequential
                // search does, so the content-addressed key matches the
                // one `Engine::step` will look up.
                let mut entries = Vec::with_capacity(candidates.len());
                for candidate in candidates {
                    let frame = prefix
                        .with_extra_columns(std::slice::from_ref(candidate))
                        .map_err(|e| DistError::Task(e.to_string()))?;
                    let key = self.evaluator.cache_key(&frame);
                    let score = self
                        .evaluator
                        .evaluate(&frame)
                        .map_err(|e| DistError::Task(e.to_string()))?;
                    entries.push((key, score));
                }
                // Snapshot contract: ascending fingerprint order, no
                // duplicates (repeat candidates evaluate to the same
                // score via the worker's own cache).
                entries.sort_by_key(|(key, _)| *key);
                entries.dedup_by_key(|(key, _)| *key);
                scores = CacheSnapshot { entries };
            }
        }
        telemetry::count("dist.shards_executed", 1);
        Ok(ShardResult {
            slice: shard.slice,
            round: shard.round,
            shard: shard.shard,
            seed: shard.seed,
            scores,
            sigs,
            busy_us: start.elapsed().as_micros() as u64,
        })
    }
}

impl Worker {
    /// Serve one coordinator session over `transport`: install the
    /// engine from `Hello`, answer every `Work` with a `Result`, return
    /// cleanly on `Bye` or EOF. Any transport or task error propagates —
    /// the caller (a worker process `main`, or a test thread) exits and
    /// the coordinator observes a dead peer.
    pub fn serve<T: Transport>(transport: &mut T) -> Result<()> {
        let mut session: Option<Session> = None;
        loop {
            let msg = match transport.recv() {
                Ok(msg) => msg,
                // A vanished coordinator is an orderly end of session
                // from the worker's point of view.
                Err(DistError::Io(_)) => return Ok(()),
                Err(e) => return Err(e),
            };
            match msg {
                Msg::Hello { engine } => session = Some(Session::new(engine)),
                Msg::Work(shard) => {
                    let session = session
                        .as_mut()
                        .ok_or_else(|| DistError::Protocol("Work before Hello".into()))?;
                    let result = session.execute(shard)?;
                    transport.send(&Msg::Result(result))?;
                }
                Msg::Bye => return Ok(()),
                Msg::Result(_) => {
                    return Err(DistError::Protocol("worker received a Result frame".into()))
                }
            }
        }
    }
}
