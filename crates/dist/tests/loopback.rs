//! In-process distribution determinism: a coordinator plus loopback
//! workers (real worker serve loops on threads, real encoded frames on
//! the wire) must reproduce a solo `Engine::run_full` **bitwise** — with
//! one worker, with several, and with a worker crashing mid-search.

use dist::{loopback_pair, Coordinator, LoopbackTransport, Worker};
use eafe::{bootstrap_fpe, EafeConfig, Engine, FpeSearchSpace, RunResult};
use minhash::HashFamily;
use runtime::fingerprint_frame;
use tabular::{DataFrame, SynthSpec, Task};

fn fast_config() -> EafeConfig {
    let mut cfg = EafeConfig::fast();
    cfg.stage1_epochs = 2;
    cfg.stage2_epochs = 3;
    cfg.steps_per_epoch = 3;
    cfg
}

fn frame() -> DataFrame {
    SynthSpec::new("dist-loop", 160, 5, Task::Classification)
        .with_seed(23)
        .generate()
        .unwrap()
}

fn fpe() -> eafe::FpeModel {
    let cfg = fast_config();
    let space = FpeSearchSpace {
        families: vec![HashFamily::Ccws],
        dims: vec![16],
        thre: 0.01,
        seed: 9,
    };
    bootstrap_fpe(4, 2, &space, &cfg.evaluator, 9).expect("FPE bootstrap")
}

/// Spawn a worker serve loop on a thread; ignore its exit status (a
/// simulated crash makes `serve` return an error by design).
fn spawn_worker(mut transport: LoopbackTransport) -> std::thread::JoinHandle<()> {
    std::thread::spawn(move || {
        let _ = Worker::serve(&mut transport);
    })
}

/// `n` connected loopback workers plus the coordinator-side transports.
fn worker_pool(n: usize) -> (Vec<LoopbackTransport>, Vec<std::thread::JoinHandle<()>>) {
    let mut coordinator_side = Vec::new();
    let mut handles = Vec::new();
    for _ in 0..n {
        let (ours, theirs) = loopback_pair();
        handles.push(spawn_worker(theirs));
        coordinator_side.push(ours);
    }
    (coordinator_side, handles)
}

fn assert_bit_identical(a: &RunResult, b: &RunResult, what: &str) {
    assert_eq!(
        a.base_score.to_bits(),
        b.base_score.to_bits(),
        "{what}: base"
    );
    assert_eq!(
        a.best_score.to_bits(),
        b.best_score.to_bits(),
        "{what}: best"
    );
    assert_eq!(a.downstream_evals, b.downstream_evals, "{what}: evals");
    assert_eq!(
        a.generated_features, b.generated_features,
        "{what}: generated"
    );
    assert_eq!(a.selected, b.selected, "{what}: selected features");
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
    for (x, y) in a.trace.iter().zip(&b.trace) {
        assert_eq!(x.score.to_bits(), y.score.to_bits(), "{what}: trace score");
    }
}

/// Solo vs distributed for one engine: identical `RunResult` and an
/// identical engineered frame fingerprint, at each worker count.
fn check_engine(make_engine: &dyn Fn() -> Engine, what: &str) {
    let frame = frame();
    let (solo, solo_frame) = make_engine().run_full(&frame).unwrap();
    let solo_fp = fingerprint_frame(&solo_frame);
    for n_workers in [1usize, 3] {
        let (transports, handles) = worker_pool(n_workers);
        let before = runtime::global_dist_stats();
        let mut coordinator = Coordinator::new(transports);
        let (result, engineered) = coordinator.run(&make_engine(), &frame).unwrap();
        let after = runtime::global_dist_stats();
        for h in handles {
            h.join().unwrap();
        }
        assert_bit_identical(&solo, &result, &format!("{what}, {n_workers} workers"));
        assert_eq!(
            solo_fp,
            fingerprint_frame(&engineered),
            "{what}, {n_workers} workers: engineered frame fingerprint"
        );
        assert!(
            after.shards_completed > before.shards_completed,
            "{what}, {n_workers} workers: workers must actually complete shards"
        );
        assert!(
            result.cache_hits > solo.cache_hits,
            "{what}, {n_workers} workers: warmed run must serve extra cache hits \
             (dist {} vs solo {})",
            result.cache_hits,
            solo.cache_hits
        );
    }
}

#[test]
fn nfs_distribution_is_bitwise_identical_to_solo() {
    check_engine(&|| Engine::nfs(fast_config()), "NFS");
}

#[test]
fn random_drop_distribution_is_bitwise_identical_to_solo() {
    check_engine(&|| Engine::e_afe_d(fast_config(), 0.4), "E-AFE_D");
}

#[test]
fn fpe_two_stage_distribution_is_bitwise_identical_to_solo() {
    check_engine(&|| Engine::e_afe(fast_config(), fpe()), "E-AFE");
}

#[test]
fn killed_worker_reassigns_its_shards_and_stays_bitwise() {
    let frame = frame();
    let (solo, solo_frame) = Engine::nfs(fast_config()).run_full(&frame).unwrap();

    // Three workers, one of which dies after a few sends: its serve loop
    // errors out mid-search and the coordinator must reassign the shard
    // to a survivor without disturbing the result.
    let mut transports = Vec::new();
    let mut handles = Vec::new();
    for budget in [Some(2usize), None, None] {
        let (ours, mut theirs) = loopback_pair();
        if let Some(n) = budget {
            theirs.set_send_budget(n);
        }
        handles.push(spawn_worker(theirs));
        transports.push(ours);
    }

    let before = runtime::global_dist_stats();
    let mut coordinator = Coordinator::new(transports);
    let (result, engineered) = coordinator
        .run(&Engine::nfs(fast_config()), &frame)
        .unwrap();
    let after = runtime::global_dist_stats();
    for h in handles {
        h.join().unwrap();
    }

    assert_bit_identical(&solo, &result, "killed worker");
    assert_eq!(
        fingerprint_frame(&solo_frame),
        fingerprint_frame(&engineered),
        "killed worker: engineered frame fingerprint"
    );
    assert!(
        after.shards_retried > before.shards_retried,
        "the dead worker's shard must be re-dispatched"
    );
    assert_eq!(
        coordinator.live_workers(),
        0,
        "shutdown drains every worker slot"
    );
}

#[test]
fn zero_workers_degrades_to_solo_search() {
    let frame = frame();
    let (solo, solo_frame) = Engine::nfs(fast_config()).run_full(&frame).unwrap();
    let mut coordinator: Coordinator<LoopbackTransport> = Coordinator::new(Vec::new());
    let (result, engineered) = coordinator
        .run(&Engine::nfs(fast_config()), &frame)
        .unwrap();
    assert_bit_identical(&solo, &result, "zero workers");
    assert_eq!(
        fingerprint_frame(&solo_frame),
        fingerprint_frame(&engineered)
    );
}
