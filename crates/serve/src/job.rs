//! Job identity, lifecycle states, and terminal outcomes.

use eafe::RunResult;
use serde::{Deserialize, Serialize};
use std::fmt;
use tabular::DataFrame;

/// Server-assigned job identifier, unique within one server lifetime
/// (and preserved across checkpoint/resume).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Where a job is in its lifecycle.
///
/// ```text
/// Queued → Active → {Completed, BudgetExhausted, Cancelled, Failed}
/// ```
///
/// `Queued → Cancelled` is also possible (cancelled before first slice).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum JobStatus {
    /// Admitted, waiting for an active-slot.
    Queued,
    /// In the scheduler rotation, receiving work slices.
    Active,
    /// The search ran to its natural end (all epochs or early stop).
    Completed,
    /// The budget ran out; the result is the best found within it.
    BudgetExhausted,
    /// Cancelled by the tenant; the result is the best found so far.
    Cancelled,
    /// The engine returned an error (see [`JobOutcome::error`]).
    Failed,
}

impl JobStatus {
    /// True for states a job never leaves.
    pub fn is_terminal(self) -> bool {
        !matches!(self, JobStatus::Queued | JobStatus::Active)
    }
}

/// The terminal report for a job. Even cancelled and budget-exhausted
/// jobs carry a result when at least one slice ran — the anytime
/// contract means "stopped early" still yields the best-so-far feature
/// set, not nothing.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job this outcome belongs to.
    pub id: JobId,
    /// The submitting tenant.
    pub tenant: String,
    /// Terminal status ([`JobStatus::is_terminal`] always true here).
    pub status: JobStatus,
    /// Scheduler slices the job received.
    pub epochs: usize,
    /// The instrumented run result (absent only when the job failed or
    /// was cancelled before its first slice).
    pub result: Option<RunResult>,
    /// The engineered frame: original features plus accepted generated
    /// features (present whenever `result` is).
    pub engineered: Option<DataFrame>,
    /// Engine error message when `status` is [`JobStatus::Failed`].
    pub error: Option<String>,
}

/// One message on a job's progress stream.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// A work slice finished; here is the (monotone) best-so-far report.
    Epoch(eafe::EpochReport),
    /// The job reached a terminal state; no further events follow.
    Done(Box<JobOutcome>),
}

/// Encode an [`eafe::EpochReport`] as a telemetry [`telemetry::Event`] —
/// the same JSON-lines wire format bench trace files use, so any
/// existing `Event::from_json` consumer can tail a job's progress feed.
///
/// The span is named `serve.epoch`; its numeric fields carry the budget
/// spend and best-so-far score, and each accepted feature appears as a
/// `feature:<expression>` field whose value is the feature's weight
/// (downstream score gain at acceptance).
pub fn progress_event(id: JobId, r: &eafe::EpochReport) -> telemetry::Event {
    let stage = match r.stage {
        eafe::SearchStage::Stage1 => 1.0,
        eafe::SearchStage::Seed => 1.5,
        eafe::SearchStage::Stage2 => 2.0,
    };
    let mut fields = vec![
        ("job".to_string(), id.0 as f64),
        ("stage".to_string(), stage),
        ("epoch".to_string(), r.epoch as f64),
        ("epochs_completed".to_string(), r.epochs_completed as f64),
        ("base_score".to_string(), r.base_score),
        ("best_score".to_string(), r.best_score),
        ("generated".to_string(), r.generated as f64),
        ("downstream_evals".to_string(), r.downstream_evals as f64),
        ("done".to_string(), if r.done { 1.0 } else { 0.0 }),
    ];
    for feat in &r.best_features {
        fields.push((format!("feature:{}", feat.name), feat.weight));
    }
    telemetry::Event::Span(telemetry::SpanEvent {
        name: "serve.epoch".to_string(),
        id: r.epochs_completed.max(1) as u64,
        parent: 0,
        start_us: 0,
        dur_us: (r.elapsed_secs * 1e6) as u64,
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_displays_and_round_trips() {
        let id = JobId(42);
        assert_eq!(id.to_string(), "job-42");
        let json = serde_json::to_string(&id).unwrap();
        let back: JobId = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
    }

    #[test]
    fn terminality_matches_the_lifecycle() {
        assert!(!JobStatus::Queued.is_terminal());
        assert!(!JobStatus::Active.is_terminal());
        for s in [
            JobStatus::Completed,
            JobStatus::BudgetExhausted,
            JobStatus::Cancelled,
            JobStatus::Failed,
        ] {
            assert!(s.is_terminal(), "{s:?}");
        }
    }
}
