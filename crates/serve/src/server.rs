//! The multi-tenant job server: admission, fair scheduling, cooperative
//! cancellation, and checkpoint/resume.
//!
//! One [`JobServer`] owns the shared compute substrate — the global
//! worker-thread budget, a process-shared content-addressed score cache,
//! and (implicitly) the process-global signature cache — and multiplexes
//! any number of tenant jobs over it. A single scheduler thread drains a
//! [`runtime::RoundRobin`] rotation of active jobs, running exactly one
//! epoch-granular engine slice per turn, so every tenant advances at the
//! same rate regardless of submission order. All blocking work happens
//! *outside* the server lock; the lock only guards job bookkeeping.
//!
//! ## Lifecycle
//!
//! `submit` → bounded queue (admission control) → promoted into the
//! rotation when an active slot frees up → sliced until the engine
//! finishes, the budget runs out, or the tenant cancels → terminal
//! [`JobOutcome`] delivered on the handle's event stream.
//!
//! ## Checkpoint format
//!
//! One JSON file per non-terminal job, `<dir>/job-<id>.json`, holding a
//! versioned [`Engine`] definition (config + gate; the process-local
//! cache handle is re-attached on resume), the [`Budget`], and either
//! the serialized search state (started jobs) or the submitted frame
//! (jobs that never got a slice). [`JobServer::resume`] re-admits every
//! checkpoint and deletes each file as its job reaches a terminal state.

use crate::budget::Budget;
use crate::error::{Result, ServeError};
use crate::job::{progress_event, JobEvent, JobId, JobOutcome, JobStatus};
use crate::metrics::{ServerMetrics, SliceSample, SloConfig};
use crate::status::{StatusServer, StatusSource};
use eafe::{Engine, EpochReport, SearchState};
use runtime::{CancelToken, RoundRobin, ScoreCache};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;
use tabular::DataFrame;
use telemetry::{CountEvent, Event, JsonLinesSink, Sink};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Maximum jobs in the scheduler rotation at once; further
    /// admissions wait in the queue.
    pub max_active: usize,
    /// Bound on the wait queue — submissions beyond it are rejected
    /// with [`ServeError::QueueFull`] (admission control).
    pub max_queued: usize,
    /// Pin the process-global worker-thread budget at startup
    /// (`None` leaves the current setting untouched).
    pub threads: Option<usize>,
    /// Where to write per-job checkpoints (shutdown persists every
    /// non-terminal job here; [`JobServer::resume`] reloads them).
    pub checkpoint_dir: Option<PathBuf>,
    /// Where to write per-job JSON-lines progress feeds
    /// (`<dir>/job-<id>.jsonl`, one telemetry `Event` per epoch,
    /// flushed per line so live tails never stall).
    pub feed_dir: Option<PathBuf>,
    /// Bind address for the HTTP introspection endpoint
    /// (`/metrics` + `/status`), e.g. `"127.0.0.1:0"`. `None` (the
    /// default) starts no listener — introspection is strictly opt-in.
    pub status_addr: Option<String>,
    /// Per-tenant latency objectives; breaches are counted in the
    /// tenant's metric scope and emitted as telemetry events.
    pub slo: SloConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_active: 4,
            max_queued: 64,
            threads: None,
            checkpoint_dir: None,
            feed_dir: None,
            status_addr: None,
            slo: SloConfig::default(),
        }
    }
}

/// Versioned on-disk form of one job.
#[derive(Serialize, Deserialize)]
struct JobCheckpoint {
    version: u32,
    id: u64,
    tenant: String,
    engine: Engine,
    budget: Budget,
    /// Search state for started jobs (owns its sanitized frame).
    state: Option<SearchState>,
    /// Submitted frame for jobs that never received a slice.
    frame: Option<DataFrame>,
}

const CHECKPOINT_VERSION: u32 = 1;

/// Cumulative figures from a job's most recent slice, kept for the
/// `/status` page and for per-slice counter deltas.
#[derive(Debug, Clone, Copy, Default)]
struct JobLast {
    epochs_completed: usize,
    base_score: f64,
    best_score: f64,
    downstream_evals: usize,
    elapsed_secs: f64,
}

struct Job {
    tenant: String,
    engine: Arc<Engine>,
    /// Submitted frame; taken by the first slice (the search state owns
    /// its own sanitized copy from then on).
    frame: Option<DataFrame>,
    budget: Budget,
    status: JobStatus,
    /// Present between slices once started; taken while a slice runs.
    state: Option<SearchState>,
    cancel: CancelToken,
    /// Dropped (set to `None`) at shutdown so blocked [`JobHandle::wait`]
    /// callers observe the disconnect instead of hanging forever.
    events: Option<Sender<JobEvent>>,
    feed: Option<Arc<JsonLinesSink>>,
    outcome: Option<Box<JobOutcome>>,
    /// When the job entered the queue (admission-wait accounting).
    submitted: Instant,
    /// Most recent slice report, for `/status` and counter deltas.
    last: Option<JobLast>,
}

struct Inner {
    jobs: HashMap<JobId, Job>,
    /// Active jobs, in fair rotation.
    rr: RoundRobin<JobId>,
    /// Admitted jobs waiting for an active slot.
    queued: VecDeque<JobId>,
    next_id: u64,
    /// Job currently being sliced (its `state` is taken).
    in_flight: Option<JobId>,
    /// Scheduler parked by `pause` (checkpointing needs a quiesced map).
    paused: bool,
    shutdown: bool,
}

struct Shared {
    inner: Mutex<Inner>,
    work: Condvar,
}

/// A long-lived, multi-tenant feature-engineering service over the
/// E-AFE engine. See the [module docs](self) for the architecture.
pub struct JobServer {
    shared: Arc<Shared>,
    cache: Arc<ScoreCache<f64>>,
    config: ServerConfig,
    metrics: Arc<ServerMetrics>,
    scheduler: Option<std::thread::JoinHandle<()>>,
    status: Option<StatusServer>,
}

/// A tenant's handle to one submitted job: live progress stream,
/// status queries, cooperative cancellation, and blocking wait.
///
/// Dropping the handle does not affect the job.
pub struct JobHandle {
    id: JobId,
    tenant: String,
    shared: Arc<Shared>,
    events: Receiver<JobEvent>,
    done: RefCell<Option<Box<JobOutcome>>>,
}

impl JobServer {
    /// Start a server (spawns the scheduler thread). If
    /// `config.threads` is set, the process-global worker-thread budget
    /// is pinned first so every job sees the same parallelism.
    pub fn new(config: ServerConfig) -> Result<JobServer> {
        if let Some(n) = config.threads {
            runtime::set_global_threads(n);
        }
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                rr: RoundRobin::new(),
                queued: VecDeque::new(),
                next_id: 1,
                in_flight: None,
                paused: false,
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let cache = Arc::new(ScoreCache::new(runtime::evaluator::DEFAULT_CACHE_CAPACITY));
        let metrics = Arc::new(ServerMetrics::new(config.slo));
        let scheduler = {
            let shared = Arc::clone(&shared);
            let max_active = config.max_active.max(1);
            let checkpoint_dir = config.checkpoint_dir.clone();
            let metrics = Arc::clone(&metrics);
            let cache = Arc::clone(&cache);
            std::thread::Builder::new()
                .name("serve-scheduler".to_string())
                .spawn(move || scheduler_loop(shared, max_active, checkpoint_dir, metrics, cache))?
        };
        let status = match &config.status_addr {
            Some(addr) => Some(StatusServer::start(
                addr,
                Arc::new(Introspection {
                    shared: Arc::clone(&shared),
                    metrics: Arc::clone(&metrics),
                    cache: Arc::clone(&cache),
                }),
            )?),
            None => None,
        };
        Ok(JobServer {
            shared,
            cache,
            config,
            metrics,
            scheduler: Some(scheduler),
            status,
        })
    }

    /// Start a server and re-admit every job checkpointed in
    /// `config.checkpoint_dir` (required), re-attaching the new server's
    /// shared score cache. Returns fresh handles, ordered by job id; job
    /// ids are preserved across the restart.
    pub fn resume(config: ServerConfig) -> Result<(JobServer, Vec<JobHandle>)> {
        let dir = config
            .checkpoint_dir
            .clone()
            .ok_or(ServeError::NoCheckpointDir)?;
        let server = JobServer::new(config)?;
        let mut checkpoints: Vec<JobCheckpoint> = Vec::new();
        if dir.is_dir() {
            for entry in std::fs::read_dir(&dir)? {
                let path = entry?.path();
                if path.extension().and_then(|e| e.to_str()) != Some("json") {
                    continue;
                }
                let text = std::fs::read_to_string(&path)?;
                let cp: JobCheckpoint = serde_json::from_str(&text)
                    .map_err(|e| ServeError::Corrupt(format!("{}: {e}", path.display())))?;
                if cp.version != CHECKPOINT_VERSION {
                    return Err(ServeError::Corrupt(format!(
                        "{}: unsupported checkpoint version {}",
                        path.display(),
                        cp.version
                    )));
                }
                checkpoints.push(cp);
            }
        }
        // Deterministic re-admission order regardless of directory order.
        checkpoints.sort_by_key(|cp| cp.id);
        let mut handles = Vec::with_capacity(checkpoints.len());
        for cp in checkpoints {
            let id = JobId(cp.id);
            let engine = Arc::new(cp.engine.with_cache(Arc::clone(&server.cache)));
            let feed = server.make_feed(id)?;
            let (tx, rx) = mpsc::channel();
            let mut inner = server.shared.inner.lock().unwrap();
            inner.next_id = inner.next_id.max(cp.id + 1);
            inner.jobs.insert(
                id,
                Job {
                    tenant: cp.tenant.clone(),
                    engine,
                    frame: cp.frame,
                    budget: cp.budget,
                    status: JobStatus::Queued,
                    state: cp.state,
                    cancel: CancelToken::new(),
                    events: Some(tx),
                    feed,
                    outcome: None,
                    submitted: Instant::now(),
                    last: None,
                },
            );
            inner.queued.push_back(id);
            drop(inner);
            handles.push(JobHandle {
                id,
                tenant: cp.tenant,
                shared: Arc::clone(&server.shared),
                events: rx,
                done: RefCell::new(None),
            });
        }
        server.shared.work.notify_all();
        Ok((server, handles))
    }

    fn make_feed(&self, id: JobId) -> Result<Option<Arc<JsonLinesSink>>> {
        match &self.config.feed_dir {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let sink = JsonLinesSink::create(&dir.join(format!("{id}.jsonl")))?;
                Ok(Some(Arc::new(sink)))
            }
            None => Ok(None),
        }
    }

    /// Submit a job: run `engine` on `frame` under `budget` for
    /// `tenant`. The engine is attached to the server's shared score
    /// cache (identical evaluations across tenants are computed once —
    /// scores are content-addressed, so sharing never changes results).
    ///
    /// Admission control: the wait queue is bounded by
    /// [`ServerConfig::max_queued`]; a full queue rejects the submission
    /// immediately rather than blocking the caller.
    pub fn submit(
        &self,
        tenant: &str,
        frame: &DataFrame,
        engine: Engine,
        budget: Budget,
    ) -> Result<JobHandle> {
        let engine = Arc::new(engine.with_cache(Arc::clone(&self.cache)));
        let (tx, rx) = mpsc::channel();
        let id = {
            let mut inner = self.shared.inner.lock().unwrap();
            if inner.shutdown {
                return Err(ServeError::ServerStopped);
            }
            if inner.queued.len() >= self.config.max_queued {
                return Err(ServeError::QueueFull {
                    capacity: self.config.max_queued,
                });
            }
            let id = JobId(inner.next_id);
            inner.next_id += 1;
            id
        };
        let feed = self.make_feed(id)?;
        {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.jobs.insert(
                id,
                Job {
                    tenant: tenant.to_string(),
                    engine,
                    frame: Some(frame.clone()),
                    budget,
                    status: JobStatus::Queued,
                    state: None,
                    cancel: CancelToken::new(),
                    events: Some(tx),
                    feed,
                    outcome: None,
                    submitted: Instant::now(),
                    last: None,
                },
            );
            inner.queued.push_back(id);
        }
        self.shared.work.notify_all();
        telemetry::count("serve.submitted", 1);
        Ok(JobHandle {
            id,
            tenant: tenant.to_string(),
            shared: Arc::clone(&self.shared),
            events: rx,
            done: RefCell::new(None),
        })
    }

    /// Current status of a job.
    pub fn status(&self, id: JobId) -> Result<JobStatus> {
        let inner = self.shared.inner.lock().unwrap();
        inner
            .jobs
            .get(&id)
            .map(|j| j.status)
            .ok_or(ServeError::UnknownJob(id))
    }

    /// Request cooperative cancellation of a job. The job stops at the
    /// next epoch boundary: at most the slice already in flight
    /// completes, and its best-so-far result is preserved in the
    /// terminal [`JobOutcome`].
    pub fn cancel(&self, id: JobId) -> Result<()> {
        let inner = self.shared.inner.lock().unwrap();
        let job = inner.jobs.get(&id).ok_or(ServeError::UnknownJob(id))?;
        job.cancel.cancel();
        drop(inner);
        self.shared.work.notify_all();
        Ok(())
    }

    /// Park the scheduler at the next epoch boundary and return once no
    /// slice is in flight. While paused, job state is fully materialized
    /// in the server (nothing is mid-step), so progress streams are
    /// complete and checkpoints are consistent.
    pub fn pause(&self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.paused = true;
        self.shared.work.notify_all();
        while inner.in_flight.is_some() {
            inner = self.shared.work.wait(inner).unwrap();
        }
    }

    /// Resume scheduling after [`JobServer::pause`].
    pub fn unpause(&self) {
        let mut inner = self.shared.inner.lock().unwrap();
        inner.paused = false;
        drop(inner);
        self.shared.work.notify_all();
    }

    /// Checkpoint every non-terminal job to the configured checkpoint
    /// directory (pausing the scheduler for a consistent snapshot) and
    /// return how many were written.
    pub fn checkpoint_all(&self) -> Result<usize> {
        let dir = self
            .config
            .checkpoint_dir
            .clone()
            .ok_or(ServeError::NoCheckpointDir)?;
        std::fs::create_dir_all(&dir)?;
        let was_running = {
            let inner = self.shared.inner.lock().unwrap();
            !inner.shutdown
        };
        if was_running {
            self.pause();
        }
        let result = self.write_checkpoints(&dir);
        if was_running {
            self.unpause();
        }
        result
    }

    fn write_checkpoints(&self, dir: &std::path::Path) -> Result<usize> {
        let inner = self.shared.inner.lock().unwrap();
        let mut written = 0;
        for (id, job) in &inner.jobs {
            if job.status.is_terminal() {
                continue;
            }
            let cp = JobCheckpoint {
                version: CHECKPOINT_VERSION,
                id: id.0,
                tenant: job.tenant.clone(),
                engine: (*job.engine).clone(),
                budget: job.budget,
                state: job.state.clone(),
                frame: job.frame.clone(),
            };
            let text = serde_json::to_string(&cp)
                .map_err(|e| ServeError::Corrupt(format!("serialize {id}: {e}")))?;
            std::fs::write(dir.join(format!("{id}.json")), text)?;
            written += 1;
        }
        Ok(written)
    }

    /// Stop the scheduler (the in-flight slice, if any, completes) and
    /// persist every non-terminal job to the checkpoint directory when
    /// one is configured. Returns how many jobs were checkpointed.
    /// After shutdown the server accepts no new submissions.
    pub fn shutdown(&mut self) -> Result<usize> {
        if let Some(mut status) = self.status.take() {
            status.stop();
        }
        {
            let mut inner = self.shared.inner.lock().unwrap();
            inner.shutdown = true;
        }
        self.shared.work.notify_all();
        if let Some(handle) = self.scheduler.take() {
            let _ = handle.join();
        }
        let written = match &self.config.checkpoint_dir {
            Some(dir) => {
                let dir = dir.clone();
                std::fs::create_dir_all(&dir)?;
                self.write_checkpoints(&dir)
            }
            None => Ok(0),
        };
        // Disconnect every event stream so handles blocked in `wait` or
        // `next_event` wake up instead of hanging on a dead server
        // (terminal outcomes already committed to the map stay readable).
        let mut inner = self.shared.inner.lock().unwrap();
        for job in inner.jobs.values_mut() {
            job.events = None;
        }
        written
    }

    /// The server-wide shared score cache (content-addressed; handed to
    /// every submitted engine).
    pub fn score_cache(&self) -> &Arc<ScoreCache<f64>> {
        &self.cache
    }

    /// Number of jobs the server knows about (any status).
    pub fn n_jobs(&self) -> usize {
        self.shared.inner.lock().unwrap().jobs.len()
    }

    /// The server's per-tenant scoped metrics and time series.
    pub fn metrics(&self) -> &Arc<ServerMetrics> {
        &self.metrics
    }

    /// The bound address of the HTTP introspection endpoint, when
    /// [`ServerConfig::status_addr`] was set (resolves port 0).
    pub fn status_addr(&self) -> Option<std::net::SocketAddr> {
        self.status.as_ref().map(|s| s.addr())
    }
}

/// The [`StatusSource`] behind the server's introspection endpoint:
/// snapshots the job map, scoped metrics, pool budget, and score cache
/// under short-lived locks.
struct Introspection {
    shared: Arc<Shared>,
    metrics: Arc<ServerMetrics>,
    cache: Arc<ScoreCache<f64>>,
}

impl Introspection {
    fn jobs_value(&self) -> serde::Value {
        let inner = self.shared.inner.lock().unwrap();
        let mut ids: Vec<JobId> = inner.jobs.keys().copied().collect();
        ids.sort();
        let jobs = ids
            .iter()
            .map(|id| {
                let job = &inner.jobs[id];
                let last = job.last.unwrap_or_default();
                serde::Value::Map(vec![
                    ("id".to_string(), serde::Value::Str(id.to_string())),
                    ("tenant".to_string(), serde::Value::Str(job.tenant.clone())),
                    (
                        "status".to_string(),
                        serde::Value::Str(format!("{:?}", job.status)),
                    ),
                    (
                        "epochs_completed".to_string(),
                        serde::Value::U64(last.epochs_completed as u64),
                    ),
                    ("base_score".to_string(), serde::Value::F64(last.base_score)),
                    ("best_score".to_string(), serde::Value::F64(last.best_score)),
                    (
                        "downstream_evals".to_string(),
                        serde::Value::U64(last.downstream_evals as u64),
                    ),
                    (
                        "elapsed_secs".to_string(),
                        serde::Value::F64(last.elapsed_secs),
                    ),
                    (
                        "budget_remaining".to_string(),
                        serde::Value::F64(job.budget.remaining_fraction(
                            last.epochs_completed,
                            last.downstream_evals,
                            last.elapsed_secs,
                        )),
                    ),
                ])
            })
            .collect();
        serde::Value::Array(jobs)
    }

    fn queue_value(&self) -> (u64, u64) {
        let inner = self.shared.inner.lock().unwrap();
        (inner.queued.len() as u64, inner.rr.len() as u64)
    }

    fn cache_value(&self) -> serde::Value {
        let agg = self.cache.stats();
        let shards = self
            .cache
            .shard_stats()
            .into_iter()
            .map(|s| {
                serde::Value::Map(vec![
                    ("hits".to_string(), serde::Value::U64(s.hits)),
                    ("misses".to_string(), serde::Value::U64(s.misses)),
                    ("inserts".to_string(), serde::Value::U64(s.inserts)),
                    ("evictions".to_string(), serde::Value::U64(s.evictions)),
                    ("len".to_string(), serde::Value::U64(s.len as u64)),
                ])
            })
            .collect();
        serde::Value::Map(vec![
            ("hits".to_string(), serde::Value::U64(agg.hits)),
            ("misses".to_string(), serde::Value::U64(agg.misses)),
            ("hit_rate".to_string(), serde::Value::F64(agg.hit_rate())),
            ("len".to_string(), serde::Value::U64(agg.len as u64)),
            (
                "capacity".to_string(),
                serde::Value::U64(agg.capacity as u64),
            ),
            ("shards".to_string(), serde::Value::Array(shards)),
        ])
    }

    /// Process-wide chunked-frame residency and spill traffic (the
    /// out-of-core data layer's working-set gauges), so an operator can
    /// see budget pressure per scrape without attaching to any job.
    fn frame_value(&self) -> serde::Value {
        let f = tabular::global_frame_stats();
        serde::Value::Map(vec![
            (
                "chunks_resident".to_string(),
                serde::Value::U64(f.chunks_resident),
            ),
            (
                "resident_bytes".to_string(),
                serde::Value::U64(f.resident_bytes),
            ),
            (
                "chunks_spilled".to_string(),
                serde::Value::U64(f.chunks_spilled),
            ),
            (
                "chunks_evicted".to_string(),
                serde::Value::U64(f.chunks_evicted),
            ),
            (
                "chunks_loaded".to_string(),
                serde::Value::U64(f.chunks_loaded),
            ),
            (
                "chunks_decoded".to_string(),
                serde::Value::U64(f.chunks_decoded),
            ),
        ])
    }

    /// Process-wide distributed-search activity (the `dist` crate's
    /// coordinator counters): shard flow, bytes on the wire, merge
    /// traffic, and coordinator-side overhead. All zero unless a
    /// coordinator runs in this process.
    fn dist_value(&self) -> serde::Value {
        let d = runtime::global_dist_stats();
        serde::Value::Map(vec![
            (
                "workers_live".to_string(),
                serde::Value::U64(d.workers_live),
            ),
            (
                "shards_dispatched".to_string(),
                serde::Value::U64(d.shards_dispatched),
            ),
            (
                "shards_completed".to_string(),
                serde::Value::U64(d.shards_completed),
            ),
            (
                "shards_retried".to_string(),
                serde::Value::U64(d.shards_retried),
            ),
            ("bytes_sent".to_string(), serde::Value::U64(d.bytes_sent)),
            (
                "bytes_received".to_string(),
                serde::Value::U64(d.bytes_received),
            ),
            (
                "entries_merged".to_string(),
                serde::Value::U64(d.entries_merged),
            ),
            (
                "entries_fresh".to_string(),
                serde::Value::U64(d.entries_fresh),
            ),
            ("wire_us".to_string(), serde::Value::U64(d.wire_us)),
        ])
    }

    fn series_value(&self) -> serde::Value {
        let series = self
            .metrics
            .series()
            .snapshot()
            .into_iter()
            .map(|(name, points)| {
                let points = points
                    .into_iter()
                    .map(|p| {
                        serde::Value::Map(vec![
                            ("tick".to_string(), serde::Value::U64(p.tick)),
                            ("value".to_string(), serde::Value::F64(p.value)),
                        ])
                    })
                    .collect();
                (name, serde::Value::Array(points))
            })
            .collect();
        serde::Value::Map(series)
    }
}

impl StatusSource for Introspection {
    fn status_json(&self) -> String {
        let (queue_depth, active) = self.queue_value();
        let pool = runtime::pool_stats();
        let doc = serde::Value::Map(vec![
            ("jobs".to_string(), self.jobs_value()),
            ("queue_depth".to_string(), serde::Value::U64(queue_depth)),
            ("active".to_string(), serde::Value::U64(active)),
            (
                "pool".to_string(),
                serde::Value::Map(vec![
                    (
                        "threads".to_string(),
                        serde::Value::U64(pool.threads as u64),
                    ),
                    (
                        "active_extra".to_string(),
                        serde::Value::U64(pool.active_extra as u64),
                    ),
                ]),
            ),
            ("cache".to_string(), self.cache_value()),
            ("frame".to_string(), self.frame_value()),
            ("dist".to_string(), self.dist_value()),
            ("series".to_string(), self.series_value()),
        ]);
        serde_json::to_string(&doc).unwrap_or_else(|_| "{}".to_string())
    }

    fn metrics_text(&self) -> String {
        let mut out = self.metrics.snapshot().to_prometheus();
        // Chunked-frame gauges are process-global (they aggregate over every
        // live frame, across tenants), so they are appended directly rather
        // than routed through the per-tenant scoped registry.
        let f = tabular::global_frame_stats();
        for (name, kind, value) in [
            ("frame_chunks_resident", "gauge", f.chunks_resident),
            ("frame_resident_bytes", "gauge", f.resident_bytes),
            ("frame_chunks_spilled", "counter", f.chunks_spilled),
            ("frame_chunks_evicted", "counter", f.chunks_evicted),
            ("frame_chunks_loaded", "counter", f.chunks_loaded),
            ("frame_chunks_decoded", "counter", f.chunks_decoded),
        ] {
            out.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
        }
        // Distributed-search counters are likewise process-global: one
        // coordinator per process, counters shared across its runs.
        let d = runtime::global_dist_stats();
        for (name, kind, value) in [
            ("dist_workers_live", "gauge", d.workers_live),
            ("dist_shards_dispatched", "counter", d.shards_dispatched),
            ("dist_shards_completed", "counter", d.shards_completed),
            ("dist_shards_retried", "counter", d.shards_retried),
            ("dist_bytes_sent", "counter", d.bytes_sent),
            ("dist_bytes_received", "counter", d.bytes_received),
            ("dist_entries_merged", "counter", d.entries_merged),
            ("dist_entries_fresh", "counter", d.entries_fresh),
            ("dist_wire_us", "counter", d.wire_us),
        ] {
            out.push_str(&format!("# TYPE {name} {kind}\n{name} {value}\n"));
        }
        out
    }
}

impl Drop for JobServer {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

impl std::fmt::Debug for JobHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobHandle")
            .field("id", &self.id)
            .field("tenant", &self.tenant)
            .finish_non_exhaustive()
    }
}

impl JobHandle {
    /// The server-assigned job id.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The tenant this job was submitted for.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Current job status.
    pub fn status(&self) -> Result<JobStatus> {
        let inner = self.shared.inner.lock().unwrap();
        inner
            .jobs
            .get(&self.id)
            .map(|j| j.status)
            .ok_or(ServeError::UnknownJob(self.id))
    }

    /// Request cooperative cancellation (see [`JobServer::cancel`]).
    pub fn cancel(&self) -> Result<()> {
        let inner = self.shared.inner.lock().unwrap();
        let job = inner
            .jobs
            .get(&self.id)
            .ok_or(ServeError::UnknownJob(self.id))?;
        job.cancel.cancel();
        drop(inner);
        self.shared.work.notify_all();
        Ok(())
    }

    /// Drain every progress report currently pending on the stream
    /// (non-blocking). A terminal event encountered while draining is
    /// retained for [`JobHandle::wait`].
    pub fn progress(&self) -> Vec<EpochReport> {
        let mut out = Vec::new();
        while let Ok(ev) = self.events.try_recv() {
            match ev {
                JobEvent::Epoch(r) => out.push(r),
                JobEvent::Done(o) => {
                    *self.done.borrow_mut() = Some(o);
                }
            }
        }
        out
    }

    /// Block for the next event on the stream; `None` once the stream is
    /// finished (terminal event already delivered, or the server went
    /// away).
    pub fn next_event(&self) -> Option<JobEvent> {
        if self.done.borrow().is_some() {
            return None;
        }
        match self.events.recv() {
            Ok(JobEvent::Done(o)) => {
                *self.done.borrow_mut() = Some(o.clone());
                Some(JobEvent::Done(o))
            }
            Ok(ev) => Some(ev),
            Err(_) => None,
        }
    }

    /// Block until the job reaches a terminal state and return its
    /// outcome (pending progress events are drained and discarded; use
    /// [`JobHandle::next_event`] to observe them).
    pub fn wait(&self) -> Result<JobOutcome> {
        if let Some(done) = self.done.borrow().as_deref() {
            return Ok(done.clone());
        }
        loop {
            match self.events.recv() {
                Ok(JobEvent::Epoch(_)) => continue,
                Ok(JobEvent::Done(o)) => {
                    let out = (*o).clone();
                    *self.done.borrow_mut() = Some(o);
                    return Ok(out);
                }
                // Sender gone without a terminal event: the server was
                // dropped mid-run. Surface whatever the map still says.
                Err(_) => {
                    let inner = self.shared.inner.lock().unwrap();
                    return match inner.jobs.get(&self.id).and_then(|j| j.outcome.clone()) {
                        Some(o) => Ok(*o),
                        None => Err(ServeError::ServerStopped),
                    };
                }
            }
        }
    }
}

/// Everything a slice needs, moved out of the lock.
struct Slice {
    id: JobId,
    tenant: String,
    engine: Arc<Engine>,
    state: Option<SearchState>,
    frame: Option<DataFrame>,
    budget: Budget,
    cancel: CancelToken,
    events: Sender<JobEvent>,
    feed: Option<Arc<JsonLinesSink>>,
}

/// What became of a slice.
enum SliceEnd {
    /// Put the state back; the job stays in the rotation.
    Continue(Box<SearchState>),
    /// The job is finished (one way or another).
    Terminal(Box<JobOutcome>),
}

fn scheduler_loop(
    shared: Arc<Shared>,
    max_active: usize,
    checkpoint_dir: Option<PathBuf>,
    metrics: Arc<ServerMetrics>,
    cache: Arc<ScoreCache<f64>>,
) {
    loop {
        // Admission waits observed by `promote` under the lock, recorded
        // into metric scopes after it is released.
        let mut admission_waits: Vec<(String, u64)> = Vec::new();
        let slice = {
            let mut inner = shared.inner.lock().unwrap();
            loop {
                if inner.shutdown {
                    return;
                }
                if !inner.paused {
                    promote(&mut inner, max_active, &mut admission_waits);
                    if let Some(id) = inner.rr.pick() {
                        inner.in_flight = Some(id);
                        let job = inner.jobs.get_mut(&id).expect("job in rotation");
                        break Slice {
                            id,
                            tenant: job.tenant.clone(),
                            engine: Arc::clone(&job.engine),
                            state: job.state.take(),
                            frame: job.frame.take(),
                            budget: job.budget,
                            cancel: job.cancel.clone(),
                            // Senders are only dropped at shutdown, and
                            // the scheduler stops picking first.
                            events: job.events.clone().expect("running job has a sender"),
                            feed: job.feed.clone(),
                        };
                    }
                }
                inner = shared.work.wait(inner).unwrap();
            }
        };
        for (tenant, wait_us) in admission_waits.drain(..) {
            metrics.record_admission_wait(&tenant, wait_us);
        }

        let id = slice.id;
        let tenant = slice.tenant.clone();
        let budget = slice.budget;
        let events = slice.events.clone();
        let feed = slice.feed.clone();
        let slice_start = Instant::now();
        let (end, report) = run_slice(slice);
        let epoch_us = slice_start.elapsed().as_micros() as u64;

        let (terminal_outcome, evals_delta) = {
            let mut inner = shared.inner.lock().unwrap();
            inner.in_flight = None;
            let evals_delta = match (&report, inner.jobs.get_mut(&id)) {
                (Some(r), Some(job)) => {
                    let prev = job.last.map_or(0, |l| l.downstream_evals);
                    job.last = Some(JobLast {
                        epochs_completed: r.epochs_completed,
                        base_score: r.base_score,
                        best_score: r.best_score,
                        downstream_evals: r.downstream_evals,
                        elapsed_secs: r.elapsed_secs,
                    });
                    (r.downstream_evals.saturating_sub(prev)) as u64
                }
                _ => 0,
            };
            let outcome = match end {
                SliceEnd::Continue(state) => {
                    if let Some(job) = inner.jobs.get_mut(&id) {
                        job.state = Some(*state);
                    }
                    None
                }
                SliceEnd::Terminal(outcome) => {
                    inner.rr.remove(&id);
                    if let Some(job) = inner.jobs.get_mut(&id) {
                        job.status = outcome.status;
                        job.outcome = Some(outcome.clone());
                        job.state = None;
                        job.frame = None;
                    }
                    Some(outcome)
                }
            };
            shared.work.notify_all();
            (outcome, evals_delta)
        };

        if let Some(r) = &report {
            metrics.record_slice(&SliceSample {
                id,
                tenant: &tenant,
                epoch_us,
                report: r,
                budget,
                evals_delta,
                cache_hit_rate: cache.stats().hit_rate(),
            });
        }

        if let Some(outcome) = terminal_outcome {
            if let Some(dir) = &checkpoint_dir {
                let _ = std::fs::remove_file(dir.join(format!("{id}.json")));
            }
            if let Some(feed) = &feed {
                feed.record(&Event::Count(CountEvent {
                    name: format!("serve.done.{:?}", outcome.status),
                    value: outcome.epochs as u64,
                }));
                feed.flush();
            }
            telemetry::count("serve.finished", 1);
            let _ = events.send(JobEvent::Done(outcome));
        }
    }
}

fn promote(inner: &mut Inner, max_active: usize, admission_waits: &mut Vec<(String, u64)>) {
    while inner.rr.len() < max_active {
        match inner.queued.pop_front() {
            Some(id) => {
                if let Some(job) = inner.jobs.get_mut(&id) {
                    job.status = JobStatus::Active;
                    admission_waits.push((
                        job.tenant.clone(),
                        job.submitted.elapsed().as_micros() as u64,
                    ));
                    inner.rr.admit(id);
                }
            }
            None => break,
        }
    }
}

/// Run one slice for a job, outside the server lock. Sends the epoch
/// report on the job's stream and feed; terminal outcomes are returned
/// for the scheduler to commit (the Done event is sent after commit, so
/// a waiter never observes a terminal event before the server map does).
/// The report the slice produced (if the engine stepped at all) rides
/// along for the scheduler's metrics commit.
fn run_slice(slice: Slice) -> (SliceEnd, Option<Box<EpochReport>>) {
    let Slice {
        id,
        tenant,
        engine,
        state,
        frame,
        budget,
        cancel,
        events,
        feed,
    } = slice;
    // Route engine telemetry emitted during this slice to this job's
    // label, for hosts that installed a `telemetry::RouterSink`.
    let label = id.to_string();
    let _route = telemetry::route(&label);

    let finalize = |status: JobStatus, state: Option<SearchState>, error: Option<String>| {
        let (result, engineered) = match &state {
            Some(s) => match engine.finish(s) {
                Ok((r, f)) => (Some(r), Some(f)),
                Err(_) => (None, None),
            },
            None => (None, None),
        };
        SliceEnd::Terminal(Box::new(JobOutcome {
            id,
            tenant: tenant.clone(),
            status,
            epochs: state.as_ref().map_or(0, |s| s.epochs_completed()),
            result,
            engineered,
            error,
        }))
    };

    if cancel.is_cancelled() {
        return (finalize(JobStatus::Cancelled, state, None), None);
    }

    let mut state = match state {
        Some(s) => s,
        None => {
            let frame = match frame {
                Some(f) => f,
                None => {
                    return (
                        finalize(
                            JobStatus::Failed,
                            None,
                            Some("job has neither state nor frame".to_string()),
                        ),
                        None,
                    )
                }
            };
            match engine.start(&frame) {
                Ok(s) => s,
                Err(e) => return (finalize(JobStatus::Failed, None, Some(e.to_string())), None),
            }
        }
    };

    // A restored (or freshly started) job may already be over budget —
    // never run a slice the budget doesn't cover.
    if budget.exhausted(
        state.epochs_completed(),
        state.downstream_evals(),
        state.elapsed_secs(),
    ) {
        return (
            finalize(JobStatus::BudgetExhausted, Some(state), None),
            None,
        );
    }

    let report = {
        let mut span = telemetry::span("serve.slice");
        span.field("job", id.0 as f64);
        match engine.step(&mut state) {
            Ok(r) => r,
            Err(e) => {
                return (
                    finalize(JobStatus::Failed, Some(state), Some(e.to_string())),
                    None,
                )
            }
        }
    };
    if let Some(feed) = &feed {
        feed.record(&progress_event(id, &report));
    }
    let _ = events.send(JobEvent::Epoch(report.clone()));

    let end = if report.done {
        finalize(JobStatus::Completed, Some(state), None)
    } else if budget.exhausted(
        report.epochs_completed,
        report.downstream_evals,
        report.elapsed_secs,
    ) {
        finalize(JobStatus::BudgetExhausted, Some(state), None)
    } else {
        SliceEnd::Continue(Box::new(state))
    };
    (end, Some(Box::new(report)))
}
