//! Error type for the serving layer.

use crate::job::JobId;
use std::fmt;

/// Anything the serving layer can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// Admission control rejected the submission: the wait queue is full.
    QueueFull {
        /// The configured queue capacity that was hit.
        capacity: usize,
    },
    /// The server has been shut down (or dropped) and accepts no work.
    ServerStopped,
    /// No job with this id exists on the server.
    UnknownJob(JobId),
    /// A checkpoint operation was requested but the server has no
    /// checkpoint directory configured.
    NoCheckpointDir,
    /// The underlying engine failed.
    Engine(eafe::EafeError),
    /// Filesystem I/O failed (checkpoint write/read, feed creation).
    Io(std::io::Error),
    /// A checkpoint file exists but cannot be understood.
    Corrupt(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity})")
            }
            ServeError::ServerStopped => write!(f, "server stopped"),
            ServeError::UnknownJob(id) => write!(f, "unknown job {id}"),
            ServeError::NoCheckpointDir => write!(f, "no checkpoint directory configured"),
            ServeError::Engine(e) => write!(f, "engine error: {e}"),
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<eafe::EafeError> for ServeError {
    fn from(e: eafe::EafeError) -> Self {
        ServeError::Engine(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Serving-layer result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
