//! Per-tenant scoped metrics, epoch-boundary time series, and the SLO
//! monitor — the server's live introspection substrate.
//!
//! The scheduler calls [`ServerMetrics::record_slice`] after every slice
//! and [`ServerMetrics::record_admission_wait`] at every promotion; both
//! record into a [`telemetry::ScopedRegistry`] under the job's
//! `{tenant}` / `{tenant, job}` label sets and append epoch-boundary
//! samples (epoch latency, best score, evals/sec, budget burn-down,
//! cache hit rate) to a bounded [`telemetry::TimeSeriesStore`]. The
//! status server renders the registry as Prometheus text (`/metrics`)
//! and the series into the `/status` JSON.
//!
//! The SLO monitor compares each tenant's epoch-latency and
//! admission-wait p99 against [`SloConfig`] thresholds after every
//! recording. Breaches increment a `serve.slo.*_breaches` counter in the
//! tenant's scope and — when a telemetry sink is installed — emit a
//! `serve.slo_breach.*` count event carrying the observed p99, so
//! breaches land in trace files and progress feeds as they happen.
//!
//! Everything here is observability-only: recording never feeds back
//! into scheduling, so served results stay bit-identical with metrics
//! on or off.

use crate::budget::Budget;
use crate::job::JobId;
use eafe::EpochReport;
use telemetry::{CountEvent, Event, ScopedRegistry, ScopedSnapshot, TimeSeriesStore};

/// Retained epoch-boundary points per series (per job, per signal).
const SERIES_CAP: usize = 256;

/// Latency objectives checked per tenant after every recording;
/// `None` on an axis disables that check. Thresholds are in
/// microseconds and compared against the tenant's p99.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SloConfig {
    /// Epoch (slice) latency objective, p99 microseconds.
    pub epoch_p99_us: Option<u64>,
    /// Admission wait (submit → first active) objective, p99 µs.
    pub admission_wait_p99_us: Option<u64>,
}

/// One slice's worth of observability data, handed to
/// [`ServerMetrics::record_slice`] by the scheduler commit path.
#[derive(Debug, Clone)]
pub struct SliceSample<'a> {
    /// The sliced job.
    pub id: JobId,
    /// The job's tenant.
    pub tenant: &'a str,
    /// Wall-clock duration of the slice, microseconds.
    pub epoch_us: u64,
    /// The report the slice produced.
    pub report: &'a EpochReport,
    /// The job's budget (for burn-down).
    pub budget: Budget,
    /// Downstream evals performed *by this slice* (cumulative delta).
    pub evals_delta: u64,
    /// Shared score-cache hit rate at the slice boundary.
    pub cache_hit_rate: f64,
}

/// The server's scoped metrics + time series + SLO state.
#[derive(Debug)]
pub struct ServerMetrics {
    scoped: ScopedRegistry,
    series: TimeSeriesStore,
    slo: SloConfig,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        ServerMetrics::new(SloConfig::default())
    }
}

impl ServerMetrics {
    /// New metrics hub enforcing `slo`.
    pub fn new(slo: SloConfig) -> ServerMetrics {
        ServerMetrics {
            scoped: ScopedRegistry::new(),
            series: TimeSeriesStore::new(SERIES_CAP),
            slo,
        }
    }

    /// The scoped registry (for snapshots / Prometheus rendering).
    pub fn scoped(&self) -> &ScopedRegistry {
        &self.scoped
    }

    /// Snapshot every scope, deterministically ordered.
    pub fn snapshot(&self) -> ScopedSnapshot {
        self.scoped.snapshot()
    }

    /// The epoch-boundary time series store.
    pub fn series(&self) -> &TimeSeriesStore {
        &self.series
    }

    /// Record one completed slice into the tenant's scope and the job's
    /// time series, then run the epoch-latency SLO check.
    pub fn record_slice(&self, s: &SliceSample<'_>) {
        let tenant = self.scoped.scope(&[("tenant", s.tenant)]);
        tenant.histogram("serve.epoch_us").record(s.epoch_us);
        tenant.counter("serve.epochs").inc();
        tenant.counter("serve.evals").add(s.evals_delta);

        let r = s.report;
        let tick = r.epochs_completed as u64;
        let job = s.id.to_string();
        let remaining =
            s.budget
                .remaining_fraction(r.epochs_completed, r.downstream_evals, r.elapsed_secs);
        let evals_per_sec = if r.elapsed_secs > 0.0 {
            r.downstream_evals as f64 / r.elapsed_secs
        } else {
            0.0
        };
        self.series
            .record(&format!("{job}.epoch_us"), tick, s.epoch_us as f64);
        self.series
            .record(&format!("{job}.best_score"), tick, r.best_score);
        self.series
            .record(&format!("{job}.evals_per_sec"), tick, evals_per_sec);
        self.series
            .record(&format!("{job}.budget_remaining"), tick, remaining);
        self.series
            .record(&format!("{job}.cache_hit_rate"), tick, s.cache_hit_rate);

        if let Some(limit) = self.slo.epoch_p99_us {
            let p99 = tenant.histogram("serve.epoch_us").snapshot().p99;
            if p99 > limit {
                self.flag_breach(s.tenant, "epoch_us", p99, &tenant);
            }
        }
    }

    /// Record how long a job waited between submission and its first
    /// active slot, then run the admission-wait SLO check.
    pub fn record_admission_wait(&self, tenant_name: &str, wait_us: u64) {
        let tenant = self.scoped.scope(&[("tenant", tenant_name)]);
        tenant.histogram("serve.admission_wait_us").record(wait_us);
        if let Some(limit) = self.slo.admission_wait_p99_us {
            let p99 = tenant.histogram("serve.admission_wait_us").snapshot().p99;
            if p99 > limit {
                self.flag_breach(tenant_name, "admission_wait_us", p99, &tenant);
            }
        }
    }

    /// Count the breach in the tenant's scope and surface it on the
    /// telemetry event stream (no-op while telemetry is disabled).
    fn flag_breach(
        &self,
        tenant_name: &str,
        axis: &str,
        observed_p99: u64,
        scope: &telemetry::Scope,
    ) {
        scope.counter(&format!("serve.slo.{axis}_breaches")).inc();
        if telemetry::enabled() {
            telemetry::emit(&Event::Count(CountEvent {
                name: format!("serve.slo_breach.{axis}.{tenant_name}"),
                value: observed_p99,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use eafe::SearchStage;

    fn report(epochs: usize, evals: usize, secs: f64, best: f64) -> EpochReport {
        EpochReport {
            stage: SearchStage::Stage2,
            epoch: epochs.saturating_sub(1),
            epochs_completed: epochs,
            base_score: 0.5,
            best_score: best,
            best_features: vec![],
            generated: 0,
            downstream_evals: evals,
            elapsed_secs: secs,
            done: false,
        }
    }

    fn sample<'a>(tenant: &'a str, r: &'a EpochReport, epoch_us: u64) -> SliceSample<'a> {
        SliceSample {
            id: JobId(1),
            tenant,
            epoch_us,
            report: r,
            budget: Budget::epochs(10),
            evals_delta: 2,
            cache_hit_rate: 0.5,
        }
    }

    #[test]
    fn slices_accumulate_per_tenant_and_per_job() {
        let m = ServerMetrics::new(SloConfig::default());
        let r1 = report(1, 2, 0.5, 0.6);
        let r2 = report(2, 4, 1.0, 0.7);
        m.record_slice(&sample("a", &r1, 100));
        m.record_slice(&sample("a", &r2, 300));

        let snap = m.snapshot();
        let a = snap.get(&[("tenant", "a")]).unwrap();
        assert_eq!(a.counter("serve.epochs"), 2);
        assert_eq!(a.counter("serve.evals"), 4);
        assert_eq!(a.histogram("serve.epoch_us").unwrap().count, 2);

        let best = m.series().get("job-1.best_score").unwrap().points();
        assert_eq!(best.len(), 2);
        assert_eq!(best[1].value, 0.7);
        let burn = m.series().get("job-1.budget_remaining").unwrap().points();
        assert!((burn[0].value - 0.9).abs() < 1e-12);
        assert!((burn[1].value - 0.8).abs() < 1e-12);
    }

    #[test]
    fn slo_breach_counts_in_the_tenant_scope() {
        let m = ServerMetrics::new(SloConfig {
            epoch_p99_us: Some(10),
            admission_wait_p99_us: Some(10),
        });
        let r = report(1, 1, 0.1, 0.6);
        m.record_slice(&sample("a", &r, 5)); // under the objective
        let snap = m.snapshot();
        assert_eq!(
            snap.get(&[("tenant", "a")])
                .unwrap()
                .counter("serve.slo.epoch_us_breaches"),
            0
        );

        let r2 = report(2, 2, 0.2, 0.6);
        m.record_slice(&sample("a", &r2, 1_000_000)); // way over
        m.record_admission_wait("a", 1_000_000);
        let snap = m.snapshot();
        let a = snap.get(&[("tenant", "a")]).unwrap();
        assert_eq!(a.counter("serve.slo.epoch_us_breaches"), 1);
        assert_eq!(a.counter("serve.slo.admission_wait_us_breaches"), 1);
    }

    #[test]
    fn prometheus_page_carries_tenant_labels() {
        let m = ServerMetrics::new(SloConfig::default());
        let r = report(1, 2, 0.5, 0.6);
        m.record_slice(&sample("retail", &r, 100));
        let text = m.snapshot().to_prometheus();
        assert!(text.contains("serve_epochs{tenant=\"retail\"} 1"));
        assert!(text.contains("serve_epoch_us{tenant=\"retail\",quantile=\"0.99\"}"));
    }
}
