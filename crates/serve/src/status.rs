//! A minimal HTTP status endpoint over `std::net` — zero new
//! dependencies, off by default.
//!
//! [`StatusServer::start`] binds a TCP listener and serves two read-only
//! pages from whatever implements [`StatusSource`]:
//!
//! - `GET /metrics` — Prometheus text exposition format
//!   (`text/plain; version=0.0.4`), scrapeable by any Prometheus-
//!   compatible collector;
//! - `GET /status` — a JSON document with per-job state, queue depth,
//!   pool and cache stats, and the epoch-boundary time series.
//!
//! The protocol handling is deliberately tiny: HTTP/1.0-style one
//! request per connection, request line parsed for method + path,
//! headers skipped, `Connection: close` on every response. That is
//! enough for `curl`, Prometheus scrapers, and the CI smoke test, and
//! keeps the attack surface of a debug endpoint (bind it to loopback)
//! as small as the implementation.
//!
//! Serving runs on one dedicated thread; a scrape therefore never
//! blocks the scheduler, and the scheduler never blocks a scrape
//! (sources snapshot under short-lived locks).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What the status pages render. Implemented by the job server; kept as
/// a trait so the HTTP plumbing is testable with a stub.
pub trait StatusSource: Send + Sync + 'static {
    /// The `/status` page body (a JSON document).
    fn status_json(&self) -> String;
    /// The `/metrics` page body (Prometheus text exposition format).
    fn metrics_text(&self) -> String;
}

/// A background thread serving `/metrics` and `/status` over TCP.
pub struct StatusServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for StatusServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StatusServer")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

impl StatusServer {
    /// Bind `addr` (e.g. `127.0.0.1:9100`, or port `0` for an
    /// OS-assigned port — read it back via [`StatusServer::addr`]) and
    /// serve `source` until [`StatusServer::stop`] or drop.
    pub fn start(addr: &str, source: Arc<dyn StatusSource>) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let thread = {
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("serve-status".to_string())
                .spawn(move || serve_loop(listener, source, stop))?
        };
        Ok(StatusServer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The actually bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop serving and join the thread. Idempotent.
    pub fn stop(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop();
    }
}

fn serve_loop(listener: TcpListener, source: Arc<dyn StatusSource>, stop: Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // A stuck client must not wedge the status thread.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle(stream, source.as_ref());
    }
}

/// Read up to the end of the request head and return the request line.
fn request_line(stream: &mut TcpStream) -> std::io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 256];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let head = String::from_utf8_lossy(&buf);
    Ok(head.lines().next().unwrap_or("").to_string())
}

fn handle(mut stream: TcpStream, source: &dyn StatusSource) -> std::io::Result<()> {
    let line = request_line(&mut stream)?;
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    // Strip any query string: `/metrics?x=y` still serves /metrics.
    let path = parts.next().unwrap_or("").split('?').next().unwrap_or("");

    let (status, content_type, body) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain",
            "method not allowed\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => ("200 OK", "text/plain; version=0.0.4", source.metrics_text()),
            "/status" => ("200 OK", "application/json", source.status_json()),
            _ => (
                "404 Not Found",
                "text/plain",
                "not found; try /metrics or /status\n".to_string(),
            ),
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Scrape `path` (e.g. `/metrics`) from a status server at `addr` and
/// return the response body. A convenience for demos and tests — any
/// HTTP client works against the real endpoint.
pub fn scrape(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: status\r\nConnection: close\r\n\r\n"
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    match response.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed HTTP response",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Stub;
    impl StatusSource for Stub {
        fn status_json(&self) -> String {
            "{\"ok\":true}".to_string()
        }
        fn metrics_text(&self) -> String {
            "# TYPE up counter\nup 1\n".to_string()
        }
    }

    #[test]
    fn serves_both_pages_and_404s_the_rest() {
        let mut server = StatusServer::start("127.0.0.1:0", Arc::new(Stub)).unwrap();
        let addr = server.addr();
        assert_eq!(scrape(addr, "/status").unwrap(), "{\"ok\":true}");
        assert_eq!(
            scrape(addr, "/metrics").unwrap(),
            "# TYPE up counter\nup 1\n"
        );
        assert_eq!(
            scrape(addr, "/metrics?scrape=1").unwrap(),
            "# TYPE up counter\nup 1\n"
        );
        assert!(scrape(addr, "/nope").unwrap().contains("not found"));
        server.stop();
        server.stop(); // idempotent
        assert!(
            scrape(addr, "/status").is_err(),
            "stopped server refuses scrapes"
        );
    }

    #[test]
    fn sequential_scrapes_reuse_the_listener() {
        let server = StatusServer::start("127.0.0.1:0", Arc::new(Stub)).unwrap();
        for _ in 0..5 {
            assert_eq!(scrape(server.addr(), "/status").unwrap(), "{\"ok\":true}");
        }
    }
}
