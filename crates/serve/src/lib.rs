//! # serve — feature engineering as a service
//!
//! A long-lived, multi-tenant job server over the E-AFE engine: tenants
//! submit a dataset, an engine configuration, and a [`Budget`]; the
//! server interleaves epoch-granular work slices across all active jobs
//! in deterministic round-robin rotation and streams progressively
//! better weighted feature sets back — the anytime contract. Jobs can be
//! cancelled cooperatively and survive server restarts via
//! checkpoint/resume of the engine's serializable search state.
//!
//! The shared compute substrate (worker-thread budget, content-addressed
//! score cache, MinHash signature cache) is owned once per server, so
//! tenants benefit from each other's evaluations without being able to
//! perturb each other's results: caching is content-addressed and every
//! search's RNG streams are private, so a job's output is bit-identical
//! whether it ran alone or alongside other tenants, uninterrupted or
//! resumed from a checkpoint.
//!
//! ## Quick start
//!
//! ```
//! use serve::{Budget, JobServer, ServerConfig};
//! use tabular::{SynthSpec, Task};
//!
//! let frame = SynthSpec::new("demo", 120, 4, Task::Classification)
//!     .with_seed(1)
//!     .generate()
//!     .unwrap();
//! let server = JobServer::new(ServerConfig::default()).unwrap();
//!
//! let engine = eafe::Engine::nfs(eafe::EafeConfig::fast());
//! let job = server
//!     .submit("tenant-a", &frame, engine, Budget::epochs(2))
//!     .unwrap();
//!
//! let outcome = job.wait().unwrap();
//! let result = outcome.result.unwrap();
//! assert!(result.best_score >= result.base_score);
//! ```
//!
//! ## Module map
//!
//! - [`budget`] — per-job resource bounds (epochs / evaluations / compute
//!   seconds) and the exhaustion rule;
//! - [`job`] — job identity, lifecycle states, outcomes, and the
//!   progress-stream wire format ([`progress_event`]);
//! - [`server`] — the [`JobServer`] itself: admission control, the fair
//!   scheduler, cancellation, checkpoint/resume;
//! - [`metrics`] — per-tenant scoped metrics, epoch-boundary time
//!   series, and the SLO monitor;
//! - [`status`] — the opt-in HTTP introspection endpoint (`/metrics`
//!   Prometheus text, `/status` JSON), zero new dependencies.

#![warn(missing_docs)]

pub mod budget;
pub mod error;
pub mod job;
pub mod metrics;
pub mod server;
pub mod status;

pub use budget::Budget;
pub use error::{Result, ServeError};
pub use job::{progress_event, JobEvent, JobId, JobOutcome, JobStatus};
pub use metrics::{ServerMetrics, SliceSample, SloConfig};
pub use server::{JobHandle, JobServer, ServerConfig};
pub use status::{scrape, StatusServer, StatusSource};
