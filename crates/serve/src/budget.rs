//! Job budgets: the anytime contract's stopping rule.
//!
//! A budget bounds a job along any combination of three axes — epochs
//! (scheduler slices), downstream evaluations, and compute seconds. The
//! server checks the budget at every epoch boundary, so a job always
//! stops within one slice of exhaustion and its latest [`eafe::EpochReport`]
//! is the best answer the budget could buy (OpenFE-style anytime search).
//!
//! Seconds are *compute* seconds (time inside slices, as accumulated by
//! the search state), not wall-clock time on the server — so a job's
//! budget is not consumed by other tenants' slices, and budget decisions
//! replay identically on resume.

use serde::{Deserialize, Serialize};

/// Resource bounds for one job; `None` on an axis means unbounded.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Budget {
    /// Maximum scheduler slices (stage-1/seed/stage-2 epochs).
    pub max_epochs: Option<usize>,
    /// Maximum downstream evaluations (the base evaluation counts).
    pub max_evals: Option<usize>,
    /// Maximum compute seconds spent inside slices.
    pub max_secs: Option<f64>,
}

impl Budget {
    /// No bounds: the job runs until the engine itself finishes.
    pub fn unlimited() -> Budget {
        Budget::default()
    }

    /// Bound by scheduler slices only.
    pub fn epochs(n: usize) -> Budget {
        Budget {
            max_epochs: Some(n),
            ..Budget::default()
        }
    }

    /// Bound by downstream evaluations only.
    pub fn evals(n: usize) -> Budget {
        Budget {
            max_evals: Some(n),
            ..Budget::default()
        }
    }

    /// Bound by compute seconds only.
    pub fn secs(s: f64) -> Budget {
        Budget {
            max_secs: Some(s),
            ..Budget::default()
        }
    }

    /// True once the spend on any bounded axis has reached its limit.
    pub fn exhausted(&self, epochs: usize, evals: usize, secs: f64) -> bool {
        self.max_epochs.is_some_and(|m| epochs >= m)
            || self.max_evals.is_some_and(|m| evals >= m)
            || self.max_secs.is_some_and(|m| secs >= m)
    }

    /// Fraction of the budget still unspent — the *minimum* over bounded
    /// axes of `1 - spent/limit`, clamped to `[0, 1]` (the tightest axis
    /// decides, matching [`Budget::exhausted`]). `1.0` when unbounded.
    pub fn remaining_fraction(&self, epochs: usize, evals: usize, secs: f64) -> f64 {
        let mut frac: f64 = 1.0;
        if let Some(m) = self.max_epochs {
            frac = frac.min(1.0 - epochs as f64 / (m.max(1)) as f64);
        }
        if let Some(m) = self.max_evals {
            frac = frac.min(1.0 - evals as f64 / (m.max(1)) as f64);
        }
        if let Some(m) = self.max_secs {
            frac = frac.min(1.0 - secs / m.max(f64::MIN_POSITIVE));
        }
        frac.clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted(usize::MAX, usize::MAX, f64::MAX));
    }

    #[test]
    fn each_axis_binds_independently() {
        assert!(Budget::epochs(3).exhausted(3, 0, 0.0));
        assert!(!Budget::epochs(3).exhausted(2, 1_000_000, 1e9));
        assert!(Budget::evals(10).exhausted(0, 10, 0.0));
        assert!(!Budget::evals(10).exhausted(1_000, 9, 1e9));
        assert!(Budget::secs(1.5).exhausted(0, 0, 1.5));
        assert!(!Budget::secs(1.5).exhausted(1_000, 1_000_000, 1.49));
    }

    #[test]
    fn combined_budget_stops_at_the_first_exhausted_axis() {
        let b = Budget {
            max_epochs: Some(5),
            max_evals: Some(100),
            max_secs: Some(60.0),
        };
        assert!(b.exhausted(5, 1, 0.1));
        assert!(b.exhausted(1, 100, 0.1));
        assert!(b.exhausted(1, 1, 60.0));
        assert!(!b.exhausted(4, 99, 59.9));
    }

    #[test]
    fn remaining_fraction_tracks_the_tightest_axis() {
        assert_eq!(
            Budget::unlimited().remaining_fraction(1_000, 1_000, 1e9),
            1.0
        );
        assert!((Budget::epochs(10).remaining_fraction(4, 0, 0.0) - 0.6).abs() < 1e-12);
        let b = Budget {
            max_epochs: Some(10),
            max_evals: Some(100),
            max_secs: None,
        };
        // 40% of epochs spent but 90% of evals: evals axis decides.
        assert!((b.remaining_fraction(4, 90, 0.0) - 0.1).abs() < 1e-12);
        // Over-spend clamps to zero rather than going negative.
        assert_eq!(Budget::secs(1.0).remaining_fraction(0, 0, 2.0), 0.0);
    }

    #[test]
    fn budget_round_trips_through_serde() {
        let b = Budget {
            max_epochs: Some(7),
            max_evals: None,
            max_secs: Some(2.5),
        };
        let json = serde_json::to_string(&b).unwrap();
        let back: Budget = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }
}
