//! End-to-end behaviour of the job server: lifecycle, anytime budgets,
//! admission control, progress streaming, checkpoint/resume, and the
//! JSON-lines progress feed.

use serve::{Budget, JobEvent, JobId, JobServer, JobStatus, ServeError, ServerConfig};
use tabular::{DataFrame, SynthSpec, Task};

fn frame() -> DataFrame {
    SynthSpec::new("serve-it", 150, 4, Task::Classification)
        .with_seed(7)
        .generate()
        .unwrap()
}

fn fast_engine() -> eafe::Engine {
    let mut cfg = eafe::EafeConfig::fast();
    cfg.stage2_epochs = 3;
    cfg.steps_per_epoch = 3;
    eafe::Engine::nfs(cfg)
}

/// An engine with enough epochs that tests can reliably interrupt it.
fn long_engine() -> eafe::Engine {
    let mut cfg = eafe::EafeConfig::fast();
    cfg.stage2_epochs = 200;
    cfg.steps_per_epoch = 2;
    cfg.early_stop_patience = None; // never early-stop
    eafe::Engine::nfs(cfg)
}

fn scratch_dir(test: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-it-{}-{test}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn completed_job_delivers_result_and_engineered_frame() {
    let frame = frame();
    let server = JobServer::new(ServerConfig::default()).unwrap();
    let job = server
        .submit("acme", &frame, fast_engine(), Budget::unlimited())
        .unwrap();
    let outcome = job.wait().unwrap();

    assert_eq!(outcome.status, JobStatus::Completed);
    assert_eq!(outcome.tenant, "acme");
    assert_eq!(server.status(job.id()).unwrap(), JobStatus::Completed);
    assert!(outcome.epochs > 0);
    let result = outcome.result.expect("completed job has a result");
    assert!(result.best_score >= result.base_score);
    let engineered = outcome.engineered.expect("completed job has a frame");
    assert_eq!(
        engineered.n_cols(),
        frame.n_cols() + result.selected.len(),
        "engineered frame = original features + selected features"
    );
}

#[test]
fn budget_exhausted_job_still_yields_best_so_far() {
    let frame = frame();
    let server = JobServer::new(ServerConfig::default()).unwrap();
    let job = server
        .submit("acme", &frame, long_engine(), Budget::epochs(2))
        .unwrap();
    let outcome = job.wait().unwrap();

    assert_eq!(outcome.status, JobStatus::BudgetExhausted);
    assert_eq!(outcome.epochs, 2, "stops exactly at the epoch budget");
    let result = outcome
        .result
        .expect("anytime: exhausted jobs keep their best");
    assert!(result.best_score >= result.base_score);
    assert!(outcome.engineered.is_some());
}

#[test]
fn progress_stream_is_monotone_and_ends_with_done() {
    let frame = frame();
    let server = JobServer::new(ServerConfig::default()).unwrap();
    let job = server
        .submit("acme", &frame, fast_engine(), Budget::unlimited())
        .unwrap();

    let mut reports = Vec::new();
    let outcome = loop {
        match job.next_event().expect("stream ends with Done") {
            JobEvent::Epoch(r) => reports.push(r),
            JobEvent::Done(o) => break o,
        }
    };
    assert!(
        job.next_event().is_none(),
        "nothing after the terminal event"
    );

    assert!(!reports.is_empty());
    for pair in reports.windows(2) {
        assert!(
            pair[1].best_score >= pair[0].best_score,
            "best-so-far can only improve"
        );
        assert_eq!(
            pair[1].epochs_completed,
            pair[0].epochs_completed + 1,
            "one report per slice"
        );
    }
    let last = reports.last().unwrap();
    assert!(last.done);
    let result = outcome.result.as_ref().unwrap();
    assert_eq!(last.best_score.to_bits(), result.best_score.to_bits());
    // The final report's weighted feature set is exactly the run's
    // selected set.
    let mut names: Vec<&str> = last.best_features.iter().map(|f| f.name.as_str()).collect();
    names.sort_unstable();
    let mut selected: Vec<&str> = result.selected.iter().map(String::as_str).collect();
    selected.sort_unstable();
    assert_eq!(names, selected);
}

#[test]
fn cancelled_job_stops_at_the_next_epoch_boundary() {
    let frame = frame();
    let server = JobServer::new(ServerConfig::default()).unwrap();
    let job = server
        .submit("acme", &frame, long_engine(), Budget::unlimited())
        .unwrap();

    // Quiesce the scheduler so the cancellation point is exact: after
    // `pause` returns, no slice is in flight, so the epochs observed on
    // the stream are all the epochs that ever ran.
    assert!(matches!(job.next_event(), Some(JobEvent::Epoch(_))));
    server.pause();
    let epochs_before_cancel = 1 + job.progress().len();
    job.cancel().unwrap();
    server.unpause();

    let outcome = job.wait().unwrap();
    assert_eq!(outcome.status, JobStatus::Cancelled);
    assert_eq!(
        outcome.epochs, epochs_before_cancel,
        "no further slice runs after a cancel at a quiesced boundary"
    );
    assert!(
        outcome.result.is_some(),
        "anytime: cancelled jobs keep their best"
    );
}

#[test]
fn admission_control_bounds_the_queue() {
    let frame = frame();
    let config = ServerConfig {
        max_queued: 2,
        ..ServerConfig::default()
    };
    let server = JobServer::new(config).unwrap();
    // Park the scheduler so nothing is promoted out of the queue.
    server.pause();
    let _a = server
        .submit("t", &frame, fast_engine(), Budget::unlimited())
        .unwrap();
    let _b = server
        .submit("t", &frame, fast_engine(), Budget::unlimited())
        .unwrap();
    let err = server
        .submit("t", &frame, fast_engine(), Budget::unlimited())
        .unwrap_err();
    assert!(
        matches!(err, ServeError::QueueFull { capacity: 2 }),
        "expected QueueFull, got {err}"
    );
    server.unpause();
}

#[test]
fn unknown_job_and_stopped_server_are_rejected() {
    let frame = frame();
    let mut server = JobServer::new(ServerConfig::default()).unwrap();
    assert!(matches!(
        server.status(JobId(999)),
        Err(ServeError::UnknownJob(JobId(999)))
    ));
    server.shutdown().unwrap();
    assert!(matches!(
        server.submit("t", &frame, fast_engine(), Budget::unlimited()),
        Err(ServeError::ServerStopped)
    ));
}

#[test]
fn checkpoint_all_then_restart_preserves_job_ids_and_results() {
    let frame = frame();
    let solo = fast_engine().run(&frame).unwrap();

    let dir = scratch_dir("ckpt");
    let config = ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    // Park the scheduler before submitting so the checkpoint captures a
    // job that never ran a slice (the frame-only checkpoint shape).
    let mut server = JobServer::new(config.clone()).unwrap();
    server.pause();
    let job = server
        .submit("acme", &frame, fast_engine(), Budget::unlimited())
        .unwrap();
    let original_id = job.id();
    assert_eq!(server.checkpoint_all().unwrap(), 1);
    server.shutdown().unwrap();

    let (_server2, handles) = JobServer::resume(config).unwrap();
    assert_eq!(handles.len(), 1);
    assert_eq!(handles[0].id(), original_id, "job ids survive restarts");
    assert_eq!(handles[0].tenant(), "acme");
    let outcome = handles[0].wait().unwrap();
    assert_eq!(outcome.status, JobStatus::Completed);
    let result = outcome.result.unwrap();
    assert_eq!(
        result.best_score.to_bits(),
        solo.best_score.to_bits(),
        "a frame round-tripped through a checkpoint yields identical scores"
    );
    // The checkpoint file is removed once the job reaches a terminal state.
    assert!(!dir.join(format!("{original_id}.json")).exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resumed_stream_does_not_replay_events_seen_before_restart() {
    let frame = frame();
    let dir = scratch_dir("resume-stream");
    let feed_dir = dir.join("feeds");
    let config = ServerConfig {
        checkpoint_dir: Some(dir.clone()),
        feed_dir: Some(feed_dir.clone()),
        ..ServerConfig::default()
    };

    let mut server = JobServer::new(config.clone()).unwrap();
    let job = server
        .submit("acme", &frame, long_engine(), Budget::epochs(6))
        .unwrap();

    // Observe at least one epoch live, then quiesce so the count of
    // pre-restart epochs is exact.
    assert!(matches!(job.next_event(), Some(JobEvent::Epoch(_))));
    server.pause();
    let seen_before = 1 + job.progress().len();
    assert!(seen_before < 6, "budget must not be exhausted pre-restart");
    // Shut down while still paused: the checkpoint then captures exactly
    // the quiesced state whose epochs the stream has already delivered.
    assert_eq!(server.shutdown().unwrap(), 1);

    let (_server2, handles) = JobServer::resume(config).unwrap();
    let resumed = &handles[0];
    let mut reports = Vec::new();
    let outcome = loop {
        match resumed.next_event().expect("stream ends with Done") {
            JobEvent::Epoch(r) => reports.push(r),
            JobEvent::Done(o) => break o,
        }
    };

    // Ordering contract: the resumed stream starts exactly one epoch
    // after the last pre-restart report — nothing seen before the
    // restart is re-emitted — and stays gapless through the terminal
    // event.
    assert_eq!(
        reports.first().unwrap().epochs_completed,
        seen_before + 1,
        "first resumed event must continue, not replay"
    );
    for pair in reports.windows(2) {
        assert_eq!(pair[1].epochs_completed, pair[0].epochs_completed + 1);
    }
    assert_eq!(outcome.status, JobStatus::BudgetExhausted);
    assert_eq!(outcome.epochs, 6);
    assert_eq!(reports.last().unwrap().epochs_completed, 6);

    // The progress feed is truncated on resume, so it too contains only
    // post-restart epochs.
    let text = std::fs::read_to_string(feed_dir.join(format!("{}.jsonl", resumed.id()))).unwrap();
    let feed_epochs: Vec<usize> = text
        .lines()
        .filter_map(|l| telemetry::Event::from_json(l).ok())
        .filter_map(|e| match e {
            telemetry::Event::Span(s) if s.name == "serve.epoch" => s
                .fields
                .iter()
                .find(|(k, _)| k == "epochs_completed")
                .map(|(_, v)| *v as usize),
            _ => None,
        })
        .collect();
    assert_eq!(
        feed_epochs,
        (seen_before + 1..=6).collect::<Vec<_>>(),
        "feed holds exactly the post-restart epochs, no replays"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn status_endpoint_reports_jobs_metrics_and_cache() {
    let frame = frame();
    let server = JobServer::new(ServerConfig {
        status_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.status_addr().expect("status server is running");

    let job = server
        .submit("acme", &frame, fast_engine(), Budget::unlimited())
        .unwrap();
    let outcome = job.wait().unwrap();
    assert_eq!(outcome.status, JobStatus::Completed);

    // /metrics: Prometheus text with the tenant label on scoped metrics.
    let metrics = serve::scrape(addr, "/metrics").unwrap();
    assert!(
        metrics.contains("# TYPE serve_epoch_us summary"),
        "{metrics}"
    );
    assert!(metrics.contains("serve_epoch_us{tenant=\"acme\",quantile=\"0.99\"}"));
    assert!(metrics.contains("serve_epochs{tenant=\"acme\"}"));
    assert!(metrics.contains("serve_admission_wait_us{tenant=\"acme\""));

    // /status: JSON with the job row, pool + cache stats, time series.
    let status = serve::scrape(addr, "/status").unwrap();
    let doc = serde_json::parse(&status).unwrap();
    let map = doc.as_map().unwrap();
    let jobs = map
        .iter()
        .find(|(k, _)| k == "jobs")
        .and_then(|(_, v)| v.as_array())
        .unwrap();
    assert_eq!(jobs.len(), 1);
    let row = jobs[0].as_map().unwrap();
    let field = |k: &str| row.iter().find(|(n, _)| n == k).map(|(_, v)| v).unwrap();
    assert_eq!(field("tenant"), &serde::Value::Str("acme".to_string()));
    assert_eq!(field("status"), &serde::Value::Str("Completed".to_string()));
    assert!(field("epochs_completed").as_u64().unwrap() > 0);
    assert!(field("best_score").as_f64().unwrap() >= field("base_score").as_f64().unwrap());
    for key in ["queue_depth", "active", "pool", "cache", "dist", "series"] {
        assert!(map.iter().any(|(k, _)| k == key), "missing {key}: {status}");
    }
    // Distributed-search counters surface on both pages (all zero here —
    // no coordinator ran in this process — but the keys must exist).
    assert!(metrics.contains("# TYPE dist_shards_completed counter"));
    assert!(metrics.contains("# TYPE dist_workers_live gauge"));
    let dist = map
        .iter()
        .find(|(k, _)| k == "dist")
        .and_then(|(_, v)| v.as_map())
        .unwrap();
    for key in ["shards_completed", "bytes_sent", "wire_us"] {
        assert!(dist.iter().any(|(k, _)| k == key), "missing dist.{key}");
    }
    // The per-job time series carry the budget burn-down and best score.
    let series = map
        .iter()
        .find(|(k, _)| k == "series")
        .and_then(|(_, v)| v.as_map())
        .unwrap();
    let id = job.id();
    for signal in [
        "best_score",
        "budget_remaining",
        "cache_hit_rate",
        "epoch_us",
    ] {
        let name = format!("{id}.{signal}");
        let points = series
            .iter()
            .find(|(k, _)| *k == name)
            .and_then(|(_, v)| v.as_array())
            .unwrap_or_else(|| panic!("missing series {name}"));
        assert!(!points.is_empty());
    }
}

#[test]
fn resume_without_a_checkpoint_dir_is_an_error() {
    assert!(matches!(
        JobServer::resume(ServerConfig::default()),
        Err(ServeError::NoCheckpointDir)
    ));
}

#[test]
fn progress_feed_is_valid_event_jsonl() {
    let frame = frame();
    let dir = scratch_dir("feed");
    let server = JobServer::new(ServerConfig {
        feed_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .unwrap();
    let job = server
        .submit("acme", &frame, fast_engine(), Budget::unlimited())
        .unwrap();
    let outcome = job.wait().unwrap();
    assert_eq!(outcome.status, JobStatus::Completed);

    let text = std::fs::read_to_string(dir.join(format!("{}.jsonl", job.id()))).unwrap();
    let events: Vec<telemetry::Event> = text
        .lines()
        .map(|l| telemetry::Event::from_json(l).expect("feed lines are Event JSON"))
        .collect();
    let epochs = events
        .iter()
        .filter_map(telemetry::Event::as_span)
        .filter(|s| s.name == "serve.epoch")
        .count();
    assert_eq!(epochs, outcome.epochs, "one feed span per epoch");
    // Every epoch span tags its job, and the stream ends with a terminal
    // count event naming the outcome.
    for span in events.iter().filter_map(telemetry::Event::as_span) {
        let jobfield = span.fields.iter().find(|(k, _)| k == "job").unwrap();
        assert_eq!(jobfield.1, job.id().0 as f64);
    }
    match events.last().unwrap() {
        telemetry::Event::Count(c) => {
            assert_eq!(c.name, "serve.done.Completed");
            assert_eq!(c.value, outcome.epochs as u64);
        }
        other => panic!("expected terminal count event, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
