//! Release smoke tests for the serving layer: timing-sensitive checks on
//! live (unquiesced) behaviour — CI runs these under `--release` where a
//! slice is fast enough for the bounds to be meaningful.

use serve::{Budget, JobEvent, JobServer, JobStatus, ServerConfig};
use tabular::{DataFrame, SynthSpec, Task};

fn frame() -> DataFrame {
    SynthSpec::new("serve-smoke", 150, 4, Task::Classification)
        .with_seed(11)
        .generate()
        .unwrap()
}

/// Many cheap epochs: interruption lands mid-run, never near the end.
fn long_engine(seed: u64) -> eafe::Engine {
    let mut cfg = eafe::EafeConfig::fast();
    cfg.stage2_epochs = 10_000;
    cfg.steps_per_epoch = 2;
    cfg.early_stop_patience = None;
    cfg.seed = seed;
    eafe::Engine::nfs(cfg)
}

#[test]
fn live_cancel_stops_within_one_epoch_boundary() {
    let frame = frame();
    let server = JobServer::new(ServerConfig::default()).unwrap();
    let job = server
        .submit("acme", &frame, long_engine(5), Budget::unlimited())
        .unwrap();

    // Let the job get going, then cancel while the scheduler is live: at
    // most the slice already in flight may still complete and report.
    assert!(matches!(job.next_event(), Some(JobEvent::Epoch(_))));
    job.cancel().unwrap();
    let mut epochs_after_cancel = 0;
    let outcome = loop {
        match job.next_event().expect("stream ends with Done") {
            JobEvent::Epoch(_) => epochs_after_cancel += 1,
            JobEvent::Done(o) => break o,
        }
    };
    assert_eq!(outcome.status, JobStatus::Cancelled);
    assert!(
        epochs_after_cancel <= 1,
        "cancel must stop the job within one epoch boundary \
         (saw {epochs_after_cancel} epochs after cancel)"
    );
    assert!(
        outcome.result.is_some(),
        "cancelled job keeps its best-so-far"
    );
}

#[test]
fn equal_budget_tenants_finish_within_25_percent_of_each_other() {
    let frame = frame();
    let server = JobServer::new(ServerConfig::default()).unwrap();
    // Same dataset and config shape, different seeds, identical
    // compute-seconds budgets: fair round-robin slicing means neither
    // tenant can starve the other, so their epoch counts track closely.
    let budget = Budget::secs(1.0);
    let a = server
        .submit("tenant-a", &frame, long_engine(21), budget)
        .unwrap();
    let b = server
        .submit("tenant-b", &frame, long_engine(22), budget)
        .unwrap();
    let oa = a.wait().unwrap();
    let ob = b.wait().unwrap();
    assert_eq!(oa.status, JobStatus::BudgetExhausted);
    assert_eq!(ob.status, JobStatus::BudgetExhausted);

    let (hi, lo) = (oa.epochs.max(ob.epochs), oa.epochs.min(ob.epochs));
    assert!(lo > 0, "both tenants made progress");
    assert!(
        (hi - lo) as f64 <= 0.25 * hi as f64,
        "equal-budget tenants diverged: {} vs {} epochs",
        oa.epochs,
        ob.epochs
    );
}
