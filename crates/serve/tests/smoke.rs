//! Release smoke tests for the serving layer: timing-sensitive checks on
//! live (unquiesced) behaviour — CI runs these under `--release` where a
//! slice is fast enough for the bounds to be meaningful.

use serve::{Budget, JobEvent, JobServer, JobStatus, ServerConfig};
use tabular::{DataFrame, SynthSpec, Task};

fn frame() -> DataFrame {
    SynthSpec::new("serve-smoke", 150, 4, Task::Classification)
        .with_seed(11)
        .generate()
        .unwrap()
}

/// Many cheap epochs: interruption lands mid-run, never near the end.
fn long_engine(seed: u64) -> eafe::Engine {
    let mut cfg = eafe::EafeConfig::fast();
    cfg.stage2_epochs = 10_000;
    cfg.steps_per_epoch = 2;
    cfg.early_stop_patience = None;
    cfg.seed = seed;
    eafe::Engine::nfs(cfg)
}

#[test]
fn live_cancel_stops_within_one_epoch_boundary() {
    let frame = frame();
    let server = JobServer::new(ServerConfig::default()).unwrap();
    let job = server
        .submit("acme", &frame, long_engine(5), Budget::unlimited())
        .unwrap();

    // Let the job get going, then cancel while the scheduler is live: at
    // most the slice already in flight may still complete and report.
    assert!(matches!(job.next_event(), Some(JobEvent::Epoch(_))));
    job.cancel().unwrap();
    let mut epochs_after_cancel = 0;
    let outcome = loop {
        match job.next_event().expect("stream ends with Done") {
            JobEvent::Epoch(_) => epochs_after_cancel += 1,
            JobEvent::Done(o) => break o,
        }
    };
    assert_eq!(outcome.status, JobStatus::Cancelled);
    assert!(
        epochs_after_cancel <= 1,
        "cancel must stop the job within one epoch boundary \
         (saw {epochs_after_cancel} epochs after cancel)"
    );
    assert!(
        outcome.result.is_some(),
        "cancelled job keeps its best-so-far"
    );
}

#[test]
fn live_status_scrapes_during_a_two_tenant_run() {
    let frame = frame();
    let server = JobServer::new(ServerConfig {
        status_addr: Some("127.0.0.1:0".to_string()),
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.status_addr().unwrap();
    let a = server
        .submit("tenant-a", &frame, long_engine(31), Budget::secs(0.6))
        .unwrap();
    let b = server
        .submit("tenant-b", &frame, long_engine(32), Budget::secs(0.6))
        .unwrap();

    // Both tenants are mid-run: scrape live, repeatedly, and require the
    // pages to reflect both tenants with well-formed payloads. Metrics
    // are recorded after the slice's progress event is delivered (the
    // scheduler records outside its lock), so poll with a deadline
    // rather than asserting on the first scrape.
    assert!(matches!(a.next_event(), Some(JobEvent::Epoch(_))));
    assert!(matches!(b.next_event(), Some(JobEvent::Epoch(_))));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    let metrics = loop {
        let metrics = serve::scrape(addr, "/metrics").unwrap();
        let complete = ["tenant-a", "tenant-b"].iter().all(|tenant| {
            metrics.contains(&format!("serve_epochs{{tenant=\"{tenant}\"}}"))
                && metrics.contains(&format!(
                    "serve_epoch_us{{tenant=\"{tenant}\",quantile=\"0.99\"}}"
                ))
        });
        if complete {
            break metrics;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "live /metrics never showed both tenants: {metrics}"
        );
        std::thread::sleep(std::time::Duration::from_millis(10));
    };
    assert!(metrics.contains("# TYPE serve_epochs counter"), "{metrics}");
    for _ in 0..3 {
        let status = serve::scrape(addr, "/status").unwrap();
        let doc = serde_json::parse(&status).expect("live /status is valid JSON");
        let jobs = doc
            .as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == "jobs").map(|(_, v)| v))
            .and_then(|v| v.as_array())
            .unwrap();
        assert_eq!(jobs.len(), 2, "both tenants visible: {status}");
    }

    let oa = a.wait().unwrap();
    let ob = b.wait().unwrap();
    assert_eq!(oa.status, JobStatus::BudgetExhausted);
    assert_eq!(ob.status, JobStatus::BudgetExhausted);

    // After the run: budget burn-down series exist per job and the final
    // budget_remaining point is (near) zero.
    let status = serve::scrape(addr, "/status").unwrap();
    let doc = serde_json::parse(&status).unwrap();
    let series = doc
        .as_map()
        .and_then(|m| m.iter().find(|(k, _)| k == "series").map(|(_, v)| v))
        .and_then(|v| v.as_map())
        .unwrap();
    for job in [a.id(), b.id()] {
        let name = format!("{job}.budget_remaining");
        let points = series
            .iter()
            .find(|(k, _)| *k == name)
            .and_then(|(_, v)| v.as_array())
            .unwrap_or_else(|| panic!("missing {name}"));
        let last = points.last().unwrap().as_map().unwrap();
        let value = last
            .iter()
            .find(|(k, _)| k == "value")
            .and_then(|(_, v)| v.as_f64())
            .unwrap();
        assert!(
            value < 0.5,
            "budget burn-down should approach zero, got {value}"
        );
    }
}

#[test]
fn equal_budget_tenants_finish_within_25_percent_of_each_other() {
    let frame = frame();
    let server = JobServer::new(ServerConfig::default()).unwrap();
    // Same dataset and config shape, different seeds, identical
    // compute-seconds budgets: fair round-robin slicing means neither
    // tenant can starve the other, so their epoch counts track closely.
    let budget = Budget::secs(1.0);
    let a = server
        .submit("tenant-a", &frame, long_engine(21), budget)
        .unwrap();
    let b = server
        .submit("tenant-b", &frame, long_engine(22), budget)
        .unwrap();
    let oa = a.wait().unwrap();
    let ob = b.wait().unwrap();
    assert_eq!(oa.status, JobStatus::BudgetExhausted);
    assert_eq!(ob.status, JobStatus::BudgetExhausted);

    let (hi, lo) = (oa.epochs.max(ob.epochs), oa.epochs.min(ob.epochs));
    assert!(lo > 0, "both tenants made progress");
    assert!(
        (hi - lo) as f64 <= 0.25 * hi as f64,
        "equal-budget tenants diverged: {} vs {} epochs",
        oa.epochs,
        ob.epochs
    );
}
