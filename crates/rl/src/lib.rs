//! # rl
//!
//! Reinforcement-learning substrate for E-AFE: the RNN policy agent of the
//! paper's Figure 4 with a REINFORCE update (Eqs. 1 and 12), the discounted
//! and λ-return computations (Eqs. 9–10), and the replay buffer that bridges
//! the two training stages (Algorithm 2).

#![warn(missing_docs)]

pub mod adam;
pub mod error;
pub mod policy;
pub mod replay;
pub mod returns;

pub use error::{Result, RlError};
pub use policy::{sample_categorical, softmax, PolicyConfig, RnnPolicy, StepCache};
pub use replay::ReplayBuffer;
pub use returns::{
    discounted_returns, lambda_return, lambda_returns, returns_from_scores, rewards_to_go,
    score_gains, ReturnConfig,
};
