//! Error types for the `rl` crate.

use std::fmt;

/// Errors produced by policy construction and training.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RlError {
    /// A parameter was outside its valid domain.
    InvalidParam(String),
    /// An input had the wrong dimensionality for the policy.
    DimensionMismatch {
        /// Expected dimension.
        expected: usize,
        /// Actual dimension.
        got: usize,
    },
}

impl fmt::Display for RlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RlError::InvalidParam(msg) => write!(f, "invalid parameter: {msg}"),
            RlError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for RlError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, RlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(RlError::InvalidParam("x".into()).to_string().contains('x'));
        assert!(RlError::DimensionMismatch {
            expected: 2,
            got: 3
        }
        .to_string()
        .contains('2'));
    }
}
