//! Compact Adam optimiser for the policy parameters. Kept local to `rl` so
//! the crate stays dependency-free of the `learners` substrate (the two
//! crates sit side by side in the dependency graph).

use serde::{Deserialize, Serialize};

/// Adam state over a flat parameter vector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Adam {
    /// Learning rate (the paper uses 0.01).
    pub lr: f64,
    m: Vec<f64>,
    v: Vec<f64>,
    t: u64,
}

impl Adam {
    /// New optimiser for `n` parameters.
    pub fn new(n: usize, lr: f64) -> Self {
        Self {
            lr,
            m: vec![0.0; n],
            v: vec![0.0; n],
            t: 0,
        }
    }

    /// One update step; `params` and `grads` must match the constructed size.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        const B1: f64 = 0.9;
        const B2: f64 = 0.999;
        const EPS: f64 = 1e-8;
        debug_assert_eq!(params.len(), self.m.len());
        self.t += 1;
        let c1 = 1.0 - B1.powi(self.t as i32);
        let c2 = 1.0 - B2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = B1 * self.m[i] + (1.0 - B1) * grads[i];
            self.v[i] = B2 * self.v[i] + (1.0 - B2) * grads[i] * grads[i];
            params[i] -= self.lr * (self.m[i] / c1) / ((self.v[i] / c2).sqrt() + EPS);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let mut p = vec![5.0, -4.0];
        let mut opt = Adam::new(2, 0.05);
        for _ in 0..2000 {
            let g = vec![2.0 * (p[0] - 1.0), 2.0 * (p[1] + 2.0)];
            opt.step(&mut p, &g);
        }
        assert!((p[0] - 1.0).abs() < 1e-2);
        assert!((p[1] + 2.0).abs() < 1e-2);
    }
}
