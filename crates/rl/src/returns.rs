//! Return computations: the paper's discounted k-step return `U_t`
//! (Eq. 9) and λ-return `U_t^λ` (Eq. 10).
//!
//! The paper defines the per-step reward as the score gain
//! `r_t = A_t − A_{t−1}` and accumulates it as
//!
//! ```text
//! U_t = Σ_{k=0}^{t} γ^{t−k} r_k          (Eq. 9)
//! U_t^λ = (1−λ) Σ_{k=1}^{n} λ^{k−1} U_t  (Eq. 10)
//! ```
//!
//! Eq. (9) discounts *past* rewards toward the present (old gains fade);
//! Eq. (10)'s inner term does not depend on `k`, so the sum telescopes to
//! the closed form `U_t (1 − λⁿ)` — we implement exactly that, which is
//! what the authors' released code computes as well.

use serde::{Deserialize, Serialize};

/// Discount parameters for return computation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReturnConfig {
    /// Discount factor γ ∈ \[0, 1\].
    pub gamma: f64,
    /// λ for the λ-return, ∈ \[0, 1).
    pub lambda: f64,
    /// Horizon `n = N × T` in Eq. (10): agents × transformations per agent.
    pub horizon: usize,
}

impl Default for ReturnConfig {
    fn default() -> Self {
        Self {
            gamma: 0.99,
            lambda: 0.9,
            horizon: 64,
        }
    }
}

/// Per-step rewards from a score trace: `r_t = A_t − A_{t−1}` with
/// `A_{−1}` given as `baseline`.
pub fn score_gains(scores: &[f64], baseline: f64) -> Vec<f64> {
    let mut prev = baseline;
    scores
        .iter()
        .map(|&a| {
            let r = a - prev;
            prev = a;
            r
        })
        .collect()
}

/// Eq. (9): `U_t = Σ_{k=0}^{t} γ^{t−k} r_k` for every `t`, computed with the
/// forward recurrence `U_t = γ U_{t−1} + r_t` in O(n).
pub fn discounted_returns(rewards: &[f64], gamma: f64) -> Vec<f64> {
    let mut u = Vec::with_capacity(rewards.len());
    let mut acc = 0.0;
    for &r in rewards {
        acc = gamma * acc + r;
        u.push(acc);
    }
    u
}

/// The conventional *reward-to-go* return `G_t = Σ_{k≥t} γ^{k−t} r_k`,
/// provided for the ablation bench comparing the paper's Eq. (9) against
/// the textbook formulation.
pub fn rewards_to_go(rewards: &[f64], gamma: f64) -> Vec<f64> {
    let mut g = vec![0.0; rewards.len()];
    let mut acc = 0.0;
    for (i, &r) in rewards.iter().enumerate().rev() {
        acc = r + gamma * acc;
        g[i] = acc;
    }
    g
}

/// Eq. (10): `U_t^λ = (1−λ) Σ_{k=1}^{n} λ^{k−1} U_t = U_t (1 − λⁿ)`.
pub fn lambda_return(u_t: f64, lambda: f64, horizon: usize) -> f64 {
    if horizon == 0 {
        return 0.0;
    }
    u_t * (1.0 - lambda.powi(horizon as i32))
}

/// Apply [`lambda_return`] element-wise to a return trace.
pub fn lambda_returns(u: &[f64], cfg: &ReturnConfig) -> Vec<f64> {
    u.iter()
        .map(|&ut| lambda_return(ut, cfg.lambda, cfg.horizon))
        .collect()
}

/// Full paper pipeline: scores → gains (Eq. 9 upper) → discounted returns
/// (Eq. 9 lower) → λ-returns (Eq. 10).
pub fn returns_from_scores(scores: &[f64], baseline: f64, cfg: &ReturnConfig) -> Vec<f64> {
    let gains = score_gains(scores, baseline);
    let u = discounted_returns(&gains, cfg.gamma);
    lambda_returns(&u, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn score_gains_difference_chain() {
        let gains = score_gains(&[0.5, 0.7, 0.6], 0.4);
        assert_eq!(gains.len(), 3);
        assert!((gains[0] - 0.1).abs() < 1e-12);
        assert!((gains[1] - 0.2).abs() < 1e-12);
        assert!((gains[2] + 0.1).abs() < 1e-12);
    }

    #[test]
    fn discounted_matches_direct_formula() {
        let r = [1.0, 2.0, 3.0];
        let gamma = 0.5;
        let u = discounted_returns(&r, gamma);
        // U_2 = γ²r_0 + γr_1 + r_2 = 0.25 + 1 + 3 = 4.25
        assert!((u[0] - 1.0).abs() < 1e-12);
        assert!((u[1] - 2.5).abs() < 1e-12);
        assert!((u[2] - 4.25).abs() < 1e-12);
    }

    #[test]
    fn gamma_zero_returns_are_rewards() {
        let r = [3.0, -1.0, 2.0];
        assert_eq!(discounted_returns(&r, 0.0), r.to_vec());
    }

    #[test]
    fn gamma_one_returns_are_cumulative_sums() {
        let r = [1.0, 1.0, 1.0];
        assert_eq!(discounted_returns(&r, 1.0), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn rewards_to_go_is_reverse_discount() {
        let r = [1.0, 2.0, 4.0];
        let g = rewards_to_go(&r, 0.5);
        // G_0 = 1 + 0.5·2 + 0.25·4 = 3
        assert!((g[0] - 3.0).abs() < 1e-12);
        assert!((g[1] - 4.0).abs() < 1e-12);
        assert!((g[2] - 4.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_return_closed_form() {
        // (1-λ) Σ_{k=1}^{3} λ^{k-1} = (1-λ)(1+λ+λ²) = 1-λ³.
        let direct: f64 = (1.0 - 0.5) * (1.0 + 0.5 + 0.25) * 2.0;
        assert!((lambda_return(2.0, 0.5, 3) - direct).abs() < 1e-12);
        assert_eq!(lambda_return(5.0, 0.9, 0), 0.0);
    }

    #[test]
    fn lambda_return_approaches_ut_for_long_horizons() {
        let lr = lambda_return(1.0, 0.9, 1000);
        assert!((lr - 1.0).abs() < 1e-12);
    }

    #[test]
    fn full_pipeline_shape_and_sign() {
        let cfg = ReturnConfig::default();
        // Monotonically improving scores → all λ-returns positive.
        let out = returns_from_scores(&[0.5, 0.6, 0.7, 0.8], 0.45, &cfg);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|&v| v > 0.0), "{out:?}");
        // Degrading scores → negative returns eventually.
        let bad = returns_from_scores(&[0.4, 0.3, 0.2], 0.45, &cfg);
        assert!(bad.iter().all(|&v| v < 0.0), "{bad:?}");
    }
}
