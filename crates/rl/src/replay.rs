//! Replay buffer — stage 1 of the paper's two-stage training stores
//! "potentially good actions" (feature transformations the FPE model judged
//! positive) here, and stage 2 replays them against the real downstream
//! task (Algorithm 2, lines 7 and 16).

use serde::{Deserialize, Serialize};

/// A bounded FIFO replay buffer with priority eviction: when full, the entry
/// with the *lowest* priority is evicted first, so the most promising
/// transformations survive stage 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplayBuffer<T> {
    capacity: usize,
    entries: Vec<(f64, T)>,
}

impl<T> ReplayBuffer<T> {
    /// New buffer holding at most `capacity` entries (min 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Maximum size.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Insert with a priority (e.g. the FPE positive-class probability).
    /// When full, the lowest-priority entry is evicted — which may be the
    /// incoming one.
    pub fn push(&mut self, priority: f64, item: T) {
        if self.entries.len() < self.capacity {
            self.entries.push((priority, item));
            return;
        }
        // Find current minimum.
        let (min_idx, min_p) = self
            .entries
            .iter()
            .enumerate()
            .map(|(i, (p, _))| (i, *p))
            .fold(
                (0, f64::INFINITY),
                |acc, cur| {
                    if cur.1 < acc.1 {
                        cur
                    } else {
                        acc
                    }
                },
            );
        if priority > min_p {
            self.entries[min_idx] = (priority, item);
        }
    }

    /// Iterate entries from highest to lowest priority.
    pub fn iter_by_priority(&self) -> impl Iterator<Item = (f64, &T)> {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| {
            self.entries[b]
                .0
                .partial_cmp(&self.entries[a].0)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        order
            .into_iter()
            .map(|i| (self.entries[i].0, &self.entries[i].1))
    }

    /// Drain all entries, highest priority first.
    pub fn drain_by_priority(&mut self) -> Vec<(f64, T)> {
        let mut out = std::mem::take(&mut self.entries);
        out.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap_or(std::cmp::Ordering::Equal));
        out
    }

    /// Remove everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut b = ReplayBuffer::new(3);
        assert!(b.is_empty());
        b.push(0.5, "a");
        b.push(0.9, "b");
        assert_eq!(b.len(), 2);
        assert_eq!(b.capacity(), 3);
    }

    #[test]
    fn eviction_drops_lowest_priority() {
        let mut b = ReplayBuffer::new(2);
        b.push(0.1, "low");
        b.push(0.9, "high");
        b.push(0.5, "mid"); // evicts "low"
        let items: Vec<&str> = b.iter_by_priority().map(|(_, &s)| s).collect();
        assert_eq!(items, vec!["high", "mid"]);
    }

    #[test]
    fn incoming_lower_than_all_is_rejected() {
        let mut b = ReplayBuffer::new(2);
        b.push(0.8, "a");
        b.push(0.9, "b");
        b.push(0.1, "c"); // worse than everything already stored
        let items: Vec<&str> = b.iter_by_priority().map(|(_, &s)| s).collect();
        assert_eq!(items, vec!["b", "a"]);
    }

    #[test]
    fn drain_sorts_descending() {
        let mut b = ReplayBuffer::new(5);
        for (p, v) in [(0.3, 3), (0.9, 9), (0.1, 1), (0.7, 7)] {
            b.push(p, v);
        }
        let drained: Vec<i32> = b.drain_by_priority().into_iter().map(|(_, v)| v).collect();
        assert_eq!(drained, vec![9, 7, 3, 1]);
        assert!(b.is_empty());
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut b = ReplayBuffer::new(0);
        b.push(1.0, "x");
        assert_eq!(b.len(), 1);
        b.push(2.0, "y");
        assert_eq!(b.len(), 1);
        assert_eq!(b.iter_by_priority().next().unwrap().1, &"y");
    }

    #[test]
    fn clear_empties() {
        let mut b = ReplayBuffer::new(2);
        b.push(0.5, 1);
        b.clear();
        assert!(b.is_empty());
    }
}
