//! The RNN policy agent (paper Figure 4): one recurrent cell per original
//! feature whose hidden state carries the action-probability context from
//! round to round, a softmax head over the transformation operators, and a
//! REINFORCE update implementing the paper's Eq. (1) loss
//!
//! ```text
//! L(θ, h, r) = −r·log π(a) − β·H(π) + λ‖θ‖²
//! ```
//!
//! (the paper writes the policy-gradient and entropy terms with informal
//! signs; we use the standard convention where minimising `L` ascends the
//! reward-weighted log-likelihood and *encourages* exploration via the
//! entropy bonus `H`, and `λ‖θ‖²` is the weight decay the paper's third
//! term specifies).
//!
//! Backpropagation through time is truncated at one step: the previous
//! hidden state is treated as a constant input, which is the standard
//! cheap approximation for policy RNNs of this size.

use crate::adam::Adam;
use crate::error::{Result, RlError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Policy hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Dimension of the state embedding fed to the cell.
    pub state_dim: usize,
    /// Hidden width of the recurrent cell.
    pub hidden_dim: usize,
    /// Number of discrete actions (E-AFE: 9 transformation operators).
    pub n_actions: usize,
    /// Adam learning rate (paper: 0.01).
    pub lr: f64,
    /// Entropy-bonus coefficient β.
    pub entropy_coef: f64,
    /// L2 weight decay λ.
    pub l2: f64,
    /// Initialisation seed.
    pub seed: u64,
}

impl Default for PolicyConfig {
    fn default() -> Self {
        Self {
            state_dim: 8,
            hidden_dim: 16,
            n_actions: 9,
            lr: 0.01,
            entropy_coef: 0.01,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// Everything the backward pass needs about one forward step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepCache {
    /// State embedding fed in.
    pub x: Vec<f64>,
    /// Hidden state before the step.
    pub h_prev: Vec<f64>,
    /// Hidden state after the step (post-tanh).
    pub h: Vec<f64>,
    /// Action probabilities.
    pub probs: Vec<f64>,
    /// The sampled action.
    pub action: usize,
}

/// A recurrent softmax policy over a discrete action set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RnnPolicy {
    /// Hyper-parameters.
    pub config: PolicyConfig,
    wx: Vec<Vec<f64>>, // hidden × state
    wh: Vec<Vec<f64>>, // hidden × hidden
    bh: Vec<f64>,
    wo: Vec<Vec<f64>>, // actions × hidden
    bo: Vec<f64>,
    hidden: Vec<f64>,
    opt: Adam,
}

impl RnnPolicy {
    /// New policy with uniform initial action distribution (paper: "for the
    /// first round generation, we set the action probability distribution as
    /// uniform") — achieved by zero-initialising the output head.
    pub fn new(config: PolicyConfig) -> Result<Self> {
        if config.state_dim == 0 || config.hidden_dim == 0 || config.n_actions == 0 {
            return Err(RlError::InvalidParam(
                "state_dim, hidden_dim and n_actions must be > 0".into(),
            ));
        }
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut mat = |rows: usize, cols: usize, scale: f64| -> Vec<Vec<f64>> {
            (0..rows)
                .map(|_| (0..cols).map(|_| rng.gen_range(-scale..scale)).collect())
                .collect()
        };
        let sx = (1.0 / config.state_dim as f64).sqrt();
        let sh = (1.0 / config.hidden_dim as f64).sqrt();
        let wx = mat(config.hidden_dim, config.state_dim, sx);
        let wh = mat(config.hidden_dim, config.hidden_dim, sh);
        let n_params = config.hidden_dim * (config.state_dim + config.hidden_dim + 1)
            + config.n_actions * (config.hidden_dim + 1);
        Ok(Self {
            config,
            wx,
            wh,
            bh: vec![0.0; config.hidden_dim],
            wo: vec![vec![0.0; config.hidden_dim]; config.n_actions],
            bo: vec![0.0; config.n_actions],
            hidden: vec![0.0; config.hidden_dim],
            opt: Adam::new(n_params, config.lr),
        })
    }

    /// Reset the recurrent state (start of an episode).
    pub fn reset(&mut self) {
        self.hidden.iter_mut().for_each(|h| *h = 0.0);
    }

    /// Current action probabilities for a state without advancing the
    /// recurrent state.
    pub fn action_probs(&self, x: &[f64]) -> Result<Vec<f64>> {
        let (_, probs) = self.forward(x)?;
        Ok(probs)
    }

    fn forward(&self, x: &[f64]) -> Result<(Vec<f64>, Vec<f64>)> {
        if x.len() != self.config.state_dim {
            return Err(RlError::DimensionMismatch {
                expected: self.config.state_dim,
                got: x.len(),
            });
        }
        let h: Vec<f64> = (0..self.config.hidden_dim)
            .map(|i| {
                let a = self.bh[i] + dot(&self.wx[i], x) + dot(&self.wh[i], &self.hidden);
                a.tanh()
            })
            .collect();
        let logits: Vec<f64> = self
            .wo
            .iter()
            .zip(&self.bo)
            .map(|(row, b)| b + dot(row, &h))
            .collect();
        Ok((h, softmax(&logits)))
    }

    /// Advance one step: compute the action distribution, sample an action,
    /// update the recurrent state, and return the cache for learning.
    pub fn step(&mut self, x: &[f64], rng: &mut impl Rng) -> Result<StepCache> {
        let (h, probs) = self.forward(x)?;
        let action = sample_categorical(&probs, rng);
        let cache = StepCache {
            x: x.to_vec(),
            h_prev: self.hidden.clone(),
            h: h.clone(),
            probs,
            action,
        };
        self.hidden = h;
        Ok(cache)
    }

    /// REINFORCE update over an episode of (step, λ-return) pairs
    /// (paper Eq. 12 with the Eq. 1 loss). Returns the mean loss.
    pub fn update(&mut self, steps: &[(StepCache, f64)]) -> Result<f64> {
        if steps.is_empty() {
            return Ok(0.0);
        }
        let cfg = self.config;
        let mut gwx = vec![vec![0.0; cfg.state_dim]; cfg.hidden_dim];
        let mut gwh = vec![vec![0.0; cfg.hidden_dim]; cfg.hidden_dim];
        let mut gbh = vec![0.0; cfg.hidden_dim];
        let mut gwo = vec![vec![0.0; cfg.hidden_dim]; cfg.n_actions];
        let mut gbo = vec![0.0; cfg.n_actions];
        let mut total_loss = 0.0;

        for (cache, ret) in steps {
            if cache.x.len() != cfg.state_dim || cache.probs.len() != cfg.n_actions {
                return Err(RlError::DimensionMismatch {
                    expected: cfg.state_dim,
                    got: cache.x.len(),
                });
            }
            let p = &cache.probs;
            let entropy: f64 = -p
                .iter()
                .filter(|&&v| v > 0.0)
                .map(|&v| v * v.ln())
                .sum::<f64>();
            total_loss += -ret * p[cache.action].max(1e-15).ln() - cfg.entropy_coef * entropy;

            // dL/dlogit_j = ret·(p_j − δ_aj)  +  β·p_j·(ln p_j + H)
            let dlogits: Vec<f64> = (0..cfg.n_actions)
                .map(|j| {
                    let pg = ret * (p[j] - f64::from(u8::from(j == cache.action)));
                    let ent = cfg.entropy_coef * p[j] * (p[j].max(1e-15).ln() + entropy);
                    pg + ent
                })
                .collect();

            // Head gradients and dL/dh.
            let mut dh = vec![0.0; cfg.hidden_dim];
            for (j, &dl) in dlogits.iter().enumerate() {
                gbo[j] += dl;
                for (i, &hi) in cache.h.iter().enumerate() {
                    gwo[j][i] += dl * hi;
                    dh[i] += dl * self.wo[j][i];
                }
            }
            // Through tanh into the cell (truncated BPTT-1).
            for i in 0..cfg.hidden_dim {
                let da = dh[i] * (1.0 - cache.h[i] * cache.h[i]);
                gbh[i] += da;
                for (k, &xk) in cache.x.iter().enumerate() {
                    gwx[i][k] += da * xk;
                }
                for (k, &hk) in cache.h_prev.iter().enumerate() {
                    gwh[i][k] += da * hk;
                }
            }
        }

        let scale = 1.0 / steps.len() as f64;
        let mut params = Vec::new();
        let mut grads = Vec::new();
        let pack = |w: &[Vec<f64>], g: &[Vec<f64>], params: &mut Vec<f64>, grads: &mut Vec<f64>| {
            for (wr, gr) in w.iter().zip(g) {
                for (&wv, &gv) in wr.iter().zip(gr) {
                    params.push(wv);
                    grads.push(gv * scale + cfg.l2 * wv);
                }
            }
        };
        pack(&self.wx, &gwx, &mut params, &mut grads);
        pack(&self.wh, &gwh, &mut params, &mut grads);
        for (&b, &g) in self.bh.iter().zip(&gbh) {
            params.push(b);
            grads.push(g * scale);
        }
        pack(&self.wo, &gwo, &mut params, &mut grads);
        for (&b, &g) in self.bo.iter().zip(&gbo) {
            params.push(b);
            grads.push(g * scale);
        }

        self.opt.step(&mut params, &grads);

        // Unpack.
        let mut it = params.into_iter();
        for row in self.wx.iter_mut().chain(self.wh.iter_mut()) {
            for w in row {
                *w = it.next().expect("param count consistent");
            }
        }
        for b in &mut self.bh {
            *b = it.next().expect("param count consistent");
        }
        for row in &mut self.wo {
            for w in row {
                *w = it.next().expect("param count consistent");
            }
        }
        for b in &mut self.bo {
            *b = it.next().expect("param count consistent");
        }
        debug_assert!(it.next().is_none());

        Ok(total_loss * scale)
    }
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Numerically-stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Sample an index from a probability vector.
pub fn sample_categorical(probs: &[f64], rng: &mut impl Rng) -> usize {
    let u: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in probs.iter().enumerate() {
        acc += p;
        if u < acc {
            return i;
        }
    }
    probs.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn policy(n_actions: usize) -> RnnPolicy {
        RnnPolicy::new(PolicyConfig {
            state_dim: 3,
            hidden_dim: 8,
            n_actions,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn initial_distribution_is_uniform() {
        let p = policy(4);
        let probs = p.action_probs(&[0.1, -0.2, 0.5]).unwrap();
        for &v in &probs {
            assert!((v - 0.25).abs() < 1e-12, "{probs:?}");
        }
    }

    #[test]
    fn step_advances_hidden_state() {
        let mut p = policy(4);
        let mut rng = StdRng::seed_from_u64(1);
        let c1 = p.step(&[1.0, 0.0, 0.0], &mut rng).unwrap();
        assert_eq!(c1.h_prev, vec![0.0; 8]);
        let c2 = p.step(&[1.0, 0.0, 0.0], &mut rng).unwrap();
        assert_eq!(c2.h_prev, c1.h);
        p.reset();
        let c3 = p.step(&[1.0, 0.0, 0.0], &mut rng).unwrap();
        assert_eq!(c3.h_prev, vec![0.0; 8]);
    }

    #[test]
    fn rejects_bad_dimensions() {
        assert!(RnnPolicy::new(PolicyConfig {
            n_actions: 0,
            ..Default::default()
        })
        .is_err());
        let mut p = policy(4);
        let mut rng = StdRng::seed_from_u64(0);
        assert!(p.step(&[1.0], &mut rng).is_err());
        assert!(p.action_probs(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn positive_reward_increases_action_probability() {
        let mut p = policy(3);
        let mut rng = StdRng::seed_from_u64(2);
        let x = [0.5, -0.5, 1.0];
        let before = p.action_probs(&x).unwrap()[1];
        // Repeatedly reward action 1.
        for _ in 0..200 {
            p.reset();
            let mut cache = p.step(&x, &mut rng).unwrap();
            cache.action = 1;
            p.update(&[(cache, 1.0)]).unwrap();
        }
        p.reset();
        let after = p.action_probs(&x).unwrap()[1];
        assert!(after > before + 0.2, "before {before:.3}, after {after:.3}");
    }

    #[test]
    fn negative_reward_decreases_action_probability() {
        let mut p = policy(3);
        let mut rng = StdRng::seed_from_u64(3);
        let x = [0.5, -0.5, 1.0];
        for _ in 0..200 {
            p.reset();
            let mut cache = p.step(&x, &mut rng).unwrap();
            cache.action = 0;
            p.update(&[(cache, -1.0)]).unwrap();
        }
        p.reset();
        let after = p.action_probs(&x).unwrap()[0];
        assert!(after < 0.2, "after {after:.3}");
    }

    #[test]
    fn entropy_bonus_keeps_distribution_soft() {
        // With a strong entropy coefficient, even persistent rewards should
        // not fully collapse the distribution.
        let mut p = RnnPolicy::new(PolicyConfig {
            state_dim: 3,
            hidden_dim: 8,
            n_actions: 3,
            entropy_coef: 0.5,
            ..Default::default()
        })
        .unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let x = [1.0, 1.0, 1.0];
        for _ in 0..300 {
            p.reset();
            let mut cache = p.step(&x, &mut rng).unwrap();
            cache.action = 2;
            p.update(&[(cache, 1.0)]).unwrap();
        }
        p.reset();
        let probs = p.action_probs(&x).unwrap();
        assert!(probs[2] < 0.95, "collapsed anyway: {probs:?}");
        assert!(probs[2] > 1.0 / 3.0, "did not learn at all: {probs:?}");
    }

    #[test]
    fn update_on_empty_episode_is_noop() {
        let mut p = policy(3);
        assert_eq!(p.update(&[]).unwrap(), 0.0);
    }

    #[test]
    fn sample_categorical_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(5);
        let probs = [0.1, 0.7, 0.2];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[sample_categorical(&probs, &mut rng)] += 1;
        }
        assert!((counts[1] as f64 / 10_000.0 - 0.7).abs() < 0.03);
    }

    #[test]
    fn softmax_stability() {
        let p = softmax(&[1e6, 1e6]);
        assert!((p[0] - 0.5).abs() < 1e-12);
    }
}
