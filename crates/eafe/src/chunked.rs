//! Chunk-at-a-time E-AFE execution over an out-of-core [`ChunkedFrame`]:
//! [`Engine::run_chunked`] and the stepped
//! [`Engine::start_chunked`] / [`Engine::step_chunked`] /
//! [`Engine::finish_chunked`] mirror of [`crate::step`].
//!
//! The flat engine keeps every subgroup member — originals and accepted
//! candidates alike — as an in-RAM `Vec<f64>`, and every *rejected*
//! candidate is also fully materialized just to be FPE-scored. At 10M+
//! rows that working set is what runs out of memory first. This driver
//! keeps all column data as compressed chunks governed by the frame's
//! [`tabular::FrameBudget`]:
//!
//! - candidates are generated chunk-at-a-time ([`Operator::apply_chunk`]
//!   plus the [`Operator::column_bounds`] prepass for min-max
//!   normalisation), encoded per chunk, and never exist as a flat column;
//! - FPE gate scoring streams those chunks through the MinHash compressor
//!   ([`minhash::WeightBounds`] pass, then [`minhash::SignatureStream`]),
//!   so stage-1 — which by design never touches the downstream task —
//!   runs without materializing anything;
//! - chunk encoding fans out over the [`runtime::WorkerPool`] with
//!   results merged in chunk-index order, so 1-thread ≡ N-thread.
//!
//! Downstream evaluations still materialize the selected frame plus the
//! candidate column transiently (the CV learners need flat data), and the
//! per-chunk transforms/folds replay the flat path's exact expression
//! sequences, so a chunked run is **bit-identical** to
//! [`Engine::run_full`] on the materialized frame: same RNG streams, same
//! candidates, same scores, same accepted features. The parity tests
//! below pin that contract for every gate/stage combination.
//!
//! What is deliberately *not* mirrored: [`crate::SearchState`]'s serde
//! checkpointing (a chunked search lives and dies with its frame handle;
//! checkpoint/resume stays on the flat path) and the signature cache
//! (streamed sketches bypass `runtime::sigcache` — scores are bitwise
//! unchanged, the cache only ever short-circuits recomputation).

use crate::config::CachedEvaluator;
use crate::engine::{Engine, Gate};
use crate::error::{EafeError, Result};
use crate::fpe::repr::FeatureRepr;
use crate::fpe::FpeModel;
use crate::ops::Operator;
use crate::report::{
    EpochPoint, EpochReport, EvalCounter, PhaseTimer, RunResult, SearchStage, WeightedFeature,
};
use crate::reward::SurrogateReward;
use crate::state::EngineState;
use crate::step::{AdaptiveGate, SearchPhase};
use minhash::{SampleCompressor, WeightBounds};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl::{returns_from_scores, rewards_to_go, score_gains, ReplayBuffer, RnnPolicy, StepCache};
use runtime::WorkerPool;
use tabular::{ChunkEncoding, ChunkedFrame, Column, DataFrame};

/// A generated candidate held as compressed chunks — the chunked
/// counterpart of [`crate::GeneratedFeature`], which never exists as a
/// flat `Vec<f64>`.
#[derive(Debug, Clone)]
struct ChunkedCandidate {
    /// Expression name (same formatting as the flat path).
    name: String,
    /// Composition depth.
    order: usize,
    /// Per-chunk encodings, in chunk-index order.
    chunks: Vec<ChunkEncoding>,
    /// Constant/non-finite — mirrors `GeneratedFeature::is_degenerate`.
    degenerate: bool,
}

/// An accepted generated feature: where its chunks live in the frame.
#[derive(Debug, Clone)]
struct GenRef {
    /// Column index in the search's [`ChunkedFrame`].
    col: usize,
    /// Composition depth.
    order: usize,
    /// Expression name.
    name: String,
}

/// One agent's subgroup, referencing columns of the chunked frame instead
/// of owning flat copies (mirrors [`crate::FeatureSubgroup`]).
#[derive(Debug, Clone)]
struct ChunkedSubgroup {
    /// The original feature's column index (order 0).
    origin_col: usize,
    /// The original feature's name (used by `feature_origin`).
    origin_name: String,
    /// Accepted generated features, in acceptance order.
    generated: Vec<GenRef>,
}

impl ChunkedSubgroup {
    fn len(&self) -> usize {
        1 + self.generated.len()
    }

    /// Member `(frame column, order, name)`; index 0 is the original.
    fn member(&self, idx: usize) -> (usize, usize, &str) {
        if idx == 0 {
            (self.origin_col, 0, self.origin_name.as_str())
        } else {
            let g = &self.generated[idx - 1];
            (g.col, g.order, g.name.as_str())
        }
    }

    /// Same draw as `FeatureSubgroup::sample_member`.
    fn sample_member(&self, rng: &mut impl Rng) -> usize {
        rng.gen_range(0..self.len())
    }

    fn mean_order(&self) -> f64 {
        let total: usize = self.generated.iter().map(|g| g.order).sum();
        total as f64 / self.len() as f64
    }
}

/// A running (or finished) chunked search: the out-of-core mirror of
/// [`crate::SearchState`], advanced by [`Engine::step_chunked`].
pub struct ChunkedSearch {
    /// Sanitized base frame; accepted candidates are appended as columns.
    frame: ChunkedFrame,
    /// Base (original-feature) column count; agents = base columns.
    n_base: usize,
    subgroups: Vec<ChunkedSubgroup>,
    current_score: f64,
    last_reward: f64,
    policies: Vec<RnnPolicy>,
    rng: StdRng,
    gate_rng: StdRng,
    replay: ReplayBuffer<ChunkedCandidate>,
    fpe_gate: AdaptiveGate,
    phase: SearchPhase,
    base_score: f64,
    best_score: f64,
    trace: Vec<EpochPoint>,
    counter: EvalCounter,
    epochs_since_improvement: usize,
    max_generated: usize,
    slices: usize,
    weighted: Vec<WeightedFeature>,
    generation_secs: f64,
    eval_secs: f64,
    total_secs: f64,
    cache_hits: u64,
    cache_misses: u64,
    evaluator: CachedEvaluator,
}

impl ChunkedSearch {
    /// True once the search has consumed all its epochs (or stopped early).
    pub fn is_done(&self) -> bool {
        self.phase == SearchPhase::Done
    }

    /// Current position in the search.
    pub fn phase(&self) -> SearchPhase {
        self.phase
    }

    /// Dataset name this search runs on.
    pub fn dataset(&self) -> &str {
        &self.frame.name
    }

    /// Downstream score of the raw feature set.
    pub fn base_score(&self) -> f64 {
        self.base_score
    }

    /// Best downstream score achieved so far.
    pub fn best_score(&self) -> f64 {
        self.best_score
    }

    /// Cumulative downstream evaluations so far.
    pub fn downstream_evals(&self) -> usize {
        self.counter.evaluated
    }

    /// Cumulative features generated so far (before any gate).
    pub fn features_generated(&self) -> usize {
        self.counter.generated
    }

    /// Best-so-far weighted feature set, in acceptance order.
    pub fn best_features(&self) -> &[WeightedFeature] {
        &self.weighted
    }

    /// The chunked frame the search runs on (base + accepted columns);
    /// its [`ChunkedFrame::stats`] expose residency/spill traffic.
    pub fn frame(&self) -> &ChunkedFrame {
        &self.frame
    }

    fn n_generated(&self) -> usize {
        self.subgroups.iter().map(|s| s.generated.len()).sum()
    }

    /// Mirror of `EngineState::embedding` over subgroup refs.
    fn embedding(
        &self,
        agent: usize,
        step: usize,
        steps_per_epoch: usize,
        epoch_frac: f64,
        max_order: usize,
    ) -> Vec<f64> {
        let sub = &self.subgroups[agent];
        vec![
            1.0, // bias
            (sub.len() as f64).ln() / 4.0,
            (self.last_reward * 10.0).clamp(-1.0, 1.0),
            self.current_score.clamp(-1.0, 1.0),
            sub.mean_order() / max_order.max(1) as f64,
            (step as f64 + 0.5) / steps_per_epoch.max(1) as f64,
            epoch_frac.clamp(0.0, 1.0),
            (agent as f64 + 0.5) / self.subgroups.len().max(1) as f64,
        ]
    }

    /// Mirror of `feature_origin`: the subgroup whose original feature
    /// name appears first in the expression (falls back to 0).
    fn feature_origin(&self, expr: &str) -> usize {
        self.subgroups
            .iter()
            .position(|s| expr.contains(s.origin_name.as_str()))
            .unwrap_or(0)
    }

    /// Accept a candidate: its chunks move into the budgeted frame (and
    /// from there spill to the store under memory pressure).
    fn accept(&mut self, origin: usize, cand: ChunkedCandidate) -> Result<()> {
        let col = self.frame.push_column_chunks(&cand.name, cand.chunks)?;
        self.subgroups[origin].generated.push(GenRef {
            col,
            order: cand.order,
            name: cand.name,
        });
        Ok(())
    }

    /// Materialize the selected frame (base columns + accepted features in
    /// subgroup order) — transient, for downstream evaluation only. The
    /// column order and names match `EngineState::selected_frame` exactly,
    /// so the evaluator's content-addressed cache keys coincide too.
    fn selected_dataframe(&self) -> Result<DataFrame> {
        let mut cols = Vec::with_capacity(self.n_base + self.n_generated());
        for j in 0..self.n_base {
            let mut values = Vec::new();
            self.frame.materialize_column(j, &mut values)?;
            cols.push(Column::new(self.frame.column_name(j)?.to_string(), values));
        }
        for sub in &self.subgroups {
            for g in &sub.generated {
                let mut values = Vec::new();
                self.frame.materialize_column(g.col, &mut values)?;
                cols.push(Column::new(g.name.clone(), values));
            }
        }
        Ok(DataFrame::new(
            self.frame.name.clone(),
            cols,
            self.frame.label().clone(),
        )?)
    }

    /// The selected frame plus one candidate column — what one downstream
    /// evaluation sees.
    fn candidate_frame(&self, cand: &ChunkedCandidate) -> Result<DataFrame> {
        let selected = self.selected_dataframe()?;
        let mut values = Vec::with_capacity(self.frame.n_rows());
        for enc in &cand.chunks {
            enc.fold_values((), |(), v| values.push(v));
        }
        let col = Column::new(cand.name.clone(), values);
        Ok(selected.with_extra_columns(std::slice::from_ref(&col))?)
    }
}

/// Generate one candidate for agent `j`: the chunked mirror of
/// `generate_candidate` — same member draws, same expression name, same
/// values chunk by chunk.
fn generate_candidate_chunked(
    frame: &ChunkedFrame,
    sub: &ChunkedSubgroup,
    op: Operator,
    rng: &mut impl Rng,
) -> Result<ChunkedCandidate> {
    let ia = sub.sample_member(rng);
    let ib = sub.sample_member(rng);
    let a = sub.member(ia);
    let b = sub.member(ib);
    generate_chunked(frame, op, a, b)
}

/// Apply `op` to two frame columns chunk-at-a-time: decode each chunk
/// into pooled scratch, transform with [`Operator::apply_chunk`], and
/// re-encode — in parallel across chunks when the pool is active, merged
/// in chunk-index order. Values are bit-identical to
/// `GeneratedFeature::generate` on the materialized parents.
fn generate_chunked(
    frame: &ChunkedFrame,
    op: Operator,
    a: (usize, usize, &str),
    b: (usize, usize, &str),
) -> Result<ChunkedCandidate> {
    telemetry::count(op.counter_name(), 1);
    let (a_col, a_order, a_name) = a;
    let (b_col, b_order, b_name) = b;
    let (name, order) = if op.is_unary() {
        (format!("{}({})", op.symbol(), a_name), a_order + 1)
    } else {
        (
            format!("({}{}{})", a_name, op.symbol(), b_name),
            a_order.max(b_order) + 1,
        )
    };
    // Whole-column prepass for min-max normalisation: one sequential
    // row-order fold per accumulator, the exact `column_bounds` chains.
    let bounds = if op.needs_bounds() {
        Some(
            frame.fold_column(a_col, (f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
                (lo.min(v), hi.max(v))
            })?,
        )
    } else {
        None
    };

    let one = |k: usize| -> Result<(ChunkEncoding, f64, f64)> {
        let ea = frame.chunk(a_col, k)?;
        let mut va = runtime::scratch_f64_with_capacity(ea.len());
        ea.decode_into(&mut va);
        let mut out = runtime::scratch_f64_with_capacity(va.len());
        if op.is_unary() {
            op.apply_chunk(&va, &[], bounds, &mut out);
        } else {
            let eb = frame.chunk(b_col, k)?;
            let mut vb = runtime::scratch_f64_with_capacity(eb.len());
            eb.decode_into(&mut vb);
            op.apply_chunk(&va, &vb, bounds, &mut out);
        }
        // Per-chunk min/max for the degeneracy check; combined across
        // chunks in chunk-index order below. `apply_chunk` clamps every
        // output to finite, so the NaN filter of `Column::min` is moot.
        let lo = out.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = out.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Ok((ChunkEncoding::encode(&out), lo, hi))
    };

    let n_chunks = frame.n_chunks();
    // Same shape as the binned-histogram gate: parallel encode only when
    // there are multiple chunks and enough rows to amortize dispatch.
    let parallel = runtime::global_threads() != 1 && n_chunks >= 2 && frame.n_rows() >= 65_536;
    let parts: Vec<Result<(ChunkEncoding, f64, f64)>> = if parallel {
        WorkerPool::new().map((0..n_chunks).collect(), |_ctx, k| one(k))
    } else {
        (0..n_chunks).map(one).collect()
    };

    let mut chunks = Vec::with_capacity(n_chunks);
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for part in parts {
        let (enc, clo, chi) = part?;
        lo = lo.min(clo);
        hi = hi.max(chi);
        chunks.push(enc);
    }
    // Mirrors `is_degenerate`: outputs are always finite (clamped), so
    // only the `is_constant(1e-12)` arm can fire. min/max are
    // order-insensitive over finite values up to the sign of zero, which
    // cannot change the `hi - lo < eps` verdict.
    let degenerate = !(hi - lo).is_finite() || hi - lo < 1e-12;
    Ok(ChunkedCandidate {
        name,
        order,
        chunks,
        degenerate,
    })
}

/// FPE-score a chunked candidate. The MinHash representation streams the
/// chunks (two passes: weight bounds, then sketch + gather) and is
/// bit-identical to `FpeModel::score_feature` on the materialized column;
/// other representations need the full flat values and fall back to a
/// transient pooled decode.
fn score_candidate(
    fpe: &FpeModel,
    cand: &ChunkedCandidate,
    chunk_rows: usize,
    n_rows: usize,
) -> Result<f64> {
    match fpe.repr() {
        FeatureRepr::MinHash(c) => {
            let mut buf = runtime::scratch_f64_with_capacity(chunk_rows);
            let mut bounds = WeightBounds::new();
            for enc in &cand.chunks {
                enc.decode_into(&mut buf);
                bounds.absorb(&buf);
            }
            let mut stream = c.begin_signature(bounds);
            for enc in &cand.chunks {
                enc.decode_into(&mut buf);
                stream.absorb(&buf);
            }
            let sig = stream.finish()?;
            let mut compressed: Vec<f64> = sig
                .keys()
                .map(|k| {
                    let enc = &cand.chunks[k / chunk_rows];
                    SampleCompressor::gather_value(enc.value_at(k % chunk_rows))
                })
                .collect();
            SampleCompressor::normalize(&mut compressed);
            fpe.score_compressed(compressed)
        }
        _ => {
            let mut flat = runtime::scratch_f64_with_capacity(n_rows);
            for enc in &cand.chunks {
                enc.fold_values((), |(), v| flat.push(v));
            }
            fpe.score_feature(&flat)
        }
    }
}

impl Engine {
    /// Open a chunked search: sanitize the frame in place (chunk by
    /// chunk), score the raw feature set, and set up policies and RNG
    /// streams — the out-of-core mirror of [`Engine::start`]. Takes the
    /// frame by value: the search owns it, appends accepted columns to
    /// it, and hands it back (reordered) from [`Engine::finish_chunked`].
    pub fn start_chunked(&self, mut frame: ChunkedFrame) -> Result<ChunkedSearch> {
        self.config.validate()?;
        if matches!(&self.gate, Gate::RandomDrop { rate } if !(0.0..=1.0).contains(rate)) {
            return Err(EafeError::InvalidConfig(
                "drop rate must be in [0,1]".into(),
            ));
        }
        if self.two_stage && !matches!(self.gate, Gate::Fpe(_)) {
            return Err(EafeError::InvalidConfig(
                "two-stage training requires an FPE gate".into(),
            ));
        }
        frame.sanitize()?;

        let cfg = &self.config;
        let mut timer = PhaseTimer::new();
        timer.start();
        let mut counter = EvalCounter::default();
        let rng = StdRng::seed_from_u64(cfg.seed);
        let gate_rng = StdRng::seed_from_u64(runtime::derive_seed(cfg.seed, 0x67617465, 0));

        let evaluator = self.make_evaluator();
        let cache_start = evaluator.stats();

        let n_base = frame.n_cols();
        let subgroups: Vec<ChunkedSubgroup> = (0..n_base)
            .map(|j| {
                Ok(ChunkedSubgroup {
                    origin_col: j,
                    origin_name: frame.column_name(j)?.to_string(),
                    generated: Vec::new(),
                })
            })
            .collect::<Result<_>>()?;

        let mut search = ChunkedSearch {
            frame,
            n_base,
            subgroups,
            current_score: 0.0,
            last_reward: 0.0,
            policies: Vec::new(),
            rng,
            gate_rng,
            replay: ReplayBuffer::new(cfg.replay_capacity),
            fpe_gate: AdaptiveGate::new(256),
            phase: SearchPhase::Done,
            base_score: 0.0,
            best_score: 0.0,
            trace: Vec::new(),
            counter: EvalCounter::default(),
            epochs_since_improvement: 0,
            max_generated: 0,
            slices: 0,
            weighted: Vec::new(),
            generation_secs: 0.0,
            eval_secs: 0.0,
            total_secs: 0.0,
            cache_hits: 0,
            cache_misses: 0,
            evaluator,
        };

        let base_score = {
            let _eval_span = telemetry::span("engine.evaluate");
            let base_frame = search.selected_dataframe()?;
            timer.evaluation(|| search.evaluator.evaluate(&base_frame))?
        };
        counter.evaluate();

        let n_agents = search.subgroups.len();
        let max_generated = ((n_agents as f64 * cfg.max_generated_ratio).ceil() as usize).max(1);
        let mut policy_cfg = cfg.policy;
        policy_cfg.state_dim = EngineState::EMBEDDING_DIM;
        policy_cfg.n_actions = Operator::ALL.len();
        let policies: Vec<RnnPolicy> = (0..n_agents)
            .map(|j| {
                RnnPolicy::new(rl::PolicyConfig {
                    seed: cfg.seed ^ (j as u64).wrapping_mul(0x9E3779B9),
                    ..policy_cfg
                })
            })
            .collect::<rl::Result<_>>()?;

        let trace = vec![EpochPoint {
            epoch: 0,
            score: base_score,
            downstream_evals: counter.evaluated,
            elapsed_secs: timer.total_secs(),
        }];

        let phase = if self.two_stage {
            if cfg.stage1_epochs > 0 {
                SearchPhase::Stage1 { epoch: 0 }
            } else {
                SearchPhase::Seed
            }
        } else if cfg.stage2_epochs > 0 {
            SearchPhase::Stage2 { epoch: 0 }
        } else {
            SearchPhase::Done
        };

        let cache_delta = search.evaluator.stats().since(&cache_start);
        search.current_score = base_score;
        search.policies = policies;
        search.phase = phase;
        search.base_score = base_score;
        search.best_score = base_score;
        search.trace = trace;
        search.counter = counter;
        search.max_generated = max_generated;
        search.generation_secs = timer.generation_secs();
        search.eval_secs = timer.eval_secs();
        search.total_secs = timer.total_secs();
        search.cache_hits = cache_delta.hits;
        search.cache_misses = cache_delta.misses;
        Ok(search)
    }

    /// Run one epoch-granular slice of a chunked search — the out-of-core
    /// mirror of [`Engine::step`].
    pub fn step_chunked(&self, search: &mut ChunkedSearch) -> Result<EpochReport> {
        let (stage, epoch) = match search.phase {
            SearchPhase::Done => return Ok(self.report_chunked(search, SearchStage::Stage2, 0)),
            SearchPhase::Stage1 { epoch } => (SearchStage::Stage1, epoch),
            SearchPhase::Seed => (SearchStage::Seed, 0),
            SearchPhase::Stage2 { epoch } => (SearchStage::Stage2, epoch),
        };
        let mut timer = PhaseTimer::new();
        timer.start();
        let cache_start = search.evaluator.stats();

        match stage {
            SearchStage::Stage1 => self.chunked_stage1(search, &mut timer, epoch)?,
            SearchStage::Seed => self.chunked_seed(search, &mut timer)?,
            SearchStage::Stage2 => self.chunked_stage2(search, &mut timer, epoch)?,
        }

        search.slices += 1;
        search.generation_secs += timer.generation_secs();
        search.eval_secs += timer.eval_secs();
        search.total_secs += timer.total_secs();
        let delta = search.evaluator.stats().since(&cache_start);
        search.cache_hits += delta.hits;
        search.cache_misses += delta.misses;
        Ok(self.report_chunked(search, stage, epoch))
    }

    fn report_chunked(
        &self,
        search: &ChunkedSearch,
        stage: SearchStage,
        epoch: usize,
    ) -> EpochReport {
        EpochReport {
            stage,
            epoch,
            epochs_completed: search.slices,
            base_score: search.base_score,
            best_score: search.best_score,
            best_features: search.weighted.clone(),
            generated: search.counter.generated,
            downstream_evals: search.counter.evaluated,
            elapsed_secs: search.total_secs,
            done: search.phase == SearchPhase::Done,
        }
    }

    /// Stage-1 epoch over chunks: candidates are generated and
    /// FPE-scored without ever being materialized.
    fn chunked_stage1(
        &self,
        s: &mut ChunkedSearch,
        timer: &mut PhaseTimer,
        epoch: usize,
    ) -> Result<()> {
        let cfg = &self.config;
        let fpe = match &self.gate {
            Gate::Fpe(m) => m.as_ref(),
            _ => {
                return Err(EafeError::InvalidConfig(
                    "stage-1 search state requires an FPE gate".into(),
                ))
            }
        };
        let surrogate = SurrogateReward::new(s.base_score, cfg.thre);
        let total_epochs = cfg.stage1_epochs.max(1);
        let n_agents = s.subgroups.len();
        let chunk_rows = s.frame.chunk_rows();
        let n_rows = s.frame.n_rows();

        let mut epoch_span = telemetry::span("engine.stage1_epoch");
        epoch_span.field("epoch", epoch as f64);
        let epoch_frac = epoch as f64 / total_epochs as f64;
        for j in 0..n_agents {
            s.policies[j].reset();
            let mut episode: Vec<StepCache> = Vec::with_capacity(cfg.steps_per_epoch);
            let mut pseudo_scores = Vec::with_capacity(cfg.steps_per_epoch);
            for t in 0..cfg.steps_per_epoch {
                let x = s.embedding(j, t, cfg.steps_per_epoch, epoch_frac, cfg.max_order);
                let cache = timer.generation(|| s.policies[j].step(&x, &mut s.rng))?;
                let op = Operator::from_action(cache.action);
                let cand = timer.generation(|| {
                    generate_candidate_chunked(&s.frame, &s.subgroups[j], op, &mut s.rng)
                })?;
                episode.push(cache);
                s.counter.generate();
                let pseudo = if cand.degenerate || cand.order > cfg.max_order {
                    s.counter.drop_feature();
                    surrogate.pseudo_score(0.0)
                } else {
                    let p = timer.generation(|| score_candidate(fpe, &cand, chunk_rows, n_rows))?;
                    if p >= 0.5 {
                        telemetry::count("fpe.gate.accept", 1);
                        s.replay.push(p, cand);
                    } else {
                        telemetry::count("fpe.gate.reject", 1);
                        s.counter.drop_feature();
                    }
                    surrogate.pseudo_score(p)
                };
                pseudo_scores.push(pseudo);
            }
            let rets = {
                let _reward_span = telemetry::span("engine.reward");
                returns_from_scores(&pseudo_scores, s.base_score, &cfg.returns)
            };
            let steps: Vec<(StepCache, f64)> = episode.into_iter().zip(rets).collect();
            let _update_span = telemetry::span("engine.policy_update");
            timer.generation(|| s.policies[j].update(&steps))?;
        }
        s.phase = if epoch + 1 < cfg.stage1_epochs {
            SearchPhase::Stage1 { epoch: epoch + 1 }
        } else {
            SearchPhase::Seed
        };
        Ok(())
    }

    /// Seed stage 2: replay stage-1 positives against the downstream task.
    fn chunked_seed(&self, s: &mut ChunkedSearch, timer: &mut PhaseTimer) -> Result<()> {
        let cfg = &self.config;
        let n_agents = s.subgroups.len();
        let drain_budget = cfg.steps_per_epoch * n_agents;
        let drained = s.replay.drain_by_priority();
        for (_, cand) in drained.into_iter().take(drain_budget) {
            if s.n_generated() >= s.max_generated {
                break;
            }
            let candidate = s.candidate_frame(&cand)?;
            let score = {
                let _eval_span = telemetry::span("engine.evaluate");
                timer.evaluation(|| s.evaluator.evaluate(&candidate))?
            };
            s.counter.evaluate();
            if score > s.current_score {
                s.last_reward = score - s.current_score;
                s.current_score = score;
                s.best_score = s.best_score.max(score);
                s.weighted.push(WeightedFeature {
                    name: cand.name.clone(),
                    weight: s.last_reward,
                });
                let origin = s.feature_origin(&cand.name);
                s.accept(origin, cand)?;
            }
        }
        s.phase = if cfg.stage2_epochs > 0 {
            SearchPhase::Stage2 { epoch: 0 }
        } else {
            SearchPhase::Done
        };
        Ok(())
    }

    /// One stage-2 epoch over chunks.
    fn chunked_stage2(
        &self,
        s: &mut ChunkedSearch,
        timer: &mut PhaseTimer,
        epoch: usize,
    ) -> Result<()> {
        let cfg = &self.config;
        let n_agents = s.subgroups.len();
        let chunk_rows = s.frame.chunk_rows();
        let n_rows = s.frame.n_rows();

        let mut epoch_span = telemetry::span("engine.stage2_epoch");
        epoch_span.field("epoch", epoch as f64);
        let epoch_frac = epoch as f64 / cfg.stage2_epochs.max(1) as f64;
        for j in 0..n_agents {
            s.policies[j].reset();
            let episode_start_score = s.current_score;
            let mut episode: Vec<StepCache> = Vec::with_capacity(cfg.steps_per_epoch);
            let mut score_trace = Vec::with_capacity(cfg.steps_per_epoch);
            for t in 0..cfg.steps_per_epoch {
                let x = s.embedding(j, t, cfg.steps_per_epoch, epoch_frac, cfg.max_order);
                let cache = timer.generation(|| s.policies[j].step(&x, &mut s.rng))?;
                let op = Operator::from_action(cache.action);
                let cand = timer.generation(|| {
                    generate_candidate_chunked(&s.frame, &s.subgroups[j], op, &mut s.rng)
                })?;
                episode.push(cache);
                s.counter.generate();

                let structurally_ok = !cand.degenerate
                    && cand.order <= cfg.max_order
                    && s.n_generated() < s.max_generated;
                let passes_gate = structurally_ok
                    && match &self.gate {
                        Gate::Fpe(fpe) => {
                            let p = timer
                                .generation(|| score_candidate(fpe, &cand, chunk_rows, n_rows))?;
                            let pass = s.fpe_gate.observe_and_pass(p);
                            telemetry::count(
                                if pass {
                                    "fpe.gate.accept"
                                } else {
                                    "fpe.gate.reject"
                                },
                                1,
                            );
                            pass
                        }
                        Gate::RandomDrop { rate } => !s.gate_rng.gen_bool(*rate),
                        Gate::None => true,
                    };

                if !passes_gate {
                    s.counter.drop_feature();
                    score_trace.push(s.current_score);
                    continue;
                }

                let candidate = s.candidate_frame(&cand)?;
                let score = {
                    let _eval_span = telemetry::span("engine.evaluate");
                    timer.evaluation(|| s.evaluator.evaluate(&candidate))?
                };
                s.counter.evaluate();
                s.last_reward = score - s.current_score;
                if score > s.current_score {
                    s.current_score = score;
                    s.best_score = s.best_score.max(score);
                    s.weighted.push(WeightedFeature {
                        name: cand.name.clone(),
                        weight: s.last_reward,
                    });
                    s.accept(j, cand)?;
                }
                score_trace.push(score.max(s.current_score));
            }
            let rets = {
                let _reward_span = telemetry::span("engine.reward");
                if self.use_lambda_returns {
                    returns_from_scores(&score_trace, episode_start_score, &cfg.returns)
                } else {
                    let gains = score_gains(&score_trace, episode_start_score);
                    rewards_to_go(&gains, cfg.returns.gamma)
                }
            };
            let steps: Vec<(StepCache, f64)> = episode.into_iter().zip(rets).collect();
            let _update_span = telemetry::span("engine.policy_update");
            timer.generation(|| s.policies[j].update(&steps))?;
        }

        epoch_span.field("best_score", s.best_score);
        let improved = s
            .trace
            .last()
            .is_none_or(|last| s.best_score > last.score + f64::EPSILON);
        s.trace.push(EpochPoint {
            epoch: epoch + 1,
            score: s.best_score,
            downstream_evals: s.counter.evaluated,
            elapsed_secs: s.total_secs + timer.total_secs(),
        });
        if improved {
            s.epochs_since_improvement = 0;
        } else {
            s.epochs_since_improvement += 1;
        }
        let stopped_early = cfg
            .early_stop_patience
            .is_some_and(|patience| s.epochs_since_improvement >= patience);
        s.phase = if stopped_early || epoch + 1 >= cfg.stage2_epochs {
            SearchPhase::Done
        } else {
            SearchPhase::Stage2 { epoch: epoch + 1 }
        };
        Ok(())
    }

    /// Package the chunked search's best-so-far result. The engineered
    /// frame comes back as a [`ChunkedFrame`] view (no re-encoding) with
    /// columns in the flat path's selected order: base columns, then
    /// accepted features by subgroup.
    pub fn finish_chunked(&self, search: &ChunkedSearch) -> Result<(RunResult, ChunkedFrame)> {
        let order: Vec<usize> = (0..search.n_base)
            .chain(
                search
                    .subgroups
                    .iter()
                    .flat_map(|s| s.generated.iter().map(|g| g.col)),
            )
            .collect();
        let engineered = search.frame.select_columns(&order)?;
        let selected: Vec<String> = search
            .subgroups
            .iter()
            .flat_map(|s| s.generated.iter().map(|g| g.name.clone()))
            .collect();
        let result = RunResult {
            method: self.method_name.clone(),
            dataset: search.frame.name.clone(),
            base_score: search.base_score,
            best_score: search.best_score,
            trace: search.trace.clone(),
            generated_features: search.counter.generated,
            downstream_evals: search.counter.evaluated,
            selected,
            generation_secs: search.generation_secs,
            eval_secs: search.eval_secs,
            total_secs: search.total_secs,
            cache_hits: search.cache_hits,
            cache_misses: search.cache_misses,
        };
        Ok((result, engineered))
    }

    /// Run the method on an out-of-core frame — the chunked counterpart
    /// of [`Engine::run_full`], bit-identical to it on the materialized
    /// frame. Takes the frame by value (it is sanitized in place and
    /// grows the accepted columns); the engineered frame view is
    /// returned alongside the result.
    pub fn run_chunked(&self, frame: ChunkedFrame) -> Result<(RunResult, ChunkedFrame)> {
        let mut run_span = telemetry::span("engine.run");
        let mut search = self.start_chunked(frame)?;
        while !search.is_done() {
            self.step_chunked(&mut search)?;
        }
        run_span.field("generated", search.features_generated() as f64);
        run_span.field("downstream_evals", search.downstream_evals() as f64);
        run_span.field("best_score", search.best_score());
        self.finish_chunked(&search)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EafeConfig;
    use crate::fpe::{search as fpe_search, FpeSearchSpace, RawLabels};
    use minhash::HashFamily;
    use tabular::registry::public_corpus;
    use tabular::{ChunkOptions, FrameBudget, InMemoryStore, MmapStore, SynthSpec, Task};

    fn fast_config() -> EafeConfig {
        EafeConfig::fast()
    }

    fn target_frame() -> DataFrame {
        SynthSpec::new("chunked-test", 150, 5, Task::Classification)
            .with_seed(5)
            .generate()
            .unwrap()
    }

    fn chunk(frame: &DataFrame, chunk_rows: usize) -> ChunkedFrame {
        ChunkedFrame::from_dataframe(
            frame,
            ChunkOptions::default().with_chunk_rows(chunk_rows),
            Box::new(InMemoryStore::new()),
        )
        .unwrap()
    }

    fn assert_parity(engine: &Engine, frame: &DataFrame, cf: ChunkedFrame) {
        let (flat_res, flat_eng) = engine.run_full(frame).unwrap();
        let (res, eng) = engine.run_chunked(cf).unwrap();
        assert_eq!(flat_res.base_score.to_bits(), res.base_score.to_bits());
        assert_eq!(flat_res.best_score.to_bits(), res.best_score.to_bits());
        assert_eq!(flat_res.downstream_evals, res.downstream_evals);
        assert_eq!(flat_res.generated_features, res.generated_features);
        assert_eq!(flat_res.selected, res.selected);
        assert_eq!(flat_res.trace.len(), res.trace.len());
        for (a, b) in flat_res.trace.iter().zip(&res.trace) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        let eng_df = eng.to_dataframe().unwrap();
        assert_eq!(flat_eng.n_cols(), eng_df.n_cols());
        for (ca, cb) in flat_eng.columns().iter().zip(eng_df.columns()) {
            assert_eq!(ca.name, cb.name);
            assert_eq!(ca.values.len(), cb.values.len());
            for (x, y) in ca.values.iter().zip(&cb.values) {
                assert_eq!(x.to_bits(), y.to_bits(), "column {}", ca.name);
            }
        }
    }

    #[test]
    fn nfs_chunked_matches_flat_bitwise() {
        let frame = target_frame();
        let engine = Engine::nfs(fast_config());
        // Multi-chunk and single-chunk layouts.
        assert_parity(&engine, &frame, chunk(&frame, 32));
        assert_parity(&engine, &frame, chunk(&frame, 1024));
    }

    #[test]
    fn random_dropout_chunked_matches_flat_bitwise() {
        let frame = target_frame();
        let engine = Engine::e_afe_d(fast_config(), 0.5);
        assert_parity(&engine, &frame, chunk(&frame, 64));
    }

    #[test]
    fn two_stage_e_afe_chunked_matches_flat_bitwise() {
        // Exercises stage-1 streamed FPE scoring, the replay seeding, and
        // the stage-2 adaptive gate — all against the flat reference.
        let corpus = public_corpus(3, 1, 77).unwrap();
        let mut ev = fast_config().evaluator;
        ev.folds = 3;
        let ev = runtime::Evaluator::new(ev);
        let train = RawLabels::compute(&corpus[..3], &ev).unwrap();
        let val = RawLabels::compute(&corpus[3..], &ev).unwrap();
        let space = FpeSearchSpace {
            families: vec![HashFamily::Ccws],
            dims: vec![16],
            thre: 0.0,
            seed: 1,
        };
        let fpe = fpe_search(&space, &train, &val).unwrap().model;
        let frame = target_frame();
        let engine = Engine::e_afe(fast_config(), fpe);
        assert_parity(&engine, &frame, chunk(&frame, 48));
    }

    #[test]
    fn tight_budget_spills_but_results_are_identical() {
        let frame = target_frame();
        let engine = Engine::nfs(fast_config());
        let cf = ChunkedFrame::from_dataframe(
            &frame,
            ChunkOptions::default()
                .with_chunk_rows(16)
                // A few hundred bytes: only a couple of chunks stay resident.
                .with_budget(FrameBudget::from_bytes(512)),
            Box::new(InMemoryStore::new()),
        )
        .unwrap();
        let (res, eng) = engine.run_chunked(cf).unwrap();
        assert!(
            eng.stats().chunks_spilled > 0,
            "budget should force spills: {:?}",
            eng.stats()
        );
        let flat = engine.run(&frame).unwrap();
        assert_eq!(flat.best_score.to_bits(), res.best_score.to_bits());
        assert_eq!(flat.selected, res.selected);
    }

    #[test]
    fn mmap_store_matches_memory_store() {
        let frame = target_frame();
        let engine = Engine::nfs(fast_config());
        let dir = std::env::temp_dir().join(format!("eafe-chunked-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("search.eafc");
        let cf = ChunkedFrame::from_dataframe(
            &frame,
            ChunkOptions::default()
                .with_chunk_rows(16)
                .with_budget(FrameBudget::from_bytes(512)),
            Box::new(MmapStore::create(&path).unwrap()),
        )
        .unwrap();
        let (res, _) = engine.run_chunked(cf).unwrap();
        let mem = engine
            .run_chunked(
                ChunkedFrame::from_dataframe(
                    &frame,
                    ChunkOptions::default().with_chunk_rows(16),
                    Box::new(InMemoryStore::new()),
                )
                .unwrap(),
            )
            .unwrap()
            .0;
        assert_eq!(mem.best_score.to_bits(), res.best_score.to_bits());
        assert_eq!(mem.selected, res.selected);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stepped_chunked_run_is_anytime() {
        let frame = target_frame();
        let engine = Engine::nfs(fast_config());
        let mut search = engine.start_chunked(chunk(&frame, 64)).unwrap();
        let mut last_best = search.base_score();
        while !search.is_done() {
            let r = engine.step_chunked(&mut search).unwrap();
            assert!(r.best_score >= last_best, "anytime best must be monotone");
            last_best = r.best_score;
        }
        let (result, _) = engine.finish_chunked(&search).unwrap();
        assert!(result.best_score >= result.base_score);
        assert_eq!(
            result.selected.len(),
            search.best_features().len(),
            "weighted set mirrors accepted features"
        );
    }
}
