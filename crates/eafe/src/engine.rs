//! The E-AFE engine: the RL-based feature generation/selection loop of
//! Figure 5 and Algorithm 2, instrumented for the paper's efficiency
//! experiments.
//!
//! One engine implements four of the paper's methods via two switches:
//!
//! | Method    | Gate                | Two-stage | Returns      |
//! |-----------|---------------------|-----------|--------------|
//! | `E-AFE`   | FPE classifier      | yes       | λ-returns    |
//! | `E-AFE_D` | random dropout 0.5  | no        | λ-returns    |
//! | `E-AFE_R` | FPE classifier      | no        | rewards-to-go (plain policy gradient) |
//! | `NFS`     | none (evaluate all) | no        | rewards-to-go (plain policy gradient) |
//!
//! Stage 1 (two-stage only) never touches the downstream task: the FPE
//! model's probability is mapped to a pseudo-score (Eq. 8) that drives
//! policy updates, and promising features accumulate in a replay buffer.
//! Stage 2 replays those features against the real downstream task and
//! continues training with downstream score gains as rewards.
//!
//! The search itself lives in the stepped state machine of
//! [`crate::step`]: [`Engine::start`] opens a resumable
//! [`crate::SearchState`], [`Engine::step`] advances it one epoch at a
//! time, and [`Engine::run`] below is a thin blocking driver over those —
//! identical results, same RNG streams, one code path.

use crate::config::EafeConfig;
use crate::error::Result;
use crate::fpe::FpeModel;
use crate::report::RunResult;
use runtime::ScoreCache;
use serde::{DeError, Deserialize, Serialize, Value};
use std::sync::Arc;
use tabular::DataFrame;

/// The candidate-feature gate applied before downstream evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Gate {
    /// E-AFE's pre-trained FPE model.
    Fpe(Box<FpeModel>),
    /// The `E-AFE_D` ablation: drop a uniform fraction of candidates.
    RandomDrop {
        /// Probability of dropping each candidate.
        rate: f64,
    },
    /// No gate (NFS): every generated feature is evaluated downstream.
    None,
}

/// A configured AFE method ready to run on datasets.
#[derive(Debug, Clone)]
pub struct Engine {
    /// Engine configuration.
    pub config: EafeConfig,
    /// Candidate gate.
    pub gate: Gate,
    /// Run the FPE-surrogate initialisation stage (requires an FPE gate).
    pub two_stage: bool,
    /// Use the paper's Eq. 9/10 λ-returns; `false` uses plain
    /// rewards-to-go policy gradient (the `E-AFE_R` / NFS formulation).
    pub use_lambda_returns: bool,
    /// Method name recorded in results.
    pub method_name: String,
    /// Score cache shared with other runs (benchmark harnesses inject one
    /// so repeated evaluations across methods/epochs are computed once).
    /// `None` gives the run a private cache, keeping isolated runs
    /// reproducible and unaffected by other runs in the same process.
    pub cache: Option<Arc<ScoreCache<f64>>>,
}

// The shared score cache is a process-local handle, so an engine
// round-trips through serde as its *method definition* (config + gate +
// switches); a restored engine starts with a private cache until a new
// one is attached via `with_cache`. This is what lets a job server
// checkpoint (engine, search state) pairs to disk and resume them after
// a restart.
impl Serialize for Engine {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("config".to_string(), self.config.to_value()),
            ("gate".to_string(), self.gate.to_value()),
            ("two_stage".to_string(), self.two_stage.to_value()),
            (
                "use_lambda_returns".to_string(),
                self.use_lambda_returns.to_value(),
            ),
            ("method_name".to_string(), self.method_name.to_value()),
        ])
    }
}

impl Deserialize for Engine {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        let entries = v
            .as_map()
            .ok_or_else(|| DeError::new("expected map for Engine"))?;
        Ok(Engine {
            config: Deserialize::from_value(serde::field(entries, "config"))?,
            gate: Deserialize::from_value(serde::field(entries, "gate"))?,
            two_stage: Deserialize::from_value(serde::field(entries, "two_stage"))?,
            use_lambda_returns: Deserialize::from_value(serde::field(
                entries,
                "use_lambda_returns",
            ))?,
            method_name: Deserialize::from_value(serde::field(entries, "method_name"))?,
            cache: None,
        })
    }
}

impl Engine {
    /// The full E-AFE method (paper Algorithm 2).
    pub fn e_afe(config: EafeConfig, fpe: FpeModel) -> Engine {
        Engine {
            config,
            gate: Gate::Fpe(Box::new(fpe)),
            two_stage: true,
            use_lambda_returns: true,
            method_name: "E-AFE".into(),
            cache: None,
        }
    }

    /// E-AFE with a named MinHash-variant label (`E-AFE^I`, `E-AFE^P`, …).
    pub fn e_afe_variant(config: EafeConfig, fpe: FpeModel, label: &str) -> Engine {
        let mut e = Engine::e_afe(config, fpe);
        e.method_name = label.to_string();
        e
    }

    /// The `E-AFE_D` ablation: FPE replaced by random dropout.
    pub fn e_afe_d(config: EafeConfig, drop_rate: f64) -> Engine {
        Engine {
            config,
            gate: Gate::RandomDrop { rate: drop_rate },
            two_stage: false,
            use_lambda_returns: true,
            method_name: "E-AFE_D".into(),
            cache: None,
        }
    }

    /// The `E-AFE_R` ablation: FPE gate kept, RL framework replaced by the
    /// plain policy-gradient formulation NFS uses.
    pub fn e_afe_r(config: EafeConfig, fpe: FpeModel) -> Engine {
        Engine {
            config,
            gate: Gate::Fpe(Box::new(fpe)),
            two_stage: false,
            use_lambda_returns: false,
            method_name: "E-AFE_R".into(),
            cache: None,
        }
    }

    /// The NFS baseline: RNN agents with policy gradient, no gate — every
    /// generated feature is evaluated on the downstream task.
    pub fn nfs(config: EafeConfig) -> Engine {
        Engine {
            config,
            gate: Gate::None,
            two_stage: false,
            use_lambda_returns: false,
            method_name: "NFS".into(),
            cache: None,
        }
    }

    /// Share an externally owned score cache with this engine. Runs then
    /// reuse (and contribute to) evaluations made by any other consumer
    /// of the same cache — other methods, other epochs, other datasets'
    /// identical frames — instead of starting cold.
    pub fn with_cache(mut self, cache: Arc<ScoreCache<f64>>) -> Engine {
        self.cache = Some(cache);
        self
    }

    /// Run the method on a dataset, producing the instrumented result.
    pub fn run(&self, frame: &DataFrame) -> Result<RunResult> {
        Ok(self.run_full(frame)?.0)
    }

    /// Like [`Engine::run`], but also returns the engineered frame (the
    /// original features plus every accepted generated feature) — the
    /// cached feature set the paper's Table V re-evaluates with SVM, NB/GP
    /// and MLP downstream models.
    ///
    /// This is a thin blocking driver over the stepped state machine:
    /// [`Engine::start`], [`Engine::step`] until done, [`Engine::finish`].
    pub fn run_full(&self, frame: &DataFrame) -> Result<(RunResult, DataFrame)> {
        let mut run_span = telemetry::span("engine.run");
        let mut search = self.start(frame)?;
        while !search.is_done() {
            self.step(&mut search)?;
        }
        run_span.field("generated", search.features_generated() as f64);
        run_span.field("downstream_evals", search.downstream_evals() as f64);
        run_span.field("best_score", search.best_score());
        self.finish(&search)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpe::{search, FpeSearchSpace, RawLabels};
    use minhash::HashFamily;
    use tabular::registry::public_corpus;
    use tabular::{SynthSpec, Task};

    fn fast_config() -> EafeConfig {
        EafeConfig::fast()
    }

    fn target_frame() -> DataFrame {
        SynthSpec::new("engine-test", 150, 5, Task::Classification)
            .with_seed(5)
            .generate()
            .unwrap()
    }

    fn trained_fpe() -> FpeModel {
        let corpus = public_corpus(3, 1, 77).unwrap();
        let mut ev = fast_config().evaluator;
        ev.folds = 3;
        let ev = runtime::Evaluator::new(ev);
        let train = RawLabels::compute(&corpus[..3], &ev).unwrap();
        let val = RawLabels::compute(&corpus[3..], &ev).unwrap();
        let space = FpeSearchSpace {
            families: vec![HashFamily::Ccws],
            dims: vec![16],
            thre: 0.0,
            seed: 1,
        };
        search(&space, &train, &val).unwrap().model
    }

    #[test]
    fn nfs_evaluates_every_nondegenerate_candidate() {
        let engine = Engine::nfs(fast_config());
        let result = engine.run(&target_frame()).unwrap();
        assert_eq!(result.method, "NFS");
        // +1 for the base evaluation; only degenerate candidates escape
        // evaluation when there is no gate.
        assert!(result.downstream_evals <= result.generated_features + 1);
        assert!(result.downstream_evals >= result.generated_features / 2);
        assert!(result.best_score >= result.base_score);
        assert!(!result.trace.is_empty());
    }

    #[test]
    fn random_dropout_halves_evaluations() {
        let full = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        let dropped = Engine::e_afe_d(fast_config(), 0.5)
            .run(&target_frame())
            .unwrap();
        assert_eq!(dropped.method, "E-AFE_D");
        assert_eq!(full.generated_features, dropped.generated_features);
        assert!(
            dropped.downstream_evals < full.downstream_evals,
            "dropout {} vs full {}",
            dropped.downstream_evals,
            full.downstream_evals
        );
    }

    #[test]
    fn e_afe_runs_two_stages_and_reduces_evals() {
        let fpe = trained_fpe();
        let engine = Engine::e_afe(fast_config(), fpe.clone());
        let result = engine.run(&target_frame()).unwrap();
        assert_eq!(result.method, "E-AFE");
        assert!(result.best_score >= result.base_score);
        // Stage 1 generates features that never hit the downstream task, so
        // evals per generated feature must be below NFS's 1:1.
        let nfs = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        let eafe_ratio = result.downstream_evals as f64 / result.generated_features as f64;
        let nfs_ratio = nfs.downstream_evals as f64 / nfs.generated_features as f64;
        assert!(
            eafe_ratio < nfs_ratio,
            "E-AFE {eafe_ratio:.2} vs NFS {nfs_ratio:.2}"
        );
    }

    #[test]
    fn e_afe_r_single_stage_with_gate() {
        let result = Engine::e_afe_r(fast_config(), trained_fpe())
            .run(&target_frame())
            .unwrap();
        assert_eq!(result.method, "E-AFE_R");
        assert!(result.best_score >= result.base_score);
    }

    #[test]
    fn two_stage_without_fpe_is_rejected() {
        let mut engine = Engine::e_afe_d(fast_config(), 0.5);
        engine.two_stage = true;
        assert!(engine.run(&target_frame()).is_err());
    }

    #[test]
    fn results_are_deterministic_given_seed() {
        let a = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        let b = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.downstream_evals, b.downstream_evals);
        assert_eq!(a.selected, b.selected);
    }

    #[test]
    fn trace_is_monotone_in_score_and_evals() {
        let result = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        for w in result.trace.windows(2) {
            assert!(w[1].score >= w[0].score);
            assert!(w[1].downstream_evals >= w[0].downstream_evals);
            assert!(w[1].elapsed_secs >= w[0].elapsed_secs);
        }
    }

    #[test]
    fn timer_attributes_most_time_to_evaluation() {
        // The Table I phenomenon: downstream evaluation dominates runtime.
        let result = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        assert!(
            result.eval_time_fraction() > 0.5,
            "eval fraction {}",
            result.eval_time_fraction()
        );
    }

    #[test]
    fn early_stopping_truncates_training() {
        let frame = target_frame();
        let mut cfg = fast_config();
        cfg.stage2_epochs = 20;
        cfg.early_stop_patience = Some(2);
        let stopped = Engine::nfs(cfg.clone()).run(&frame).unwrap();
        cfg.early_stop_patience = None;
        let full = Engine::nfs(cfg).run(&frame).unwrap();
        assert!(
            stopped.trace.len() <= full.trace.len(),
            "early stopping ran longer: {} vs {}",
            stopped.trace.len(),
            full.trace.len()
        );
        // A stopped run never has a trailing improving epoch.
        let tail = &stopped.trace[stopped.trace.len().saturating_sub(2)..];
        if stopped.trace.len() < full.trace.len() && tail.len() == 2 {
            assert!(tail[1].score <= tail[0].score + 1e-12);
        }
    }

    #[test]
    fn regression_dataset_is_supported() {
        let frame = SynthSpec::new("engine-reg", 120, 4, Task::Regression)
            .with_seed(6)
            .generate()
            .unwrap();
        let result = Engine::nfs(fast_config()).run(&frame).unwrap();
        assert!(result.best_score >= result.base_score);
    }

    #[test]
    fn engine_serde_round_trip_drops_only_the_cache() {
        let engine = Engine::e_afe_d(fast_config(), 0.5).with_cache(Arc::new(ScoreCache::new(16)));
        let json = serde_json::to_string(&engine).unwrap();
        let back: Engine = serde_json::from_str(&json).unwrap();
        assert_eq!(back.method_name, engine.method_name);
        assert_eq!(back.two_stage, engine.two_stage);
        assert_eq!(back.use_lambda_returns, engine.use_lambda_returns);
        assert!(matches!(back.gate, Gate::RandomDrop { rate } if rate == 0.5));
        assert!(back.cache.is_none(), "cache handle is process-local");
        // The restored engine runs identically (private cache, same seeds).
        let frame = target_frame();
        let a = engine.run(&frame).unwrap();
        let b = back.run(&frame).unwrap();
        assert_eq!(a.best_score.to_bits(), b.best_score.to_bits());
        assert_eq!(a.selected, b.selected);
    }
}
