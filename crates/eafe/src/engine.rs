//! The E-AFE engine: the RL-based feature generation/selection loop of
//! Figure 5 and Algorithm 2, instrumented for the paper's efficiency
//! experiments.
//!
//! One engine implements four of the paper's methods via two switches:
//!
//! | Method    | Gate                | Two-stage | Returns      |
//! |-----------|---------------------|-----------|--------------|
//! | `E-AFE`   | FPE classifier      | yes       | λ-returns    |
//! | `E-AFE_D` | random dropout 0.5  | no        | λ-returns    |
//! | `E-AFE_R` | FPE classifier      | no        | rewards-to-go (plain policy gradient) |
//! | `NFS`     | none (evaluate all) | no        | rewards-to-go (plain policy gradient) |
//!
//! Stage 1 (two-stage only) never touches the downstream task: the FPE
//! model's probability is mapped to a pseudo-score (Eq. 8) that drives
//! policy updates, and promising features accumulate in a replay buffer.
//! Stage 2 replays those features against the real downstream task and
//! continues training with downstream score gains as rewards.

use crate::config::EafeConfig;
use crate::error::{EafeError, Result};
use crate::fpe::FpeModel;
use crate::ops::{GeneratedFeature, Operator};
use crate::report::{EpochPoint, EvalCounter, PhaseTimer, RunResult};
use crate::reward::SurrogateReward;
use crate::state::EngineState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl::{returns_from_scores, rewards_to_go, score_gains, ReplayBuffer, RnnPolicy, StepCache};
use runtime::ScoreCache;
use std::sync::Arc;
use tabular::DataFrame;

/// The candidate-feature gate applied before downstream evaluation.
#[derive(Debug, Clone)]
pub enum Gate {
    /// E-AFE's pre-trained FPE model.
    Fpe(Box<FpeModel>),
    /// The `E-AFE_D` ablation: drop a uniform fraction of candidates.
    RandomDrop {
        /// Probability of dropping each candidate.
        rate: f64,
    },
    /// No gate (NFS): every generated feature is evaluated downstream.
    None,
}

/// A configured AFE method ready to run on datasets.
#[derive(Debug, Clone)]
pub struct Engine {
    /// Engine configuration.
    pub config: EafeConfig,
    /// Candidate gate.
    pub gate: Gate,
    /// Run the FPE-surrogate initialisation stage (requires an FPE gate).
    pub two_stage: bool,
    /// Use the paper's Eq. 9/10 λ-returns; `false` uses plain
    /// rewards-to-go policy gradient (the `E-AFE_R` / NFS formulation).
    pub use_lambda_returns: bool,
    /// Method name recorded in results.
    pub method_name: String,
    /// Score cache shared with other runs (benchmark harnesses inject one
    /// so repeated evaluations across methods/epochs are computed once).
    /// `None` gives the run a private cache, keeping isolated runs
    /// reproducible and unaffected by other runs in the same process.
    pub cache: Option<Arc<ScoreCache<f64>>>,
}

impl Engine {
    /// The full E-AFE method (paper Algorithm 2).
    pub fn e_afe(config: EafeConfig, fpe: FpeModel) -> Engine {
        Engine {
            config,
            gate: Gate::Fpe(Box::new(fpe)),
            two_stage: true,
            use_lambda_returns: true,
            method_name: "E-AFE".into(),
            cache: None,
        }
    }

    /// E-AFE with a named MinHash-variant label (`E-AFE^I`, `E-AFE^P`, …).
    pub fn e_afe_variant(config: EafeConfig, fpe: FpeModel, label: &str) -> Engine {
        let mut e = Engine::e_afe(config, fpe);
        e.method_name = label.to_string();
        e
    }

    /// The `E-AFE_D` ablation: FPE replaced by random dropout.
    pub fn e_afe_d(config: EafeConfig, drop_rate: f64) -> Engine {
        Engine {
            config,
            gate: Gate::RandomDrop { rate: drop_rate },
            two_stage: false,
            use_lambda_returns: true,
            method_name: "E-AFE_D".into(),
            cache: None,
        }
    }

    /// The `E-AFE_R` ablation: FPE gate kept, RL framework replaced by the
    /// plain policy-gradient formulation NFS uses.
    pub fn e_afe_r(config: EafeConfig, fpe: FpeModel) -> Engine {
        Engine {
            config,
            gate: Gate::Fpe(Box::new(fpe)),
            two_stage: false,
            use_lambda_returns: false,
            method_name: "E-AFE_R".into(),
            cache: None,
        }
    }

    /// The NFS baseline: RNN agents with policy gradient, no gate — every
    /// generated feature is evaluated on the downstream task.
    pub fn nfs(config: EafeConfig) -> Engine {
        Engine {
            config,
            gate: Gate::None,
            two_stage: false,
            use_lambda_returns: false,
            method_name: "NFS".into(),
            cache: None,
        }
    }

    /// Share an externally owned score cache with this engine. Runs then
    /// reuse (and contribute to) evaluations made by any other consumer
    /// of the same cache — other methods, other epochs, other datasets'
    /// identical frames — instead of starting cold.
    pub fn with_cache(mut self, cache: Arc<ScoreCache<f64>>) -> Engine {
        self.cache = Some(cache);
        self
    }

    /// Run the method on a dataset, producing the instrumented result.
    pub fn run(&self, frame: &DataFrame) -> Result<RunResult> {
        Ok(self.run_full(frame)?.0)
    }

    // Indexing `policies[j]` mirrors the paper's per-agent notation and a
    // mutable iterator would fight the borrow on `state`/`timer` inside.

    /// Like [`Engine::run`], but also returns the engineered frame (the
    /// original features plus every accepted generated feature) — the
    /// cached feature set the paper's Table V re-evaluates with SVM, NB/GP
    /// and MLP downstream models.
    #[allow(clippy::needless_range_loop)]
    pub fn run_full(&self, frame: &DataFrame) -> Result<(RunResult, DataFrame)> {
        self.config.validate()?;
        if matches!(&self.gate, Gate::RandomDrop { rate } if !(0.0..=1.0).contains(rate)) {
            return Err(EafeError::InvalidConfig(
                "drop rate must be in [0,1]".into(),
            ));
        }
        if self.two_stage && !matches!(self.gate, Gate::Fpe(_)) {
            return Err(EafeError::InvalidConfig(
                "two-stage training requires an FPE gate".into(),
            ));
        }
        let mut frame = frame.clone();
        frame.sanitize();

        let mut run_span = telemetry::span("engine.run");
        let cfg = &self.config;
        let mut timer = PhaseTimer::new();
        timer.start();
        let mut counter = EvalCounter::default();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // The dropout gate draws from its own stream so gating decisions
        // never perturb policy/generation draws: E-AFE_D with rate 0 must
        // explore exactly the candidates NFS does.
        let mut gate_rng = StdRng::seed_from_u64(runtime::derive_seed(cfg.seed, 0x67617465, 0));

        // Every downstream evaluation goes through the runtime's
        // content-addressed cache: repeat candidates (replayed features,
        // re-explored transformations) are computed once.
        let evaluator = match &self.cache {
            Some(shared) => {
                runtime::Evaluator::with_cache(cfg.evaluator.clone(), Arc::clone(shared))
            }
            None => runtime::Evaluator::new(cfg.evaluator.clone()),
        };
        let cache_start = evaluator.stats();

        let base_score = {
            let _eval_span = telemetry::span("engine.evaluate");
            timer.evaluation(|| evaluator.evaluate(&frame))?
        };
        counter.evaluate();
        let mut state = EngineState::new(&frame, base_score);
        let n_agents = state.n_agents();
        let max_generated = ((n_agents as f64 * cfg.max_generated_ratio).ceil() as usize).max(1);

        let mut policy_cfg = cfg.policy;
        policy_cfg.state_dim = EngineState::EMBEDDING_DIM;
        policy_cfg.n_actions = Operator::ALL.len();
        let mut policies: Vec<RnnPolicy> = (0..n_agents)
            .map(|j| {
                RnnPolicy::new(rl::PolicyConfig {
                    seed: cfg.seed ^ (j as u64).wrapping_mul(0x9E3779B9),
                    ..policy_cfg
                })
            })
            .collect::<rl::Result<_>>()?;

        let mut best_score = base_score;
        let mut trace = vec![EpochPoint {
            epoch: 0,
            score: base_score,
            downstream_evals: counter.evaluated,
            elapsed_secs: timer.total_secs(),
        }];

        // ---- Stage 1: quick initialisation with the FPE model ----
        if self.two_stage {
            let fpe = match &self.gate {
                Gate::Fpe(m) => m.as_ref(),
                _ => unreachable!("checked above"),
            };
            let surrogate = SurrogateReward::new(base_score, cfg.thre);
            let mut replay: ReplayBuffer<GeneratedFeature> = ReplayBuffer::new(cfg.replay_capacity);
            let total_epochs = cfg.stage1_epochs.max(1);
            for epoch in 0..cfg.stage1_epochs {
                let mut epoch_span = telemetry::span("engine.stage1_epoch");
                epoch_span.field("epoch", epoch as f64);
                let epoch_frac = epoch as f64 / total_epochs as f64;
                for j in 0..n_agents {
                    policies[j].reset();
                    let mut episode: Vec<StepCache> = Vec::with_capacity(cfg.steps_per_epoch);
                    let mut pseudo_scores = Vec::with_capacity(cfg.steps_per_epoch);
                    for t in 0..cfg.steps_per_epoch {
                        let feat = {
                            let x = state.embedding(
                                j,
                                t,
                                cfg.steps_per_epoch,
                                epoch_frac,
                                cfg.max_order,
                            );
                            let cache = timer.generation(|| policies[j].step(&x, &mut rng))?;
                            let op = Operator::from_action(cache.action);
                            let feat =
                                timer.generation(|| generate_candidate(&state, j, op, &mut rng));
                            episode.push(cache);
                            feat
                        };
                        counter.generate();
                        let pseudo = if feat.is_degenerate() || feat.order > cfg.max_order {
                            counter.drop_feature();
                            surrogate.pseudo_score(0.0)
                        } else {
                            let p = timer.generation(|| fpe.score_feature(&feat.column.values))?;
                            if p >= 0.5 {
                                telemetry::count("fpe.gate.accept", 1);
                                replay.push(p, feat);
                            } else {
                                telemetry::count("fpe.gate.reject", 1);
                                counter.drop_feature();
                            }
                            surrogate.pseudo_score(p)
                        };
                        pseudo_scores.push(pseudo);
                    }
                    let rets = {
                        let _reward_span = telemetry::span("engine.reward");
                        returns_from_scores(&pseudo_scores, base_score, &cfg.returns)
                    };
                    let steps: Vec<(StepCache, f64)> = episode.into_iter().zip(rets).collect();
                    let _update_span = telemetry::span("engine.policy_update");
                    timer.generation(|| policies[j].update(&steps))?;
                }
            }
            // Seed stage 2: replay the promising features against the real
            // downstream task (Algorithm 2 line 16). The drain is capped at
            // one epoch's generation budget so the one-time seeding cost
            // stays comparable to a single training epoch.
            let drain_budget = cfg.steps_per_epoch * n_agents;
            for (_, feat) in replay.drain_by_priority().into_iter().take(drain_budget) {
                if state.n_generated() >= max_generated {
                    break;
                }
                let candidate = state
                    .selected_frame(&frame)?
                    .with_extra_columns(std::slice::from_ref(&feat.column))?;
                let score = {
                    let _eval_span = telemetry::span("engine.evaluate");
                    timer.evaluation(|| evaluator.evaluate(&candidate))?
                };
                counter.evaluate();
                if score > state.current_score {
                    state.last_reward = score - state.current_score;
                    state.current_score = score;
                    best_score = best_score.max(score);
                    let origin = feature_origin(&feat, &state);
                    state.subgroups[origin].accept(feat);
                }
            }
        }

        // ---- Stage 2 (or the single stage for one-stage methods) ----
        let mut fpe_gate = AdaptiveGate::new(256);
        let mut epochs_since_improvement = 0usize;
        for epoch in 0..cfg.stage2_epochs {
            let mut epoch_span = telemetry::span("engine.stage2_epoch");
            epoch_span.field("epoch", epoch as f64);
            let epoch_frac = epoch as f64 / cfg.stage2_epochs.max(1) as f64;
            for j in 0..n_agents {
                policies[j].reset();
                let episode_start_score = state.current_score;
                let mut episode: Vec<StepCache> = Vec::with_capacity(cfg.steps_per_epoch);
                let mut score_trace = Vec::with_capacity(cfg.steps_per_epoch);
                for t in 0..cfg.steps_per_epoch {
                    let feat = {
                        let x =
                            state.embedding(j, t, cfg.steps_per_epoch, epoch_frac, cfg.max_order);
                        let cache = timer.generation(|| policies[j].step(&x, &mut rng))?;
                        let op = Operator::from_action(cache.action);
                        let feat = timer.generation(|| generate_candidate(&state, j, op, &mut rng));
                        episode.push(cache);
                        feat
                    };
                    counter.generate();

                    let structurally_ok = !feat.is_degenerate()
                        && feat.order <= cfg.max_order
                        && state.n_generated() < max_generated;
                    let passes_gate = structurally_ok
                        && match &self.gate {
                            Gate::Fpe(fpe) => {
                                let p =
                                    timer.generation(|| fpe.score_feature(&feat.column.values))?;
                                let pass = fpe_gate.observe_and_pass(p);
                                telemetry::count(
                                    if pass {
                                        "fpe.gate.accept"
                                    } else {
                                        "fpe.gate.reject"
                                    },
                                    1,
                                );
                                pass
                            }
                            Gate::RandomDrop { rate } => !gate_rng.gen_bool(*rate),
                            Gate::None => true,
                        };

                    if !passes_gate {
                        counter.drop_feature();
                        score_trace.push(state.current_score);
                        continue;
                    }

                    let candidate = state
                        .selected_frame(&frame)?
                        .with_extra_columns(std::slice::from_ref(&feat.column))?;
                    let score = {
                        let _eval_span = telemetry::span("engine.evaluate");
                        timer.evaluation(|| evaluator.evaluate(&candidate))?
                    };
                    counter.evaluate();
                    state.last_reward = score - state.current_score;
                    if score > state.current_score {
                        state.current_score = score;
                        best_score = best_score.max(score);
                        state.subgroups[j].accept(feat);
                    }
                    score_trace.push(score.max(state.current_score));
                }
                let rets = {
                    let _reward_span = telemetry::span("engine.reward");
                    if self.use_lambda_returns {
                        returns_from_scores(&score_trace, episode_start_score, &cfg.returns)
                    } else {
                        let gains = score_gains(&score_trace, episode_start_score);
                        rewards_to_go(&gains, cfg.returns.gamma)
                    }
                };
                let steps: Vec<(StepCache, f64)> = episode.into_iter().zip(rets).collect();
                let _update_span = telemetry::span("engine.policy_update");
                timer.generation(|| policies[j].update(&steps))?;
            }
            epoch_span.field("best_score", best_score);
            let improved = trace
                .last()
                .is_none_or(|last| best_score > last.score + f64::EPSILON);
            trace.push(EpochPoint {
                epoch: epoch + 1,
                score: best_score,
                downstream_evals: counter.evaluated,
                elapsed_secs: timer.total_secs(),
            });
            if improved {
                epochs_since_improvement = 0;
            } else {
                epochs_since_improvement += 1;
            }
            if let Some(patience) = cfg.early_stop_patience {
                if epochs_since_improvement >= patience {
                    break;
                }
            }
        }

        let engineered = state.selected_frame(&frame)?;
        run_span.field("generated", counter.generated as f64);
        run_span.field("downstream_evals", counter.evaluated as f64);
        run_span.field("best_score", best_score);
        let cache_stats = evaluator.stats().since(&cache_start);
        let result = RunResult {
            method: self.method_name.clone(),
            dataset: frame.name.clone(),
            base_score,
            best_score,
            trace,
            generated_features: counter.generated,
            downstream_evals: counter.evaluated,
            selected: state.selected_names(),
            generation_secs: timer.generation_secs(),
            eval_secs: timer.eval_secs(),
            total_secs: timer.total_secs(),
            cache_hits: cache_stats.hits,
            cache_misses: cache_stats.misses,
        };
        Ok((result, engineered))
    }
}

/// Adaptive FPE gate threshold for stage 2.
///
/// The paper asserts E-AFE's "drop rate is more than 0.5"; a fixed 0.5
/// probability cut cannot guarantee that when the classifier's output
/// distribution on *generated* (rather than original) features is shifted.
/// The gate therefore passes a candidate only when its effective-class
/// probability clears both 0.5 and the running median of recently observed
/// scores — keeping the classifier's ranking while pinning the asymptotic
/// pass rate at ≤ 50%.
#[derive(Debug, Clone)]
struct AdaptiveGate {
    window: Vec<f64>,
    cap: usize,
}

impl AdaptiveGate {
    fn new(cap: usize) -> Self {
        Self {
            window: Vec::with_capacity(cap),
            cap: cap.max(1),
        }
    }

    /// Record the score and decide whether the candidate passes.
    fn observe_and_pass(&mut self, p: f64) -> bool {
        if self.window.len() == self.cap {
            self.window.remove(0);
        }
        self.window.push(p);
        let mut sorted = self.window.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = sorted[sorted.len() / 2];
        p >= median.max(0.5)
    }
}

/// Generate one candidate feature for agent `j`: sample two subgroup
/// members with replacement and apply the operator (paper Figure 3).
fn generate_candidate(
    state: &EngineState,
    agent: usize,
    op: Operator,
    rng: &mut impl Rng,
) -> GeneratedFeature {
    let sub = &state.subgroups[agent];
    let ia = sub.sample_member(rng);
    let ib = sub.sample_member(rng);
    let (a, ao) = sub.member(ia);
    let (b, bo) = sub.member(ib);
    GeneratedFeature::generate(op, a, ao, b, bo)
}

/// Which subgroup a replayed feature should join: the subgroup whose
/// original feature name appears first in the expression (falls back to 0).
fn feature_origin(feat: &GeneratedFeature, state: &EngineState) -> usize {
    let expr = &feat.column.name;
    state
        .subgroups
        .iter()
        .position(|s| expr.contains(s.original.name.as_str()))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fpe::{search, FpeSearchSpace, RawLabels};

    #[test]
    fn adaptive_gate_pins_pass_rate_at_or_below_half() {
        let mut gate = AdaptiveGate::new(64);
        // Scores clustered high: a fixed 0.5 cut would pass everything.
        let mut passed = 0;
        let n = 500;
        for i in 0..n {
            let p = 0.7 + 0.2 * ((i as f64 * 0.713).sin());
            if gate.observe_and_pass(p) {
                passed += 1;
            }
        }
        let rate = passed as f64 / n as f64;
        assert!(rate <= 0.6, "pass rate {rate}");
        assert!(rate >= 0.2, "gate should not drop everything: {rate}");
    }

    #[test]
    fn adaptive_gate_respects_absolute_floor() {
        let mut gate = AdaptiveGate::new(64);
        // All scores below 0.5 → nothing passes even though all equal the
        // running median.
        for _ in 0..100 {
            assert!(!gate.observe_and_pass(0.3));
        }
    }
    use minhash::HashFamily;
    use tabular::registry::public_corpus;
    use tabular::{SynthSpec, Task};

    fn fast_config() -> EafeConfig {
        EafeConfig::fast()
    }

    fn target_frame() -> DataFrame {
        SynthSpec::new("engine-test", 150, 5, Task::Classification)
            .with_seed(5)
            .generate()
            .unwrap()
    }

    fn trained_fpe() -> FpeModel {
        let corpus = public_corpus(3, 1, 77).unwrap();
        let mut ev = fast_config().evaluator;
        ev.folds = 3;
        let ev = runtime::Evaluator::new(ev);
        let train = RawLabels::compute(&corpus[..3], &ev).unwrap();
        let val = RawLabels::compute(&corpus[3..], &ev).unwrap();
        let space = FpeSearchSpace {
            families: vec![HashFamily::Ccws],
            dims: vec![16],
            thre: 0.0,
            seed: 1,
        };
        search(&space, &train, &val).unwrap().model
    }

    #[test]
    fn nfs_evaluates_every_nondegenerate_candidate() {
        let engine = Engine::nfs(fast_config());
        let result = engine.run(&target_frame()).unwrap();
        assert_eq!(result.method, "NFS");
        // +1 for the base evaluation; only degenerate candidates escape
        // evaluation when there is no gate.
        assert!(result.downstream_evals <= result.generated_features + 1);
        assert!(result.downstream_evals >= result.generated_features / 2);
        assert!(result.best_score >= result.base_score);
        assert!(!result.trace.is_empty());
    }

    #[test]
    fn random_dropout_halves_evaluations() {
        let full = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        let dropped = Engine::e_afe_d(fast_config(), 0.5)
            .run(&target_frame())
            .unwrap();
        assert_eq!(dropped.method, "E-AFE_D");
        assert_eq!(full.generated_features, dropped.generated_features);
        assert!(
            dropped.downstream_evals < full.downstream_evals,
            "dropout {} vs full {}",
            dropped.downstream_evals,
            full.downstream_evals
        );
    }

    #[test]
    fn e_afe_runs_two_stages_and_reduces_evals() {
        let fpe = trained_fpe();
        let engine = Engine::e_afe(fast_config(), fpe.clone());
        let result = engine.run(&target_frame()).unwrap();
        assert_eq!(result.method, "E-AFE");
        assert!(result.best_score >= result.base_score);
        // Stage 1 generates features that never hit the downstream task, so
        // evals per generated feature must be below NFS's 1:1.
        let nfs = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        let eafe_ratio = result.downstream_evals as f64 / result.generated_features as f64;
        let nfs_ratio = nfs.downstream_evals as f64 / nfs.generated_features as f64;
        assert!(
            eafe_ratio < nfs_ratio,
            "E-AFE {eafe_ratio:.2} vs NFS {nfs_ratio:.2}"
        );
    }

    #[test]
    fn e_afe_r_single_stage_with_gate() {
        let result = Engine::e_afe_r(fast_config(), trained_fpe())
            .run(&target_frame())
            .unwrap();
        assert_eq!(result.method, "E-AFE_R");
        assert!(result.best_score >= result.base_score);
    }

    #[test]
    fn two_stage_without_fpe_is_rejected() {
        let mut engine = Engine::e_afe_d(fast_config(), 0.5);
        engine.two_stage = true;
        assert!(engine.run(&target_frame()).is_err());
    }

    #[test]
    fn results_are_deterministic_given_seed() {
        let a = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        let b = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.downstream_evals, b.downstream_evals);
        assert_eq!(a.selected, b.selected);
    }

    #[test]
    fn trace_is_monotone_in_score_and_evals() {
        let result = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        for w in result.trace.windows(2) {
            assert!(w[1].score >= w[0].score);
            assert!(w[1].downstream_evals >= w[0].downstream_evals);
            assert!(w[1].elapsed_secs >= w[0].elapsed_secs);
        }
    }

    #[test]
    fn timer_attributes_most_time_to_evaluation() {
        // The Table I phenomenon: downstream evaluation dominates runtime.
        let result = Engine::nfs(fast_config()).run(&target_frame()).unwrap();
        assert!(
            result.eval_time_fraction() > 0.5,
            "eval fraction {}",
            result.eval_time_fraction()
        );
    }

    #[test]
    fn early_stopping_truncates_training() {
        let frame = target_frame();
        let mut cfg = fast_config();
        cfg.stage2_epochs = 20;
        cfg.early_stop_patience = Some(2);
        let stopped = Engine::nfs(cfg.clone()).run(&frame).unwrap();
        cfg.early_stop_patience = None;
        let full = Engine::nfs(cfg).run(&frame).unwrap();
        assert!(
            stopped.trace.len() <= full.trace.len(),
            "early stopping ran longer: {} vs {}",
            stopped.trace.len(),
            full.trace.len()
        );
        // A stopped run never has a trailing improving epoch.
        let tail = &stopped.trace[stopped.trace.len().saturating_sub(2)..];
        if stopped.trace.len() < full.trace.len() && tail.len() == 2 {
            assert!(tail[1].score <= tail[0].score + 1e-12);
        }
    }

    #[test]
    fn regression_dataset_is_supported() {
        let frame = SynthSpec::new("engine-reg", 120, 4, Task::Regression)
            .with_seed(6)
            .generate()
            .unwrap();
        let result = Engine::nfs(fast_config()).run(&frame).unwrap();
        assert!(result.best_score >= result.base_score);
    }
}
