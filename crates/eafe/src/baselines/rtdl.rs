//! Deep-learning baselines (paper §IV-A3 and Table III):
//!
//! - **RTDL_N (`DL_N`)** — an RTDL-style tabular ResNet trained with its
//!   native head, then *re-headed* with a Random Forest on the penultimate
//!   representation: "after training and validating the ResNet …, we change
//!   the downstream task of ResNet, softmax, into RF, then test".
//! - **FE|DL** — features selected by feature engineering fed into the
//!   deep-learning model.
//! - **DL|FE** — original features through the trained ResNet; its output
//!   representation is then handed to the feature-engineering selector
//!   (RF-importance selection) and scored with the RF downstream task.
//!
//! Unlike the cross-validated AFE methods, these use a fixed
//! train/validation/test partition — which the paper identifies as the
//! source of the ResNet's fragility on small datasets.

use crate::error::Result;
use crate::report::{EpochPoint, PhaseTimer, RunResult};
use learners::{
    f1_score, feature_matrix, one_minus_rae, ForestConfig, RandomForestClassifier,
    RandomForestRegressor, ResNetClassifier, ResNetConfig, ResNetRegressor,
};
use tabular::split::train_test_indices;
use tabular::{DataFrame, Label};

/// Configuration shared by the three DL baselines.
#[derive(Debug, Clone)]
pub struct DlBaselineConfig {
    /// ResNet settings.
    pub resnet: ResNetConfig,
    /// Forest settings for the RF re-head / selector.
    pub forest: ForestConfig,
    /// Test fraction of the fixed split.
    pub test_fraction: f64,
    /// Features kept by DL|FE's importance selection.
    pub dlfe_keep: usize,
    /// Split/seed master.
    pub seed: u64,
}

impl Default for DlBaselineConfig {
    fn default() -> Self {
        Self {
            resnet: ResNetConfig {
                epochs: 25,
                ..ResNetConfig::default()
            },
            forest: ForestConfig::fast(),
            test_fraction: 0.25,
            dlfe_keep: 12,
            seed: 0xD1,
        }
    }
}

/// Score predictions with the paper's metric for the task.
fn score_predictions(
    test: &DataFrame,
    preds_class: Option<Vec<usize>>,
    preds_reg: Option<Vec<f64>>,
) -> Result<f64> {
    match test.label() {
        Label::Class { y, n_classes } => Ok(f1_score(
            y,
            &preds_class.expect("classification predictions"),
            *n_classes,
        )?),
        Label::Reg(y) => Ok(one_minus_rae(
            y,
            &preds_reg.expect("regression predictions"),
        )?),
    }
}

fn single_point_result(
    method: &str,
    frame: &DataFrame,
    score: f64,
    timer: &PhaseTimer,
) -> RunResult {
    RunResult {
        method: method.into(),
        dataset: frame.name.clone(),
        base_score: score,
        best_score: score,
        trace: vec![EpochPoint {
            epoch: 0,
            score,
            downstream_evals: 1,
            elapsed_secs: timer.total_secs(),
        }],
        generated_features: 0,
        downstream_evals: 1,
        selected: Vec::new(),
        generation_secs: timer.generation_secs(),
        eval_secs: timer.eval_secs(),
        total_secs: timer.total_secs(),
        // The DL baselines use a fixed split, not the cached CV evaluator.
        cache_hits: 0,
        cache_misses: 0,
    }
}

/// `RTDL_N`: ResNet feature extractor + RF head, fixed split.
pub fn run_rtdl_n(config: &DlBaselineConfig, frame: &DataFrame) -> Result<RunResult> {
    let mut frame = frame.clone();
    frame.sanitize();
    let _run_span = telemetry::span("rtdl.run_rtdl_n");
    let mut timer = PhaseTimer::new();
    timer.start();
    let split = train_test_indices(frame.n_rows(), config.test_fraction, config.seed)?;
    let train = frame.take_rows(&split.train)?;
    let test = frame.take_rows(&split.test)?;
    let xtr = feature_matrix(&train);
    let xte = feature_matrix(&test);

    let score = match train.label() {
        Label::Class { y, n_classes } => {
            let mut net = ResNetClassifier::new(ResNetConfig {
                seed: config.seed,
                ..config.resnet
            });
            timer.generation(|| net.fit(&xtr, y, *n_classes))?;
            // Re-head: RF on penultimate representations.
            let etr = net.embed(&xtr)?;
            let ete = net.embed(&xte)?;
            let mut rf = RandomForestClassifier::new(ForestConfig {
                seed: config.seed,
                ..config.forest
            });
            timer.evaluation(|| -> Result<()> {
                rf.fit(&etr, y, *n_classes)?;
                Ok(())
            })?;
            let preds = rf.predict(&ete)?;
            score_predictions(&test, Some(preds), None)?
        }
        Label::Reg(y) => {
            let mut net = ResNetRegressor::new(ResNetConfig {
                seed: config.seed,
                ..config.resnet
            });
            timer.generation(|| net.fit(&xtr, y))?;
            let etr = net.embed(&xtr)?;
            let ete = net.embed(&xte)?;
            let mut rf = RandomForestRegressor::new(ForestConfig {
                seed: config.seed,
                ..config.forest
            });
            timer.evaluation(|| -> Result<()> {
                rf.fit(&etr, y)?;
                Ok(())
            })?;
            let preds = rf.predict(&ete)?;
            score_predictions(&test, None, Some(preds))?
        }
    };
    Ok(single_point_result("RTDL_N", &frame, score, &timer))
}

/// `FE|DL`: an (already feature-engineered) frame scored by the ResNet's
/// own head on a fixed split.
pub fn run_fe_dl(config: &DlBaselineConfig, engineered: &DataFrame) -> Result<RunResult> {
    let mut frame = engineered.clone();
    frame.sanitize();
    let _run_span = telemetry::span("rtdl.run_fe_dl");
    let mut timer = PhaseTimer::new();
    timer.start();
    let split = train_test_indices(frame.n_rows(), config.test_fraction, config.seed)?;
    let train = frame.take_rows(&split.train)?;
    let test = frame.take_rows(&split.test)?;
    let xtr = feature_matrix(&train);
    let xte = feature_matrix(&test);

    let score = match train.label() {
        Label::Class { y, n_classes } => {
            let mut net = ResNetClassifier::new(ResNetConfig {
                seed: config.seed,
                ..config.resnet
            });
            timer.generation(|| net.fit(&xtr, y, *n_classes))?;
            let preds = timer.evaluation(|| net.predict(&xte))?;
            score_predictions(&test, Some(preds), None)?
        }
        Label::Reg(y) => {
            let mut net = ResNetRegressor::new(ResNetConfig {
                seed: config.seed,
                ..config.resnet
            });
            timer.generation(|| net.fit(&xtr, y))?;
            let preds = timer.evaluation(|| net.predict(&xte))?;
            score_predictions(&test, None, Some(preds))?
        }
    };
    Ok(single_point_result("FE|DL", &frame, score, &timer))
}

/// `DL|FE`: ResNet representation of the raw features → RF-importance
/// feature selection → RF scoring on the fixed split.
pub fn run_dl_fe(config: &DlBaselineConfig, frame: &DataFrame) -> Result<RunResult> {
    let mut frame = frame.clone();
    frame.sanitize();
    let _run_span = telemetry::span("rtdl.run_dl_fe");
    let mut timer = PhaseTimer::new();
    timer.start();
    let split = train_test_indices(frame.n_rows(), config.test_fraction, config.seed)?;
    let train = frame.take_rows(&split.train)?;
    let test = frame.take_rows(&split.test)?;
    let xtr = feature_matrix(&train);
    let xte = feature_matrix(&test);

    let score = match train.label() {
        Label::Class { y, n_classes } => {
            let mut net = ResNetClassifier::new(ResNetConfig {
                seed: config.seed,
                ..config.resnet
            });
            timer.generation(|| net.fit(&xtr, y, *n_classes))?;
            let etr = net.embed(&xtr)?;
            let ete = net.embed(&xte)?;
            // Feature engineering step: keep the most important embedding
            // dimensions by RF importance.
            let mut probe = RandomForestClassifier::new(ForestConfig {
                seed: config.seed,
                ..config.forest
            });
            probe.fit(&etr, y, *n_classes)?;
            let keep = top_k(&probe.feature_importances()?, config.dlfe_keep);
            let etr_sel = select_columns(&etr, &keep);
            let ete_sel = select_columns(&ete, &keep);
            let mut rf = RandomForestClassifier::new(ForestConfig {
                seed: config.seed ^ 1,
                ..config.forest
            });
            timer.evaluation(|| -> Result<()> {
                rf.fit(&etr_sel, y, *n_classes)?;
                Ok(())
            })?;
            score_predictions(&test, Some(rf.predict(&ete_sel)?), None)?
        }
        Label::Reg(y) => {
            let mut net = ResNetRegressor::new(ResNetConfig {
                seed: config.seed,
                ..config.resnet
            });
            timer.generation(|| net.fit(&xtr, y))?;
            let etr = net.embed(&xtr)?;
            let ete = net.embed(&xte)?;
            let mut probe = RandomForestRegressor::new(ForestConfig {
                seed: config.seed,
                ..config.forest
            });
            probe.fit(&etr, y)?;
            let keep = top_k(&probe.feature_importances()?, config.dlfe_keep);
            let etr_sel = select_columns(&etr, &keep);
            let ete_sel = select_columns(&ete, &keep);
            let mut rf = RandomForestRegressor::new(ForestConfig {
                seed: config.seed ^ 1,
                ..config.forest
            });
            timer.evaluation(|| -> Result<()> {
                rf.fit(&etr_sel, y)?;
                Ok(())
            })?;
            score_predictions(&test, None, Some(rf.predict(&ete_sel)?))?
        }
    };
    Ok(single_point_result("DL|FE", &frame, score, &timer))
}

/// Indices of the `k` largest importances.
pub fn top_k(importances: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..importances.len()).collect();
    idx.sort_by(|&a, &b| {
        importances[b]
            .partial_cmp(&importances[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k.max(1));
    idx.sort_unstable();
    idx
}

fn select_columns(x: &[Vec<f64>], keep: &[usize]) -> Vec<Vec<f64>> {
    keep.iter().map(|&i| x[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::{SynthSpec, Task};

    fn fast_config() -> DlBaselineConfig {
        DlBaselineConfig {
            resnet: ResNetConfig {
                epochs: 4,
                width: 12,
                n_blocks: 1,
                ..ResNetConfig::default()
            },
            forest: ForestConfig {
                n_trees: 6,
                ..ForestConfig::fast()
            },
            dlfe_keep: 6,
            ..Default::default()
        }
    }

    fn class_frame() -> DataFrame {
        SynthSpec::new("dl-c", 150, 6, Task::Classification)
            .with_seed(11)
            .generate()
            .unwrap()
    }

    fn reg_frame() -> DataFrame {
        SynthSpec::new("dl-r", 150, 6, Task::Regression)
            .with_seed(12)
            .generate()
            .unwrap()
    }

    #[test]
    fn rtdl_n_runs_both_tasks() {
        let cfg = fast_config();
        let rc = run_rtdl_n(&cfg, &class_frame()).unwrap();
        assert_eq!(rc.method, "RTDL_N");
        assert!(rc.best_score.is_finite());
        assert!((0.0..=1.0).contains(&rc.best_score));
        let rr = run_rtdl_n(&cfg, &reg_frame()).unwrap();
        assert!(rr.best_score.is_finite());
    }

    #[test]
    fn fe_dl_and_dl_fe_run() {
        let cfg = fast_config();
        let f = class_frame();
        let a = run_fe_dl(&cfg, &f).unwrap();
        assert_eq!(a.method, "FE|DL");
        let b = run_dl_fe(&cfg, &f).unwrap();
        assert_eq!(b.method, "DL|FE");
        assert!(a.best_score.is_finite() && b.best_score.is_finite());
        // Regression variants.
        let r = reg_frame();
        assert!(run_fe_dl(&cfg, &r).is_ok());
        assert!(run_dl_fe(&cfg, &r).is_ok());
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = fast_config();
        let f = class_frame();
        let a = run_rtdl_n(&cfg, &f).unwrap();
        let b = run_rtdl_n(&cfg, &f).unwrap();
        assert_eq!(a.best_score, b.best_score);
    }

    #[test]
    fn top_k_selects_largest() {
        let imp = [0.1, 0.5, 0.05, 0.3, 0.05];
        assert_eq!(top_k(&imp, 2), vec![1, 3]);
        assert_eq!(top_k(&imp, 100).len(), 5);
        assert_eq!(top_k(&imp, 0).len(), 1); // clamped to 1
    }
}
