//! The `AutoFS_R` baseline (paper §IV-A3): the AutoFS interactive
//! reinforcement-learning *feature selection* framework applied to a pool
//! of **randomly generated** features.
//!
//! AutoFS cannot generate features, so the paper feeds it a random pool:
//! "we generated features randomly and selected features by AutoFS". Here
//! a pool of random transformations is produced up front (uniform operator
//! and operand choices, no learning), then one binary keep/drop RL agent
//! per feature performs selection, rewarded by the downstream score gain.
//! Every toggle is evaluated on the downstream task, which is why Table IV
//! shows `FS_R` with the highest evaluation counts.

use crate::config::EafeConfig;
use crate::error::Result;
use crate::ops::{GeneratedFeature, Operator};
use crate::report::{EpochPoint, EvalCounter, PhaseTimer, RunResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl::{PolicyConfig, RnnPolicy};
use runtime::ScoreCache;
use std::sync::Arc;
use tabular::{Column, DataFrame};

/// Generate `count` random features from uniformly chosen operators and
/// operands over the original features (+ previously generated ones, so
/// higher orders are reachable). Degenerate outputs are skipped.
pub fn random_feature_pool(
    frame: &DataFrame,
    count: usize,
    max_order: usize,
    rng: &mut StdRng,
) -> Vec<GeneratedFeature> {
    let mut pool: Vec<GeneratedFeature> = Vec::with_capacity(count);
    let originals: Vec<(&Column, usize)> = frame.columns().iter().map(|c| (c, 0usize)).collect();
    let mut attempts = 0usize;
    while pool.len() < count && attempts < count * 10 {
        attempts += 1;
        let op = Operator::ALL[rng.gen_range(0..Operator::ALL.len())];
        let pick = |rng: &mut StdRng, pool: &[GeneratedFeature]| -> (Column, usize) {
            let total = originals.len() + pool.len();
            let idx = rng.gen_range(0..total);
            if idx < originals.len() {
                (originals[idx].0.clone(), originals[idx].1)
            } else {
                let g = &pool[idx - originals.len()];
                (g.column.clone(), g.order)
            }
        };
        let (a, ao) = pick(rng, &pool);
        let (b, bo) = pick(rng, &pool);
        let feat = GeneratedFeature::generate(op, &a, ao, &b, bo);
        if feat.is_degenerate() || feat.order > max_order {
            continue;
        }
        // Skip exact-name duplicates to keep the pool diverse.
        if pool.iter().any(|g| g.column.name == feat.column.name) {
            continue;
        }
        pool.push(feat);
    }
    pool
}

/// Run the `AutoFS_R` baseline.
///
/// The pool size is `steps_per_epoch × n_original` (matching the per-epoch
/// generation budget of the RNN methods) and selection runs for
/// `stage2_epochs` epochs, evaluating after every agent toggle.
pub fn run_autofs_r(config: &EafeConfig, frame: &DataFrame) -> Result<RunResult> {
    Ok(run_autofs_r_full(config, frame)?.0)
}

/// Like [`run_autofs_r`], but sharing an externally owned runtime score
/// cache, so toggles whose frames were already evaluated by any consumer
/// of the same cache are served without recomputation.
pub fn run_autofs_r_cached(
    config: &EafeConfig,
    frame: &DataFrame,
    cache: Arc<ScoreCache<f64>>,
) -> Result<(RunResult, DataFrame)> {
    run_autofs_r_impl(config, frame, Some(cache))
}

/// Like [`run_autofs_r`], but also returns the engineered frame (original
/// features plus the best selected subset) for Table V re-evaluation.
pub fn run_autofs_r_full(config: &EafeConfig, frame: &DataFrame) -> Result<(RunResult, DataFrame)> {
    run_autofs_r_impl(config, frame, None)
}

fn run_autofs_r_impl(
    config: &EafeConfig,
    frame: &DataFrame,
    cache: Option<Arc<ScoreCache<f64>>>,
) -> Result<(RunResult, DataFrame)> {
    config.validate()?;
    let mut frame = frame.clone();
    frame.sanitize();

    let _run_span = telemetry::span("autofs.run");
    let mut timer = PhaseTimer::new();
    timer.start();
    let mut counter = EvalCounter::default();
    let mut rng = StdRng::seed_from_u64(config.seed ^ 0xA0F5);

    let evaluator = match cache {
        Some(shared) => runtime::Evaluator::with_cache(config.evaluator.clone(), shared),
        None => runtime::Evaluator::new(config.evaluator.clone()),
    };
    let cache_start = evaluator.stats();

    let base_score = timer.evaluation(|| evaluator.evaluate(&frame))?;
    counter.evaluate();

    // Random generation phase.
    let pool_size = (config.steps_per_epoch * frame.n_cols()).max(4);
    let pool =
        timer.generation(|| random_feature_pool(&frame, pool_size, config.max_order, &mut rng));
    counter.generated += pool.len();

    // One binary agent per pool feature.
    let policy_cfg = PolicyConfig {
        state_dim: 4,
        hidden_dim: 8,
        n_actions: 2, // 0 = drop, 1 = keep
        lr: config.policy.lr,
        entropy_coef: config.policy.entropy_coef,
        l2: config.policy.l2,
        seed: config.seed,
    };
    let mut agents: Vec<RnnPolicy> = (0..pool.len())
        .map(|j| {
            RnnPolicy::new(PolicyConfig {
                seed: config.seed ^ (j as u64).wrapping_mul(0x51_7C),
                ..policy_cfg
            })
        })
        .collect::<rl::Result<_>>()?;

    let mut selected: Vec<bool> = vec![false; pool.len()];
    let mut current_score = base_score;
    let mut best_score = base_score;
    let mut best_selected = selected.clone();
    let mut trace = vec![EpochPoint {
        epoch: 0,
        score: base_score,
        downstream_evals: counter.evaluated,
        elapsed_secs: timer.total_secs(),
    }];

    let epochs = config.stage1_epochs + config.stage2_epochs;
    for epoch in 0..epochs {
        let mut epoch_span = telemetry::span("autofs.epoch");
        epoch_span.field("epoch", epoch as f64);
        let epoch_frac = epoch as f64 / epochs.max(1) as f64;
        for (j, agent) in agents.iter_mut().enumerate() {
            agent.reset();
            let n_selected = selected.iter().filter(|&&s| s).count();
            let x = [
                1.0,
                epoch_frac,
                n_selected as f64 / pool.len().max(1) as f64,
                current_score.clamp(-1.0, 1.0),
            ];
            let cache = timer.generation(|| agent.step(&x, &mut rng))?;
            let keep = cache.action == 1;
            if keep == selected[j] {
                // No state change: reward 0, still a learning signal.
                timer.generation(|| agent.update(&[(cache, 0.0)]))?;
                continue;
            }
            let mut trial = selected.clone();
            trial[j] = keep;
            let candidate = assemble(&frame, &pool, &trial)?;
            let score = {
                let _eval_span = telemetry::span("autofs.evaluate");
                timer.evaluation(|| evaluator.evaluate(&candidate))?
            };
            counter.evaluate();
            let reward = score - current_score;
            if reward > 0.0 {
                selected = trial;
                current_score = score;
                if score > best_score {
                    best_score = score;
                    best_selected = selected.clone();
                }
            }
            timer.generation(|| agent.update(&[(cache, reward)]))?;
        }
        trace.push(EpochPoint {
            epoch: epoch + 1,
            score: best_score,
            downstream_evals: counter.evaluated,
            elapsed_secs: timer.total_secs(),
        });
    }

    let selected_names: Vec<String> = pool
        .iter()
        .zip(&best_selected)
        .filter(|(_, &s)| s)
        .map(|(g, _)| g.column.name.clone())
        .collect();

    let engineered = assemble(&frame, &pool, &best_selected)?;
    let cache_stats = evaluator.stats().since(&cache_start);
    let result = RunResult {
        method: "AutoFS_R".into(),
        dataset: frame.name.clone(),
        base_score,
        best_score,
        trace,
        generated_features: counter.generated,
        downstream_evals: counter.evaluated,
        selected: selected_names,
        generation_secs: timer.generation_secs(),
        eval_secs: timer.eval_secs(),
        total_secs: timer.total_secs(),
        cache_hits: cache_stats.hits,
        cache_misses: cache_stats.misses,
    };
    Ok((result, engineered))
}

fn assemble(frame: &DataFrame, pool: &[GeneratedFeature], selected: &[bool]) -> Result<DataFrame> {
    let extra: Vec<Column> = pool
        .iter()
        .zip(selected)
        .filter(|(_, &s)| s)
        .map(|(g, _)| g.column.clone())
        .collect();
    Ok(frame.with_extra_columns(&extra)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::{SynthSpec, Task};

    fn frame() -> DataFrame {
        SynthSpec::new("autofs-test", 120, 4, Task::Classification)
            .with_seed(8)
            .generate()
            .unwrap()
    }

    #[test]
    fn pool_respects_order_and_uniqueness() {
        let f = frame();
        let mut rng = StdRng::seed_from_u64(1);
        let pool = random_feature_pool(&f, 20, 3, &mut rng);
        assert!(!pool.is_empty());
        for g in &pool {
            assert!(g.order <= 3);
            assert!(!g.is_degenerate());
        }
        let mut names: Vec<&str> = pool.iter().map(|g| g.column.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "pool contains duplicate expressions");
    }

    #[test]
    fn autofs_improves_or_matches_base() {
        let result = run_autofs_r(&EafeConfig::fast(), &frame()).unwrap();
        assert_eq!(result.method, "AutoFS_R");
        assert!(result.best_score >= result.base_score);
        assert!(result.generated_features > 0);
        assert!(result.downstream_evals >= 1);
        assert_eq!(
            result.trace.len(),
            EafeConfig::fast().stage1_epochs + EafeConfig::fast().stage2_epochs + 1
        );
    }

    #[test]
    fn autofs_is_deterministic() {
        let a = run_autofs_r(&EafeConfig::fast(), &frame()).unwrap();
        let b = run_autofs_r(&EafeConfig::fast(), &frame()).unwrap();
        assert_eq!(a.best_score, b.best_score);
        assert_eq!(a.selected, b.selected);
    }

    #[test]
    fn selected_features_come_from_pool() {
        let result = run_autofs_r(&EafeConfig::fast(), &frame()).unwrap();
        for name in &result.selected {
            assert!(
                name.contains('f'),
                "selected feature `{name}` has unexpected name"
            );
        }
    }
}
