//! Baseline methods compared against E-AFE in the paper's Table III:
//! `AutoFS_R` (RL feature selection over a random pool) and the
//! deep-learning baselines (`RTDL_N`, `FE|DL`, `DL|FE`). `NFS`, `E-AFE_D`
//! and `E-AFE_R` share E-AFE's unified [`crate::engine::Engine`].

pub mod autofs;
pub mod rtdl;

pub use autofs::{random_feature_pool, run_autofs_r, run_autofs_r_cached, run_autofs_r_full};
pub use rtdl::{run_dl_fe, run_fe_dl, run_rtdl_n, top_k, DlBaselineConfig};
