//! Configuration for the E-AFE engine, mirroring the paper's §IV-A4
//! reproducibility settings: Adam with learning rate 0.01, batch size 32,
//! 4 unary + 5 binary operators, maximum order 5, threshold `thre` = 0.01,
//! MinHash output dimension 48 with CCWS, 200 training epochs per stage.

use crate::error::{EafeError, Result};
use learners::{Evaluator, ModelKind, SplitMethod};
use minhash::HashFamily;
use rl::{PolicyConfig, ReturnConfig};
use serde::{Deserialize, Serialize};

/// A downstream evaluator wrapped with the runtime's content-addressed
/// score cache: identical (dataset content, learner config, folds, CV
/// seed) evaluations are computed once and served from cache after.
pub type CachedEvaluator = runtime::Evaluator<Evaluator>;

/// Full engine configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EafeConfig {
    /// Maximum transformation order (composition depth); paper default 5.
    pub max_order: usize,
    /// Feature transformations each agent attempts per epoch (`T`).
    pub steps_per_epoch: usize,
    /// Stage-1 (FPE-surrogate) training epochs.
    pub stage1_epochs: usize,
    /// Stage-2 (downstream-task) training epochs.
    pub stage2_epochs: usize,
    /// FPE label threshold `thre`; paper default 0.01.
    pub thre: f64,
    /// MinHash signature output dimension `d`; paper default 48.
    pub signature_dim: usize,
    /// MinHash family; paper default CCWS.
    pub hash_family: HashFamily,
    /// Replay-buffer capacity for stage-1 positives.
    pub replay_capacity: usize,
    /// Cap on selected generated features (as a multiple of the original
    /// feature count) so the state space stays bounded.
    pub max_generated_ratio: f64,
    /// Return discounting (γ, λ, horizon).
    pub returns: ReturnConfig,
    /// RL policy settings (the RNN agent per feature).
    pub policy: PolicyConfig,
    /// Downstream evaluator (model kind, CV folds, forest settings).
    pub evaluator: Evaluator,
    /// Stop stage-2 training early when the best score has not improved
    /// for this many consecutive epochs (`None` disables early stopping —
    /// the paper's headline comparison runs "the same epoch without early
    /// stopping", but its complexity analysis assumes the option exists).
    pub early_stop_patience: Option<usize>,
    /// Master seed.
    pub seed: u64,
}

impl Default for EafeConfig {
    fn default() -> Self {
        Self {
            max_order: 5,
            steps_per_epoch: 4,
            stage1_epochs: 8,
            stage2_epochs: 8,
            thre: 0.01,
            signature_dim: 48,
            hash_family: HashFamily::Ccws,
            replay_capacity: 64,
            max_generated_ratio: 2.0,
            returns: ReturnConfig::default(),
            policy: PolicyConfig::default(),
            evaluator: Evaluator::with_kind(ModelKind::RandomForest),
            early_stop_patience: None,
            seed: 0xE_AFE,
        }
    }
}

impl EafeConfig {
    /// A fast configuration for unit tests and examples: fewer epochs,
    /// fewer steps, smaller forests.
    pub fn fast() -> Self {
        let mut cfg = Self {
            steps_per_epoch: 2,
            stage1_epochs: 2,
            stage2_epochs: 2,
            signature_dim: 16,
            ..Self::default()
        };
        cfg.evaluator.folds = 3;
        cfg.evaluator.forest.n_trees = 8;
        cfg.evaluator.forest.tree.max_depth = 6;
        cfg
    }

    /// Wrap this configuration's downstream evaluator with a fresh
    /// (private) runtime score cache.
    pub fn cached_evaluator(&self) -> CachedEvaluator {
        runtime::Evaluator::new(self.evaluator.clone())
    }

    /// Select the forest split-finding path (`Exact` reference scan or
    /// `Histogram` binned training) for every downstream evaluation this
    /// engine runs.
    pub fn with_split_method(mut self, split: SplitMethod) -> Self {
        self.evaluator.forest.tree.split = split;
        self
    }

    /// Validate parameter domains.
    pub fn validate(&self) -> Result<()> {
        if self.max_order == 0 {
            return Err(EafeError::InvalidConfig("max_order must be >= 1".into()));
        }
        if self.steps_per_epoch == 0 {
            return Err(EafeError::InvalidConfig(
                "steps_per_epoch must be >= 1".into(),
            ));
        }
        if self.signature_dim == 0 {
            return Err(EafeError::InvalidConfig(
                "signature_dim must be >= 1".into(),
            ));
        }
        if !(0.0..1.0).contains(&self.thre) {
            return Err(EafeError::InvalidConfig(format!(
                "thre must be in [0,1), got {}",
                self.thre
            )));
        }
        if self.max_generated_ratio <= 0.0 {
            return Err(EafeError::InvalidConfig(
                "max_generated_ratio must be > 0".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.returns.gamma) {
            return Err(EafeError::InvalidConfig("gamma must be in [0,1]".into()));
        }
        if !(0.0..1.0).contains(&self.returns.lambda) {
            return Err(EafeError::InvalidConfig("lambda must be in [0,1)".into()));
        }
        if self.early_stop_patience == Some(0) {
            return Err(EafeError::InvalidConfig(
                "early_stop_patience must be >= 1 when set".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit per-field tweaks read clearer in tests
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_settings() {
        let c = EafeConfig::default();
        assert_eq!(c.max_order, 5);
        assert_eq!(c.thre, 0.01);
        assert_eq!(c.signature_dim, 48);
        assert_eq!(c.hash_family, HashFamily::Ccws);
        assert_eq!(c.policy.lr, 0.01);
        assert_eq!(c.evaluator.folds, 5);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn fast_config_is_valid_and_smaller() {
        let c = EafeConfig::fast();
        assert!(c.validate().is_ok());
        assert!(c.stage1_epochs < EafeConfig::default().stage1_epochs);
    }

    #[test]
    fn validation_catches_bad_domains() {
        let mut c = EafeConfig::default();
        c.max_order = 0;
        assert!(c.validate().is_err());
        let mut c = EafeConfig::default();
        c.thre = 1.5;
        assert!(c.validate().is_err());
        let mut c = EafeConfig::default();
        c.returns.lambda = 1.0;
        assert!(c.validate().is_err());
        let mut c = EafeConfig::default();
        c.signature_dim = 0;
        assert!(c.validate().is_err());
        let mut c = EafeConfig::default();
        c.max_generated_ratio = 0.0;
        assert!(c.validate().is_err());
        let mut c = EafeConfig::default();
        c.early_stop_patience = Some(0);
        assert!(c.validate().is_err());
    }
}
