//! The resumable stepped search: [`Engine::start`] / [`Engine::step`] /
//! [`Engine::finish`].
//!
//! [`Engine::run`] used to be one blocking loop; it is now a thin driver
//! over an explicit state machine so a long-lived server can interleave
//! many searches on one process (`crates/serve`), pause a search at any
//! epoch boundary, checkpoint it to disk, and resume it — on the same or
//! a different process — with **bit-identical** results.
//!
//! The unit of work is one *slice*: a stage-1 epoch, the stage-1→2
//! replay seeding, or a stage-2 epoch. Each [`Engine::step`] call runs
//! exactly one slice and returns an [`EpochReport`] carrying the
//! best-so-far score and weighted feature set — the anytime contract: a
//! caller can stop after any slice and keep the best result found so far.
//!
//! ## Determinism contract
//!
//! [`SearchState`] is serde-serializable and captures *everything* the
//! search depends on: the sanitized frame, per-agent policies (including
//! Adam moments), both RNG streams (as raw xoshiro state words), the
//! replay buffer, the adaptive gate window, and all counters. Restoring a
//! checkpoint and stepping to completion therefore produces the same
//! scores, evaluation counts, and selected features — bit for bit — as an
//! uninterrupted run, under any thread count. Two things are deliberately
//! *outside* the contract, because they are process-local observability:
//! wall-clock times (`elapsed_secs` and friends) and score-cache
//! hit/miss tallies (a resumed run starts with a cold private cache; the
//! cache only short-circuits recomputation, never changes a score).

use crate::config::{CachedEvaluator, EafeConfig};
use crate::engine::{Engine, Gate};
use crate::error::{EafeError, Result};
use crate::ops::{GeneratedFeature, Operator};
use crate::report::{
    EpochPoint, EpochReport, EvalCounter, PhaseTimer, RunResult, SearchStage, WeightedFeature,
};
use crate::reward::SurrogateReward;
use crate::state::EngineState;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rl::{returns_from_scores, rewards_to_go, score_gains, ReplayBuffer, RnnPolicy, StepCache};
use serde::{DeError, Deserialize, Serialize, Value};
use tabular::{Column, DataFrame};

/// Where a search currently stands; advanced by [`Engine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchPhase {
    /// Stage-1 (FPE-surrogate) training, about to run this epoch.
    Stage1 {
        /// Next stage-1 epoch index to run.
        epoch: usize,
    },
    /// About to replay stage-1 positives against the downstream task.
    Seed,
    /// Stage-2 (downstream-task) training, about to run this epoch.
    Stage2 {
        /// Next stage-2 epoch index to run.
        epoch: usize,
    },
    /// The search has finished; [`Engine::step`] is a no-op.
    Done,
}

/// A serializable snapshot of both engine RNG streams (xoshiro256++
/// state words, captured via the vendored `StdRng`'s state accessor).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct RngState([u64; 4]);

impl RngState {
    fn seed(seed: u64) -> Self {
        RngState(StdRng::seed_from_u64(seed).state())
    }

    fn to_rng(self) -> StdRng {
        StdRng::from_state(self.0)
    }

    fn capture(rng: &StdRng) -> Self {
        RngState(rng.state())
    }
}

/// Adaptive FPE gate threshold for stage 2.
///
/// The paper asserts E-AFE's "drop rate is more than 0.5"; a fixed 0.5
/// probability cut cannot guarantee that when the classifier's output
/// distribution on *generated* (rather than original) features is shifted.
/// The gate therefore passes a candidate only when its effective-class
/// probability clears both 0.5 and the running median of recently observed
/// scores — keeping the classifier's ranking while pinning the asymptotic
/// pass rate at ≤ 50%.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) struct AdaptiveGate {
    window: Vec<f64>,
    cap: usize,
}

impl AdaptiveGate {
    pub(crate) fn new(cap: usize) -> Self {
        Self {
            window: Vec::with_capacity(cap),
            cap: cap.max(1),
        }
    }

    /// Record the score and decide whether the candidate passes.
    pub(crate) fn observe_and_pass(&mut self, p: f64) -> bool {
        if self.window.len() == self.cap {
            self.window.remove(0);
        }
        self.window.push(p);
        let mut sorted = self.window.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let median = sorted[sorted.len() / 2];
        p >= median.max(0.5)
    }
}

/// The serializable body of a [`SearchState`] (everything the search
/// depends on; see the module docs for the determinism contract).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct SearchCore {
    /// The sanitized base frame the search runs on.
    frame: DataFrame,
    /// Subgroups, current score, last reward.
    state: EngineState,
    /// One RNN policy per original feature.
    policies: Vec<RnnPolicy>,
    /// Policy/generation RNG stream.
    rng: RngState,
    /// Dedicated dropout-gate stream (see `Engine::run_full`'s notes).
    gate_rng: RngState,
    /// Stage-1 positives awaiting downstream replay.
    replay: ReplayBuffer<GeneratedFeature>,
    /// Stage-2 adaptive FPE gate window.
    fpe_gate: AdaptiveGate,
    /// Current position in the search.
    phase: SearchPhase,
    /// Downstream score of the raw feature set.
    base_score: f64,
    /// Best downstream score achieved so far.
    best_score: f64,
    /// Stage-2 learning curve (epoch 0 = the base evaluation).
    trace: Vec<EpochPoint>,
    /// Generated/evaluated/dropped tallies.
    counter: EvalCounter,
    /// Stage-2 epochs since the best score last improved.
    epochs_since_improvement: usize,
    /// Cap on accepted generated features.
    max_generated: usize,
    /// Completed [`Engine::step`] slices.
    slices: usize,
    /// Accepted features with their downstream score gains, in
    /// acceptance order — the anytime weighted feature set.
    weighted: Vec<WeightedFeature>,
    /// Accumulated generation seconds across slices.
    generation_secs: f64,
    /// Accumulated evaluation seconds across slices.
    eval_secs: f64,
    /// Accumulated total compute seconds across slices (excludes time
    /// the search spends parked between slices).
    total_secs: f64,
    /// Score-cache hits attributed to this search.
    cache_hits: u64,
    /// Score-cache misses attributed to this search.
    cache_misses: u64,
}

/// A paused (or finished) search: the resumable state machine behind
/// [`Engine::run`], produced by [`Engine::start`] and advanced one
/// epoch-granular slice at a time by [`Engine::step`].
///
/// Serializing a `SearchState` checkpoints the search; deserializing and
/// stepping to completion reproduces the uninterrupted run bit for bit
/// (scores, evaluation counts, selected features — see the module docs
/// for what is excluded). The evaluator handle is process-local and is
/// lazily rebuilt from the engine after a restore.
pub struct SearchState {
    core: SearchCore,
    /// Process-local caching evaluator; rebuilt lazily after deserialize.
    evaluator: Option<CachedEvaluator>,
}

impl Serialize for SearchState {
    fn to_value(&self) -> Value {
        self.core.to_value()
    }
}

impl Deserialize for SearchState {
    fn from_value(v: &Value) -> std::result::Result<Self, DeError> {
        Ok(SearchState {
            core: SearchCore::from_value(v)?,
            evaluator: None,
        })
    }
}

impl Clone for SearchState {
    fn clone(&self) -> Self {
        SearchState {
            core: self.core.clone(),
            // The clone re-derives its own evaluator on first step so the
            // two copies do not share a private cache (mirrors restore).
            evaluator: self.evaluator.clone(),
        }
    }
}

impl SearchState {
    /// True once the search has consumed all its epochs (or stopped
    /// early); further [`Engine::step`] calls are no-ops.
    pub fn is_done(&self) -> bool {
        self.core.phase == SearchPhase::Done
    }

    /// Current position in the search.
    pub fn phase(&self) -> SearchPhase {
        self.core.phase
    }

    /// Dataset name this search runs on.
    pub fn dataset(&self) -> &str {
        &self.core.frame.name
    }

    /// Downstream score of the raw feature set.
    pub fn base_score(&self) -> f64 {
        self.core.base_score
    }

    /// Best downstream score achieved so far.
    pub fn best_score(&self) -> f64 {
        self.core.best_score
    }

    /// Completed [`Engine::step`] slices.
    pub fn epochs_completed(&self) -> usize {
        self.core.slices
    }

    /// Cumulative downstream evaluations so far.
    pub fn downstream_evals(&self) -> usize {
        self.core.counter.evaluated
    }

    /// Cumulative features generated so far (before any gate).
    pub fn features_generated(&self) -> usize {
        self.core.counter.generated
    }

    /// Accumulated compute seconds (excludes time parked between slices).
    pub fn elapsed_secs(&self) -> f64 {
        self.core.total_secs
    }

    /// Best-so-far weighted feature set, in acceptance order: each
    /// accepted feature with the downstream score gain it delivered.
    pub fn best_features(&self) -> &[WeightedFeature] {
        &self.core.weighted
    }

    /// Stage-2 learning curve so far (epoch 0 = the base evaluation).
    pub fn trace(&self) -> &[EpochPoint] {
        &self.core.trace
    }
}

impl Engine {
    pub(crate) fn make_evaluator(&self) -> CachedEvaluator {
        match &self.cache {
            Some(shared) => runtime::Evaluator::with_cache(
                self.config.evaluator.clone(),
                std::sync::Arc::clone(shared),
            ),
            None => runtime::Evaluator::new(self.config.evaluator.clone()),
        }
    }

    /// Validate the configuration and open a resumable search on `frame`:
    /// sanitize it, score the raw feature set, and set up policies, RNG
    /// streams, and counters. Advance the search with [`Engine::step`].
    pub fn start(&self, frame: &DataFrame) -> Result<SearchState> {
        self.config.validate()?;
        if matches!(&self.gate, Gate::RandomDrop { rate } if !(0.0..=1.0).contains(rate)) {
            return Err(EafeError::InvalidConfig(
                "drop rate must be in [0,1]".into(),
            ));
        }
        if self.two_stage && !matches!(self.gate, Gate::Fpe(_)) {
            return Err(EafeError::InvalidConfig(
                "two-stage training requires an FPE gate".into(),
            ));
        }
        let mut frame = frame.clone();
        frame.sanitize();

        let cfg = &self.config;
        let mut timer = PhaseTimer::new();
        timer.start();
        let mut counter = EvalCounter::default();
        let rng = RngState::seed(cfg.seed);
        // The dropout gate draws from its own stream so gating decisions
        // never perturb policy/generation draws: E-AFE_D with rate 0 must
        // explore exactly the candidates NFS does.
        let gate_rng = RngState::seed(runtime::derive_seed(cfg.seed, 0x67617465, 0));

        // Every downstream evaluation goes through the runtime's
        // content-addressed cache: repeat candidates (replayed features,
        // re-explored transformations) are computed once.
        let evaluator = self.make_evaluator();
        let cache_start = evaluator.stats();

        let base_score = {
            let _eval_span = telemetry::span("engine.evaluate");
            timer.evaluation(|| evaluator.evaluate(&frame))?
        };
        counter.evaluate();
        let state = EngineState::new(&frame, base_score);
        let n_agents = state.n_agents();
        let max_generated = ((n_agents as f64 * cfg.max_generated_ratio).ceil() as usize).max(1);

        let mut policy_cfg = cfg.policy;
        policy_cfg.state_dim = EngineState::EMBEDDING_DIM;
        policy_cfg.n_actions = Operator::ALL.len();
        let policies: Vec<RnnPolicy> = (0..n_agents)
            .map(|j| {
                RnnPolicy::new(rl::PolicyConfig {
                    seed: cfg.seed ^ (j as u64).wrapping_mul(0x9E3779B9),
                    ..policy_cfg
                })
            })
            .collect::<rl::Result<_>>()?;

        let trace = vec![EpochPoint {
            epoch: 0,
            score: base_score,
            downstream_evals: counter.evaluated,
            elapsed_secs: timer.total_secs(),
        }];

        let phase = if self.two_stage {
            if cfg.stage1_epochs > 0 {
                SearchPhase::Stage1 { epoch: 0 }
            } else {
                SearchPhase::Seed
            }
        } else if cfg.stage2_epochs > 0 {
            SearchPhase::Stage2 { epoch: 0 }
        } else {
            SearchPhase::Done
        };

        let cache_delta = evaluator.stats().since(&cache_start);
        Ok(SearchState {
            core: SearchCore {
                frame,
                state,
                policies,
                rng,
                gate_rng,
                replay: ReplayBuffer::new(cfg.replay_capacity),
                fpe_gate: AdaptiveGate::new(256),
                phase,
                base_score,
                best_score: base_score,
                trace,
                counter,
                epochs_since_improvement: 0,
                max_generated,
                slices: 0,
                weighted: Vec::new(),
                generation_secs: timer.generation_secs(),
                eval_secs: timer.eval_secs(),
                total_secs: timer.total_secs(),
                cache_hits: cache_delta.hits,
                cache_misses: cache_delta.misses,
            },
            evaluator: Some(evaluator),
        })
    }

    /// Run one epoch-granular slice of the search (a stage-1 epoch, the
    /// replay seeding, or a stage-2 epoch) and report the best-so-far
    /// result. Calling `step` on a finished search is a no-op that
    /// returns the terminal report.
    pub fn step(&self, search: &mut SearchState) -> Result<EpochReport> {
        let (stage, epoch) = match search.core.phase {
            SearchPhase::Done => return Ok(self.report(search, SearchStage::Stage2, 0)),
            SearchPhase::Stage1 { epoch } => (SearchStage::Stage1, epoch),
            SearchPhase::Seed => (SearchStage::Seed, 0),
            SearchPhase::Stage2 { epoch } => (SearchStage::Stage2, epoch),
        };
        let evaluator = search
            .evaluator
            .get_or_insert_with(|| self.make_evaluator())
            .clone();
        let mut timer = PhaseTimer::new();
        timer.start();
        let cache_start = evaluator.stats();

        match stage {
            SearchStage::Stage1 => self.step_stage1(&mut search.core, &mut timer, epoch)?,
            SearchStage::Seed => self.step_seed(&mut search.core, &evaluator, &mut timer)?,
            SearchStage::Stage2 => {
                self.step_stage2(&mut search.core, &evaluator, &mut timer, epoch)?
            }
        }

        let core = &mut search.core;
        core.slices += 1;
        core.generation_secs += timer.generation_secs();
        core.eval_secs += timer.eval_secs();
        core.total_secs += timer.total_secs();
        let delta = evaluator.stats().since(&cache_start);
        core.cache_hits += delta.hits;
        core.cache_misses += delta.misses;
        Ok(self.report(search, stage, epoch))
    }

    fn report(&self, search: &SearchState, stage: SearchStage, epoch: usize) -> EpochReport {
        let core = &search.core;
        EpochReport {
            stage,
            epoch,
            epochs_completed: core.slices,
            base_score: core.base_score,
            best_score: core.best_score,
            best_features: core.weighted.clone(),
            generated: core.counter.generated,
            downstream_evals: core.counter.evaluated,
            elapsed_secs: core.total_secs,
            done: core.phase == SearchPhase::Done,
        }
    }

    /// One stage-1 epoch: every agent explores against the FPE surrogate;
    /// promising candidates accumulate in the replay buffer.
    #[allow(clippy::needless_range_loop)] // `policies[j]` mirrors the paper's per-agent notation
    fn step_stage1(
        &self,
        core: &mut SearchCore,
        timer: &mut PhaseTimer,
        epoch: usize,
    ) -> Result<()> {
        let cfg = &self.config;
        let fpe = match &self.gate {
            Gate::Fpe(m) => m.as_ref(),
            _ => {
                return Err(EafeError::InvalidConfig(
                    "stage-1 search state requires an FPE gate".into(),
                ))
            }
        };
        let mut rng = core.rng.to_rng();
        let surrogate = SurrogateReward::new(core.base_score, cfg.thre);
        let total_epochs = cfg.stage1_epochs.max(1);
        let n_agents = core.state.n_agents();

        let mut epoch_span = telemetry::span("engine.stage1_epoch");
        epoch_span.field("epoch", epoch as f64);
        let epoch_frac = epoch as f64 / total_epochs as f64;
        for j in 0..n_agents {
            core.policies[j].reset();
            let mut episode: Vec<StepCache> = Vec::with_capacity(cfg.steps_per_epoch);
            let mut pseudo_scores = Vec::with_capacity(cfg.steps_per_epoch);
            for t in 0..cfg.steps_per_epoch {
                let feat = {
                    let x =
                        core.state
                            .embedding(j, t, cfg.steps_per_epoch, epoch_frac, cfg.max_order);
                    let cache = timer.generation(|| core.policies[j].step(&x, &mut rng))?;
                    let op = Operator::from_action(cache.action);
                    let feat =
                        timer.generation(|| generate_candidate(&core.state, j, op, &mut rng));
                    episode.push(cache);
                    feat
                };
                core.counter.generate();
                let pseudo = if feat.is_degenerate() || feat.order > cfg.max_order {
                    core.counter.drop_feature();
                    surrogate.pseudo_score(0.0)
                } else {
                    let p = timer.generation(|| fpe.score_feature(&feat.column.values))?;
                    if p >= 0.5 {
                        telemetry::count("fpe.gate.accept", 1);
                        core.replay.push(p, feat);
                    } else {
                        telemetry::count("fpe.gate.reject", 1);
                        core.counter.drop_feature();
                    }
                    surrogate.pseudo_score(p)
                };
                pseudo_scores.push(pseudo);
            }
            let rets = {
                let _reward_span = telemetry::span("engine.reward");
                returns_from_scores(&pseudo_scores, core.base_score, &cfg.returns)
            };
            let steps: Vec<(StepCache, f64)> = episode.into_iter().zip(rets).collect();
            let _update_span = telemetry::span("engine.policy_update");
            timer.generation(|| core.policies[j].update(&steps))?;
        }
        core.rng = RngState::capture(&rng);
        core.phase = if epoch + 1 < cfg.stage1_epochs {
            SearchPhase::Stage1 { epoch: epoch + 1 }
        } else {
            SearchPhase::Seed
        };
        Ok(())
    }

    /// Seed stage 2: replay the promising stage-1 features against the
    /// real downstream task (Algorithm 2 line 16). The drain is capped at
    /// one epoch's generation budget so the one-time seeding cost stays
    /// comparable to a single training epoch.
    fn step_seed(
        &self,
        core: &mut SearchCore,
        evaluator: &CachedEvaluator,
        timer: &mut PhaseTimer,
    ) -> Result<()> {
        let cfg = &self.config;
        let n_agents = core.state.n_agents();
        let drain_budget = cfg.steps_per_epoch * n_agents;
        for (_, feat) in core
            .replay
            .drain_by_priority()
            .into_iter()
            .take(drain_budget)
        {
            if core.state.n_generated() >= core.max_generated {
                break;
            }
            let candidate = core
                .state
                .selected_frame(&core.frame)?
                .with_extra_columns(std::slice::from_ref(&feat.column))?;
            let score = {
                let _eval_span = telemetry::span("engine.evaluate");
                timer.evaluation(|| evaluator.evaluate(&candidate))?
            };
            core.counter.evaluate();
            if score > core.state.current_score {
                core.state.last_reward = score - core.state.current_score;
                core.state.current_score = score;
                core.best_score = core.best_score.max(score);
                core.weighted.push(WeightedFeature {
                    name: feat.column.name.clone(),
                    weight: core.state.last_reward,
                });
                let origin = feature_origin(&feat, &core.state);
                core.state.subgroups[origin].accept(feat);
            }
        }
        core.phase = if cfg.stage2_epochs > 0 {
            SearchPhase::Stage2 { epoch: 0 }
        } else {
            SearchPhase::Done
        };
        Ok(())
    }

    /// One stage-2 epoch (or the single stage for one-stage methods):
    /// every agent generates candidates, gated candidates hit the real
    /// downstream task, and policies update on score gains.
    #[allow(clippy::needless_range_loop)] // `policies[j]` mirrors the paper's per-agent notation
    fn step_stage2(
        &self,
        core: &mut SearchCore,
        evaluator: &CachedEvaluator,
        timer: &mut PhaseTimer,
        epoch: usize,
    ) -> Result<()> {
        let cfg = &self.config;
        let mut rng = core.rng.to_rng();
        let mut gate_rng = core.gate_rng.to_rng();
        let n_agents = core.state.n_agents();

        let mut epoch_span = telemetry::span("engine.stage2_epoch");
        epoch_span.field("epoch", epoch as f64);
        let epoch_frac = epoch as f64 / cfg.stage2_epochs.max(1) as f64;
        for j in 0..n_agents {
            core.policies[j].reset();
            let episode_start_score = core.state.current_score;
            let mut episode: Vec<StepCache> = Vec::with_capacity(cfg.steps_per_epoch);
            let mut score_trace = Vec::with_capacity(cfg.steps_per_epoch);
            for t in 0..cfg.steps_per_epoch {
                let feat = {
                    let x =
                        core.state
                            .embedding(j, t, cfg.steps_per_epoch, epoch_frac, cfg.max_order);
                    let cache = timer.generation(|| core.policies[j].step(&x, &mut rng))?;
                    let op = Operator::from_action(cache.action);
                    let feat =
                        timer.generation(|| generate_candidate(&core.state, j, op, &mut rng));
                    episode.push(cache);
                    feat
                };
                core.counter.generate();

                let structurally_ok = !feat.is_degenerate()
                    && feat.order <= cfg.max_order
                    && core.state.n_generated() < core.max_generated;
                let passes_gate = structurally_ok
                    && match &self.gate {
                        Gate::Fpe(fpe) => {
                            let p = timer.generation(|| fpe.score_feature(&feat.column.values))?;
                            let pass = core.fpe_gate.observe_and_pass(p);
                            telemetry::count(
                                if pass {
                                    "fpe.gate.accept"
                                } else {
                                    "fpe.gate.reject"
                                },
                                1,
                            );
                            pass
                        }
                        Gate::RandomDrop { rate } => !gate_rng.gen_bool(*rate),
                        Gate::None => true,
                    };

                if !passes_gate {
                    core.counter.drop_feature();
                    score_trace.push(core.state.current_score);
                    continue;
                }

                let candidate = core
                    .state
                    .selected_frame(&core.frame)?
                    .with_extra_columns(std::slice::from_ref(&feat.column))?;
                let score = {
                    let _eval_span = telemetry::span("engine.evaluate");
                    timer.evaluation(|| evaluator.evaluate(&candidate))?
                };
                core.counter.evaluate();
                core.state.last_reward = score - core.state.current_score;
                if score > core.state.current_score {
                    core.state.current_score = score;
                    core.best_score = core.best_score.max(score);
                    core.weighted.push(WeightedFeature {
                        name: feat.column.name.clone(),
                        weight: core.state.last_reward,
                    });
                    core.state.subgroups[j].accept(feat);
                }
                score_trace.push(score.max(core.state.current_score));
            }
            let rets = {
                let _reward_span = telemetry::span("engine.reward");
                if self.use_lambda_returns {
                    returns_from_scores(&score_trace, episode_start_score, &cfg.returns)
                } else {
                    let gains = score_gains(&score_trace, episode_start_score);
                    rewards_to_go(&gains, cfg.returns.gamma)
                }
            };
            let steps: Vec<(StepCache, f64)> = episode.into_iter().zip(rets).collect();
            let _update_span = telemetry::span("engine.policy_update");
            timer.generation(|| core.policies[j].update(&steps))?;
        }
        core.rng = RngState::capture(&rng);
        core.gate_rng = RngState::capture(&gate_rng);

        epoch_span.field("best_score", core.best_score);
        let improved = core
            .trace
            .last()
            .is_none_or(|last| core.best_score > last.score + f64::EPSILON);
        core.trace.push(EpochPoint {
            epoch: epoch + 1,
            score: core.best_score,
            downstream_evals: core.counter.evaluated,
            elapsed_secs: core.total_secs + timer.total_secs(),
        });
        if improved {
            core.epochs_since_improvement = 0;
        } else {
            core.epochs_since_improvement += 1;
        }
        let stopped_early = cfg
            .early_stop_patience
            .is_some_and(|patience| core.epochs_since_improvement >= patience);
        core.phase = if stopped_early || epoch + 1 >= cfg.stage2_epochs {
            SearchPhase::Done
        } else {
            SearchPhase::Stage2 { epoch: epoch + 1 }
        };
        Ok(())
    }

    /// Package the search's best-so-far result — callable at any epoch
    /// boundary (the anytime contract), not just after completion.
    /// Returns the instrumented [`RunResult`] plus the engineered frame
    /// (original features + every accepted generated feature).
    pub fn finish(&self, search: &SearchState) -> Result<(RunResult, DataFrame)> {
        let core = &search.core;
        let engineered = core.state.selected_frame(&core.frame)?;
        let result = RunResult {
            method: self.method_name.clone(),
            dataset: core.frame.name.clone(),
            base_score: core.base_score,
            best_score: core.best_score,
            trace: core.trace.clone(),
            generated_features: core.counter.generated,
            downstream_evals: core.counter.evaluated,
            selected: core.state.selected_names(),
            generation_secs: core.generation_secs,
            eval_secs: core.eval_secs,
            total_secs: core.total_secs,
            cache_hits: core.cache_hits,
            cache_misses: core.cache_misses,
        };
        Ok((result, engineered))
    }
}

// ---------------------------------------------------------------------------
// Speculation: predicting the next slice's compute-heavy work
// ---------------------------------------------------------------------------

impl Engine {
    /// The caching evaluator this engine's searches use — public so a
    /// distributed worker can score speculated candidate frames with the
    /// identical scorer configuration (and so ship back content-addressed
    /// cache entries the coordinator's own evaluator will hit).
    pub fn evaluator(&self) -> CachedEvaluator {
        self.make_evaluator()
    }

    /// FPE-score a candidate column through this engine's gate model, or
    /// `None` when the engine has no FPE gate. Scoring sketches the column
    /// through the process-wide signature cache, so calling this on
    /// speculated columns warms the cache a subsequent [`Engine::step`]
    /// (in this or another process, via snapshot/merge) will hit.
    pub fn fpe_score(&self, values: &[f64]) -> Result<Option<f64>> {
        match &self.gate {
            Gate::Fpe(fpe) => Ok(Some(fpe.score_feature(values)?)),
            _ => Ok(None),
        }
    }

    /// Predict the candidate columns the *next* slice will FPE-score,
    /// without advancing the search.
    ///
    /// Stage-1 prediction is **exact**: within an epoch, candidate
    /// generation consumes policy and RNG state only — FPE scores feed the
    /// replay buffer and the end-of-episode policy update, never the
    /// within-epoch draws — so replaying generation from cloned state
    /// yields precisely the columns `step` will score. Stage-2 prediction
    /// is **optimistic**: an accepted candidate mutates the subgroups and
    /// generation budget mid-epoch, diverging every later draw, so columns
    /// past the first acceptance may be wasted work. Mispredictions cost
    /// only compute: the signature cache is content-addressed and only
    /// short-circuits recomputation, never changes a score.
    #[allow(clippy::needless_range_loop)] // mirrors `step_stage1`'s notation
    pub fn speculate_fpe_columns(&self, search: &SearchState) -> Result<Vec<Column>> {
        let core = &search.core;
        let cfg = &self.config;
        if !matches!(self.gate, Gate::Fpe(_)) {
            return Ok(Vec::new());
        }
        let (epoch, total_epochs, stage1) = match core.phase {
            SearchPhase::Stage1 { epoch } => (epoch, cfg.stage1_epochs.max(1), true),
            SearchPhase::Stage2 { epoch } => (epoch, cfg.stage2_epochs.max(1), false),
            _ => return Ok(Vec::new()),
        };
        let mut rng = core.rng.to_rng();
        let mut policies = core.policies.clone();
        let epoch_frac = epoch as f64 / total_epochs as f64;
        let n_agents = core.state.n_agents();
        let budget_open = core.state.n_generated() < core.max_generated;
        let mut columns = Vec::new();
        for j in 0..n_agents {
            policies[j].reset();
            for t in 0..cfg.steps_per_epoch {
                let x = core
                    .state
                    .embedding(j, t, cfg.steps_per_epoch, epoch_frac, cfg.max_order);
                let cache = policies[j].step(&x, &mut rng)?;
                let op = Operator::from_action(cache.action);
                let feat = generate_candidate(&core.state, j, op, &mut rng);
                // Stage 1 scores every structurally sound candidate; stage 2
                // additionally requires the generation budget to be open
                // (mirrors `structurally_ok` in `step_stage2`).
                if !feat.is_degenerate() && feat.order <= cfg.max_order && (stage1 || budget_open) {
                    columns.push(feat.column);
                }
            }
            // No policy update: updates only influence later epochs, and we
            // predict exactly one slice ahead.
        }
        Ok(columns)
    }

    /// Predict the candidate frames the *next* slice will send to the
    /// downstream evaluator, without advancing the search. Returns the
    /// shared frame prefix (the current selected frame) plus one candidate
    /// column per predicted evaluation — evaluation `k`'s frame is
    /// `prefix.with_extra_columns(&[candidates[k]])`, the same
    /// construction `step` uses, so fingerprints line up entry for entry.
    ///
    /// The prediction assumes **no acceptance** during the slice: an
    /// acceptance re-bases every later candidate on a larger selected
    /// frame, so entries past the first acceptance miss and are computed
    /// locally. The prefix of predicted evaluations up to (and including)
    /// the first acceptance is exact.
    #[allow(clippy::needless_range_loop)] // mirrors `step_stage2`'s notation
    pub fn speculate_evals(&self, search: &SearchState) -> Result<(DataFrame, Vec<Column>)> {
        let core = &search.core;
        let cfg = &self.config;
        let prefix = core.state.selected_frame(&core.frame)?;
        let mut candidates = Vec::new();
        match core.phase {
            SearchPhase::Seed => {
                if core.state.n_generated() < core.max_generated {
                    let drain_budget = cfg.steps_per_epoch * core.state.n_agents();
                    let mut replay = core.replay.clone();
                    for (_, feat) in replay.drain_by_priority().into_iter().take(drain_budget) {
                        candidates.push(feat.column);
                    }
                }
            }
            SearchPhase::Stage2 { epoch } => {
                let mut rng = core.rng.to_rng();
                let mut gate_rng = core.gate_rng.to_rng();
                let mut policies = core.policies.clone();
                let mut fpe_gate = core.fpe_gate.clone();
                let epoch_frac = epoch as f64 / cfg.stage2_epochs.max(1) as f64;
                let n_agents = core.state.n_agents();
                let budget_open = core.state.n_generated() < core.max_generated;
                for j in 0..n_agents {
                    policies[j].reset();
                    for t in 0..cfg.steps_per_epoch {
                        let x = core.state.embedding(
                            j,
                            t,
                            cfg.steps_per_epoch,
                            epoch_frac,
                            cfg.max_order,
                        );
                        let cache = policies[j].step(&x, &mut rng)?;
                        let op = Operator::from_action(cache.action);
                        let feat = generate_candidate(&core.state, j, op, &mut rng);
                        let structurally_ok =
                            !feat.is_degenerate() && feat.order <= cfg.max_order && budget_open;
                        let passes_gate = structurally_ok
                            && match &self.gate {
                                Gate::Fpe(fpe) => {
                                    let p = fpe.score_feature(&feat.column.values)?;
                                    fpe_gate.observe_and_pass(p)
                                }
                                Gate::RandomDrop { rate } => !gate_rng.gen_bool(*rate),
                                Gate::None => true,
                            };
                        if passes_gate {
                            candidates.push(feat.column);
                        }
                    }
                }
            }
            SearchPhase::Stage1 { .. } | SearchPhase::Done => {}
        }
        Ok((prefix, candidates))
    }
}

/// Generate one candidate feature for agent `j`: sample two subgroup
/// members with replacement and apply the operator (paper Figure 3).
fn generate_candidate(
    state: &EngineState,
    agent: usize,
    op: Operator,
    rng: &mut impl Rng,
) -> GeneratedFeature {
    let sub = &state.subgroups[agent];
    let ia = sub.sample_member(rng);
    let ib = sub.sample_member(rng);
    let (a, ao) = sub.member(ia);
    let (b, bo) = sub.member(ib);
    GeneratedFeature::generate(op, a, ao, b, bo)
}

/// Which subgroup a replayed feature should join: the subgroup whose
/// original feature name appears first in the expression (falls back to 0).
fn feature_origin(feat: &GeneratedFeature, state: &EngineState) -> usize {
    let expr = &feat.column.name;
    state
        .subgroups
        .iter()
        .position(|s| expr.contains(s.original.name.as_str()))
        .unwrap_or(0)
}

/// `EafeConfig` helper shared by step tests and doctests: how many
/// slices a full run of this configuration takes (stage-1 epochs + the
/// seeding slice for two-stage engines, plus stage-2 epochs), an upper
/// bound when early stopping is enabled.
pub fn max_slices(cfg: &EafeConfig, two_stage: bool) -> usize {
    let stage1 = if two_stage { cfg.stage1_epochs + 1 } else { 0 };
    stage1 + cfg.stage2_epochs
}

#[cfg(test)]
mod tests {
    use super::*;
    use tabular::{SynthSpec, Task};

    fn fast_config() -> EafeConfig {
        EafeConfig::fast()
    }

    fn target_frame() -> DataFrame {
        SynthSpec::new("step-test", 150, 5, Task::Classification)
            .with_seed(5)
            .generate()
            .unwrap()
    }

    #[test]
    fn adaptive_gate_pins_pass_rate_at_or_below_half() {
        let mut gate = AdaptiveGate::new(64);
        // Scores clustered high: a fixed 0.5 cut would pass everything.
        let mut passed = 0;
        let n = 500;
        for i in 0..n {
            let p = 0.7 + 0.2 * ((i as f64 * 0.713).sin());
            if gate.observe_and_pass(p) {
                passed += 1;
            }
        }
        let rate = passed as f64 / n as f64;
        assert!(rate <= 0.6, "pass rate {rate}");
        assert!(rate >= 0.2, "gate should not drop everything: {rate}");
    }

    #[test]
    fn adaptive_gate_respects_absolute_floor() {
        let mut gate = AdaptiveGate::new(64);
        // All scores below 0.5 → nothing passes even though all equal the
        // running median.
        for _ in 0..100 {
            assert!(!gate.observe_and_pass(0.3));
        }
    }

    #[test]
    fn rng_state_round_trips_the_stream() {
        let mut rng = RngState::seed(7).to_rng();
        for _ in 0..13 {
            rng.gen::<u64>();
        }
        let snap = RngState::capture(&rng);
        let mut resumed = snap.to_rng();
        for _ in 0..50 {
            assert_eq!(rng.gen::<u64>(), resumed.gen::<u64>());
        }
    }

    #[test]
    fn stepped_run_matches_blocking_run() {
        let frame = target_frame();
        let engine = Engine::nfs(fast_config());
        let blocking = engine.run(&frame).unwrap();

        let mut state = engine.start(&frame).unwrap();
        let mut reports = Vec::new();
        while !state.is_done() {
            reports.push(engine.step(&mut state).unwrap());
        }
        let (stepped, _) = engine.finish(&state).unwrap();

        assert_eq!(blocking.best_score.to_bits(), stepped.best_score.to_bits());
        assert_eq!(blocking.downstream_evals, stepped.downstream_evals);
        assert_eq!(blocking.generated_features, stepped.generated_features);
        assert_eq!(blocking.selected, stepped.selected);
        assert_eq!(blocking.trace.len(), stepped.trace.len());
        for (a, b) in blocking.trace.iter().zip(&stepped.trace) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        assert_eq!(reports.len(), fast_config().stage2_epochs);
        assert!(reports.last().unwrap().done);
    }

    #[test]
    fn reports_are_monotone_and_carry_weighted_features() {
        let frame = target_frame();
        let engine = Engine::nfs(fast_config());
        let mut state = engine.start(&frame).unwrap();
        let mut last_best = state.base_score();
        let mut last_evals = 0usize;
        while !state.is_done() {
            let r = engine.step(&mut state).unwrap();
            assert!(r.best_score >= last_best, "anytime best must be monotone");
            assert!(r.downstream_evals >= last_evals);
            last_best = r.best_score;
            last_evals = r.downstream_evals;
            // Weighted set names mirror the accepted features; weights are
            // the positive downstream gains that earned acceptance.
            for w in &r.best_features {
                assert!(w.weight > 0.0, "{}: weight {}", w.name, w.weight);
            }
        }
        let (result, _) = engine.finish(&state).unwrap();
        let names: Vec<String> = state
            .best_features()
            .iter()
            .map(|w| w.name.clone())
            .collect();
        let mut sorted_names = names.clone();
        sorted_names.sort();
        let mut sorted_selected = result.selected.clone();
        sorted_selected.sort();
        assert_eq!(sorted_names, sorted_selected);
        let gain_sum: f64 = state.best_features().iter().map(|w| w.weight).sum();
        assert!(
            (gain_sum - (result.best_score - result.base_score)).abs() < 1e-9,
            "gains {gain_sum} vs improvement {}",
            result.improvement()
        );
    }

    #[test]
    fn step_after_done_is_a_noop() {
        let frame = target_frame();
        let engine = Engine::nfs(fast_config());
        let mut state = engine.start(&frame).unwrap();
        while !state.is_done() {
            engine.step(&mut state).unwrap();
        }
        let evals = state.downstream_evals();
        let r = engine.step(&mut state).unwrap();
        assert!(r.done);
        assert_eq!(state.downstream_evals(), evals);
    }

    #[test]
    fn finish_midway_returns_anytime_result() {
        let frame = target_frame();
        let engine = Engine::nfs(fast_config());
        let mut state = engine.start(&frame).unwrap();
        engine.step(&mut state).unwrap();
        let (result, engineered) = engine.finish(&state).unwrap();
        assert!(result.best_score >= result.base_score);
        assert_eq!(
            engineered.n_cols(),
            frame.n_cols() + result.selected.len(),
            "engineered frame carries the accepted features so far"
        );
        assert!(!state.is_done());
    }

    #[test]
    fn search_state_serde_round_trip_preserves_everything() {
        let frame = target_frame();
        let engine = Engine::nfs(fast_config());
        let mut state = engine.start(&frame).unwrap();
        engine.step(&mut state).unwrap();
        let json = serde_json::to_string(&state).unwrap();
        let restored: SearchState = serde_json::from_str(&json).unwrap();
        assert_eq!(state.core, restored.core);
        assert!(restored.evaluator.is_none(), "evaluator is process-local");
    }

    #[test]
    fn speculative_warming_preserves_results_bitwise() {
        let frame = target_frame();
        let cfg = fast_config();
        let solo = Engine::nfs(cfg.clone()).run(&frame).unwrap();

        // Warmed run: before every slice, evaluate all speculated frames
        // into the shared cache — exactly what a distributed coordinator
        // does with worker results — then step and compare bitwise.
        let cache = std::sync::Arc::new(runtime::ScoreCache::new(4096));
        let engine = Engine::nfs(cfg).with_cache(std::sync::Arc::clone(&cache));
        let evaluator = engine.evaluator();
        let mut state = engine.start(&frame).unwrap();
        let mut warm_hits = 0u64;
        while !state.is_done() {
            let (prefix, candidates) = engine.speculate_evals(&state).unwrap();
            for candidate in &candidates {
                let speculative = prefix
                    .with_extra_columns(std::slice::from_ref(candidate))
                    .unwrap();
                evaluator.evaluate(&speculative).unwrap();
            }
            let before = evaluator.stats();
            engine.step(&mut state).unwrap();
            warm_hits += evaluator.stats().since(&before).hits;
        }
        let (warmed, _) = engine.finish(&state).unwrap();
        assert_eq!(solo.best_score.to_bits(), warmed.best_score.to_bits());
        assert_eq!(solo.downstream_evals, warmed.downstream_evals);
        assert_eq!(solo.generated_features, warmed.generated_features);
        assert_eq!(solo.selected, warmed.selected);
        for (a, b) in solo.trace.iter().zip(&warmed.trace) {
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
        assert!(warm_hits > 0, "speculated evaluations must serve step hits");
    }

    #[test]
    fn speculative_warming_holds_with_a_random_drop_gate() {
        // E-AFE_D draws gate decisions from the dedicated gate stream;
        // speculation must replay that stream without perturbing it.
        let frame = target_frame();
        let cfg = fast_config();
        let solo = Engine::e_afe_d(cfg.clone(), 0.4).run(&frame).unwrap();

        let cache = std::sync::Arc::new(runtime::ScoreCache::new(4096));
        let engine = Engine::e_afe_d(cfg, 0.4).with_cache(std::sync::Arc::clone(&cache));
        let evaluator = engine.evaluator();
        let mut state = engine.start(&frame).unwrap();
        while !state.is_done() {
            let (prefix, candidates) = engine.speculate_evals(&state).unwrap();
            for candidate in &candidates {
                let speculative = prefix
                    .with_extra_columns(std::slice::from_ref(candidate))
                    .unwrap();
                evaluator.evaluate(&speculative).unwrap();
            }
            engine.step(&mut state).unwrap();
        }
        let (warmed, _) = engine.finish(&state).unwrap();
        assert_eq!(solo.best_score.to_bits(), warmed.best_score.to_bits());
        assert_eq!(solo.downstream_evals, warmed.downstream_evals);
        assert_eq!(solo.selected, warmed.selected);
    }

    #[test]
    fn speculation_does_not_mutate_the_search() {
        let frame = target_frame();
        let engine = Engine::nfs(fast_config());
        let mut state = engine.start(&frame).unwrap();
        engine.step(&mut state).unwrap();
        let before = state.core.clone();
        engine.speculate_evals(&state).unwrap();
        engine.speculate_fpe_columns(&state).unwrap();
        assert_eq!(state.core, before);
    }

    #[test]
    fn speculated_evals_prefix_matches_the_real_slice_until_acceptance() {
        // With no gate, the first speculated candidate frame is exactly the
        // first frame the slice evaluates: its cache entry must be hit.
        let frame = target_frame();
        let engine = Engine::nfs(fast_config());
        let mut state = engine.start(&frame).unwrap();
        let evaluator = state.evaluator.clone().unwrap();
        while !state.is_done() {
            let (prefix, candidates) = engine.speculate_evals(&state).unwrap();
            if let Some(first) = candidates.first() {
                let speculative = prefix
                    .with_extra_columns(std::slice::from_ref(first))
                    .unwrap();
                let key = evaluator.cache_key(&speculative);
                evaluator.evaluate(&speculative).unwrap();
                assert!(evaluator.cache().contains(key));
                let shard_hits_before = evaluator.stats();
                engine.step(&mut state).unwrap();
                assert!(
                    evaluator.stats().since(&shard_hits_before).hits >= 1,
                    "first speculated frame must be served from cache"
                );
            } else {
                engine.step(&mut state).unwrap();
            }
        }
    }

    #[test]
    fn max_slices_bounds_the_stepped_run() {
        let cfg = fast_config();
        let frame = target_frame();
        let engine = Engine::nfs(cfg.clone());
        let mut state = engine.start(&frame).unwrap();
        let mut n = 0;
        while !state.is_done() {
            engine.step(&mut state).unwrap();
            n += 1;
            assert!(n <= max_slices(&cfg, false), "runaway stepped search");
        }
        assert_eq!(n, max_slices(&cfg, false));
    }
}
