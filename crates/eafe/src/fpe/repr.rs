//! Fixed-size feature representations for the FPE classifier.
//!
//! The paper's §V-B surveys four classes of "approximate feature" methods —
//! meta-features, low-rank approximation, quantile data sketches (used by
//! LFE), and hashing — and picks weighted MinHash (Q6). This module
//! implements the two practical alternatives alongside MinHash so the
//! choice can be ablated empirically (`bench --bin ablation_representation`):
//!
//! - [`FeatureRepr::MinHash`] — the paper's sample compressor;
//! - [`FeatureRepr::QuantileSketch`] — `d` evenly spaced quantiles of the
//!   column (LFE's representation);
//! - [`FeatureRepr::MetaFeatures`] — a fixed vector of distributional
//!   meta-features (moments, spread, discreteness, sign structure).

use crate::error::Result;
use minhash::SampleCompressor;
use serde::{Deserialize, Serialize};

/// Number of meta-features produced by [`FeatureRepr::MetaFeatures`].
pub const META_FEATURE_DIM: usize = 12;

/// A fixed-size representation of a feature column of arbitrary length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FeatureRepr {
    /// Weighted-MinHash sample compression (the paper's choice).
    MinHash(SampleCompressor),
    /// `d` evenly spaced quantiles, z-scored (LFE's quantile data sketch).
    QuantileSketch {
        /// Sketch size.
        d: usize,
    },
    /// Distributional meta-features (see [`META_FEATURE_DIM`]).
    MetaFeatures,
}

impl FeatureRepr {
    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            FeatureRepr::MinHash(c) => c.d(),
            FeatureRepr::QuantileSketch { d } => *d,
            FeatureRepr::MetaFeatures => META_FEATURE_DIM,
        }
    }

    /// Short display name for reports.
    pub fn name(&self) -> String {
        match self {
            FeatureRepr::MinHash(c) => format!("MinHash/{}", c.family().name()),
            FeatureRepr::QuantileSketch { d } => format!("QuantileSketch({d})"),
            FeatureRepr::MetaFeatures => "MetaFeatures".into(),
        }
    }

    /// Represent a feature column as a fixed-size vector. Non-finite inputs
    /// are tolerated (treated as missing). The MinHash arm goes through the
    /// runtime's content-addressed signature cache, so re-representing a
    /// column already sketched under this `(family, d, seed)` is a gather.
    pub fn represent(&self, values: &[f64]) -> Result<Vec<f64>> {
        match self {
            FeatureRepr::MinHash(c) => Ok(runtime::compress_normalized_cached(c, values)?),
            FeatureRepr::QuantileSketch { d } => Ok(quantile_sketch(values, *d)),
            FeatureRepr::MetaFeatures => Ok(meta_features(values)),
        }
    }

    /// Represent many columns at once, bit-identical per column to
    /// [`represent`](Self::represent). MinHash columns share one cache
    /// probe + batch table pass; quantile sketches share one scratch
    /// buffer across columns.
    pub fn represent_batch(&self, cols: &[&[f64]]) -> Result<Vec<Vec<f64>>> {
        match self {
            FeatureRepr::MinHash(c) => Ok(runtime::compress_normalized_batch(c, cols)?),
            FeatureRepr::QuantileSketch { d } => {
                let mut scratch = Vec::new();
                Ok(cols
                    .iter()
                    .map(|v| quantile_sketch_into(v, *d, &mut scratch))
                    .collect())
            }
            FeatureRepr::MetaFeatures => Ok(cols.iter().map(|v| meta_features(v)).collect()),
        }
    }
}

/// `d` evenly spaced quantiles of the finite values, z-scored so columns
/// with different raw scales are comparable. All-constant or empty inputs
/// yield zeros.
pub fn quantile_sketch(values: &[f64], d: usize) -> Vec<f64> {
    quantile_sketch_into(values, d, &mut Vec::new())
}

/// [`quantile_sketch`] with a caller-provided scratch buffer, so batch
/// callers sort into one allocation instead of cloning per column. The
/// sort is an unstable total-order sort (`f64::total_cmp`), which both
/// skips the stable sort's temp allocation and removes the
/// `partial_cmp(..).expect(..)` panic path — NaNs are filtered before the
/// sort, but a total order keeps the function panic-free by construction.
pub fn quantile_sketch_into(values: &[f64], d: usize, scratch: &mut Vec<f64>) -> Vec<f64> {
    let d = d.max(1);
    scratch.clear();
    scratch.extend(values.iter().copied().filter(|v| v.is_finite()));
    let finite = &mut *scratch;
    if finite.is_empty() {
        return vec![0.0; d];
    }
    finite.sort_unstable_by(f64::total_cmp);
    let mut sketch: Vec<f64> = (0..d)
        .map(|i| {
            let q = if d == 1 {
                0.5
            } else {
                i as f64 / (d - 1) as f64
            };
            let idx = (q * (finite.len() - 1) as f64).round() as usize;
            finite[idx]
        })
        .collect();
    // z-score the sketch itself.
    let n = sketch.len() as f64;
    let mean = sketch.iter().sum::<f64>() / n;
    let var = sketch.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let std = var.sqrt();
    if std > 1e-12 {
        for v in &mut sketch {
            *v = (*v - mean) / std;
        }
    } else {
        sketch.iter_mut().for_each(|v| *v = 0.0);
    }
    sketch
}

/// Distributional meta-features of a column: centred moments, spread,
/// discreteness, and sign structure — the hand-crafted representation the
/// ExploreKit / meta-learning line of work uses.
pub fn meta_features(values: &[f64]) -> Vec<f64> {
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    let n = finite.len();
    if n == 0 {
        return vec![0.0; META_FEATURE_DIM];
    }
    let nf = n as f64;
    let mean = finite.iter().sum::<f64>() / nf;
    let var = finite.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / nf;
    let std = var.sqrt();
    let centred = |p: i32| -> f64 {
        if std <= 1e-12 {
            return 0.0;
        }
        finite
            .iter()
            .map(|v| ((v - mean) / std).powi(p))
            .sum::<f64>()
            / nf
    };
    let mut sorted = finite.clone();
    sorted.sort_unstable_by(f64::total_cmp);
    let quant = |q: f64| sorted[((q * (n - 1) as f64).round() as usize).min(n - 1)];
    let (min, max) = (sorted[0], sorted[n - 1]);
    let iqr = quant(0.75) - quant(0.25);
    let range = (max - min).max(1e-12);
    let mut uniq = sorted.clone();
    uniq.dedup();
    let zeros = finite.iter().filter(|&&v| v == 0.0).count() as f64 / nf;
    let negatives = finite.iter().filter(|&&v| v < 0.0).count() as f64 / nf;
    let integral = finite.iter().filter(|v| v.fract() == 0.0).count() as f64 / nf;

    vec![
        // location/scale, squashed to keep the classifier's input bounded
        (mean / (std + 1.0)).tanh(),
        (std / (mean.abs() + 1.0)).tanh(), // coefficient of variation
        centred(3).clamp(-10.0, 10.0) / 10.0, // skewness
        (centred(4) - 3.0).clamp(-10.0, 10.0) / 10.0, // excess kurtosis
        iqr / range,
        (quant(0.5) - min) / range, // median position in the range
        uniq.len() as f64 / nf,     // discreteness
        zeros,
        negatives,
        integral,
        (nf.ln() / 12.0).min(1.0), // log sample size
        (values.len() - n) as f64 / values.len().max(1) as f64, // missing rate
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use minhash::HashFamily;

    #[test]
    fn all_reprs_have_fixed_dim() {
        let values: Vec<f64> = (0..137).map(|i| (i as f64 * 0.3).sin() * 5.0).collect();
        let reprs = vec![
            FeatureRepr::MinHash(SampleCompressor::new(HashFamily::Ccws, 32, 1).unwrap()),
            FeatureRepr::QuantileSketch { d: 32 },
            FeatureRepr::MetaFeatures,
        ];
        for r in &reprs {
            let out = r.represent(&values).unwrap();
            assert_eq!(out.len(), r.dim(), "{}", r.name());
            assert!(out.iter().all(|v| v.is_finite()), "{}", r.name());
            // Length-independence: a longer column yields the same dim.
            let longer: Vec<f64> = (0..999).map(|i| (i as f64 * 0.1).cos()).collect();
            assert_eq!(r.represent(&longer).unwrap().len(), r.dim());
        }
    }

    #[test]
    fn quantile_sketch_is_sorted_prior_to_zscore() {
        let values = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        let raw_quantiles: Vec<f64> = {
            // undo z-scoring by checking monotonicity instead
            quantile_sketch(&values, 5)
        };
        assert!(raw_quantiles.windows(2).all(|w| w[0] <= w[1] + 1e-12));
        assert_eq!(raw_quantiles.len(), 5);
    }

    #[test]
    fn quantile_sketch_handles_degenerate_inputs() {
        assert_eq!(quantile_sketch(&[], 4), vec![0.0; 4]);
        assert_eq!(quantile_sketch(&[7.0; 10], 4), vec![0.0; 4]);
        assert_eq!(quantile_sketch(&[f64::NAN, 1.0], 3).len(), 3);
        assert_eq!(quantile_sketch(&[1.0], 1).len(), 1);
    }

    #[test]
    fn quantile_sketch_ignores_nan_and_infinities() {
        // NaN/±∞ are dropped before the sort — the sketch of a polluted
        // column equals the sketch of its finite values, with no panic.
        let clean = vec![3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0];
        let mut dirty = clean.clone();
        dirty.insert(2, f64::NAN);
        dirty.insert(5, f64::INFINITY);
        dirty.push(f64::NEG_INFINITY);
        dirty.push(f64::NAN);
        assert_eq!(quantile_sketch(&dirty, 8), quantile_sketch(&clean, 8));
        assert_eq!(quantile_sketch(&[f64::NAN; 6], 4), vec![0.0; 4]);
    }

    #[test]
    fn quantile_sketch_into_reuses_scratch_across_columns() {
        let a = vec![5.0, 1.0, 3.0, f64::NAN, 2.0];
        let b = vec![9.0, 8.0];
        let mut scratch = Vec::new();
        let sa = quantile_sketch_into(&a, 4, &mut scratch);
        let sb = quantile_sketch_into(&b, 4, &mut scratch);
        assert_eq!(sa, quantile_sketch(&a, 4));
        assert_eq!(sb, quantile_sketch(&b, 4));
    }

    #[test]
    fn represent_batch_matches_per_column_represent() {
        let cols: Vec<Vec<f64>> = (0..6)
            .map(|s| {
                (0..90)
                    .map(|i| ((i + s * 17) as f64 * 0.21).sin() * 4.0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = cols.iter().map(Vec::as_slice).collect();
        let reprs = vec![
            FeatureRepr::MinHash(SampleCompressor::new(HashFamily::Ccws, 16, 77).unwrap()),
            FeatureRepr::QuantileSketch { d: 16 },
            FeatureRepr::MetaFeatures,
        ];
        for r in &reprs {
            let batch = r.represent_batch(&refs).unwrap();
            assert_eq!(batch.len(), cols.len(), "{}", r.name());
            for (col, out) in cols.iter().zip(&batch) {
                assert_eq!(out, &r.represent(col).unwrap(), "{}", r.name());
            }
        }
    }

    #[test]
    fn meta_features_detect_structure() {
        // Integer-coded column: high integral fraction, low uniqueness.
        let ints: Vec<f64> = (0..100).map(|i| (i % 4) as f64).collect();
        let m = meta_features(&ints);
        assert_eq!(m.len(), META_FEATURE_DIM);
        assert!(m[9] > 0.99, "integral fraction {}", m[9]); // all integers
        assert!(m[6] < 0.1, "uniqueness {}", m[6]); // only 4 distinct

        // Continuous symmetric column: near-zero skew.
        let cont: Vec<f64> = (0..500).map(|i| ((i as f64) * 0.123).sin()).collect();
        let mc = meta_features(&cont);
        assert!(mc[2].abs() < 0.2, "skewness {}", mc[2]);
        assert!(mc[6] > 0.5, "uniqueness {}", mc[6]);
    }

    #[test]
    fn meta_features_missing_rate() {
        let vals = vec![1.0, f64::NAN, 2.0, f64::NAN];
        let m = meta_features(&vals);
        assert!((m[11] - 0.5).abs() < 1e-12);
        // All-NaN yields zeros, not panics.
        assert_eq!(meta_features(&[f64::NAN; 5]), vec![0.0; META_FEATURE_DIM]);
    }

    #[test]
    fn meta_features_are_bounded() {
        // Extreme magnitudes must not blow up the representation.
        let extreme: Vec<f64> = (0..50).map(|i| (i as f64) * 1e12 - 2.5e13).collect();
        let m = meta_features(&extreme);
        assert!(m.iter().all(|v| v.abs() <= 2.0), "{m:?}");
    }

    #[test]
    fn names_are_descriptive() {
        assert!(FeatureRepr::MetaFeatures.name().contains("Meta"));
        assert!(FeatureRepr::QuantileSketch { d: 8 }.name().contains('8'));
        let mh = FeatureRepr::MinHash(SampleCompressor::new(HashFamily::Icws, 8, 0).unwrap());
        assert!(mh.name().contains("ICWS"));
    }
}
