//! Feature-Validness labelling (paper Eq. 3, Algorithm 1 lines 3–16).
//!
//! For every public dataset `Dⁱ` the downstream task first scores the full
//! feature set (`A₀ⁱ`), then each residual dataset `D_jⁱ = Dⁱ − F_jⁱ`
//! obtained by leaving feature `j` out (`A_jⁱ`). Feature `j` is labelled
//! **effective** (1) when removing it costs more than `thre`:
//! `A₀ⁱ − A_jⁱ > thre` (Algorithm 1 line 9; Eq. 3's `sgn(A₀ − A_j + thre)`
//! has the threshold's sign flipped relative to the algorithm — we follow
//! the algorithm, which matches the text "thre is the threshold of score
//! gain ... larger than 0, so that better features can be found").
//!
//! Each labelled feature is represented by its MinHash-compressed,
//! z-scored sample vector so one classifier serves all datasets.

use crate::config::CachedEvaluator;
use crate::error::Result;
use minhash::SampleCompressor;
use runtime::WorkerPool;
use serde::{Deserialize, Serialize};
use tabular::DataFrame;

/// One labelled training example for the FPE binary classifier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LabeledFeature {
    /// Fixed-size compressed representation (`d` values).
    pub compressed: Vec<f64>,
    /// 1 = effective, 0 = ineffective.
    pub label: usize,
    /// The raw score gain `A₀ − A_j` that produced the label (kept for the
    /// paper's Figure 6 threshold study).
    pub score_gain: f64,
}

/// Label every feature of one dataset by leave-one-feature-out evaluation.
///
/// Datasets with a single feature yield no labels (the residual set would
/// be empty).
pub fn label_dataset(
    frame: &DataFrame,
    evaluator: &CachedEvaluator,
    thre: f64,
    compressor: &SampleCompressor,
) -> Result<Vec<LabeledFeature>> {
    if frame.n_cols() < 2 {
        return Ok(Vec::new());
    }
    let mut span = telemetry::span("fpe.label_dataset");
    span.field("features", frame.n_cols() as f64);
    let a0 = evaluator.evaluate(frame)?;
    // Compress every column up front in one batch+cache pass (one table
    // walk for all columns; repeats across corpus sweeps are cache hits).
    let cols: Vec<&[f64]> = (0..frame.n_cols())
        .map(|j| Ok(frame.column(j)?.values.as_slice()))
        .collect::<Result<_>>()?;
    let compressed = runtime::compress_normalized_batch(compressor, &cols)?;
    // The residual evaluations are independent: fan them out on the
    // runtime pool (each one is a full CV run, the dominant cost here).
    let labels: Result<Vec<LabeledFeature>> = WorkerPool::new()
        .map(
            compressed.into_iter().enumerate().collect(),
            |_ctx, (j, compressed)| {
                let residual = frame.drop_column(j)?;
                let aj = evaluator.evaluate(&residual)?;
                let gain = a0 - aj;
                Ok(LabeledFeature {
                    compressed,
                    label: usize::from(gain > thre),
                    score_gain: gain,
                })
            },
        )
        .into_iter()
        .collect();
    if let Ok(labels) = &labels {
        telemetry::count("fpe.labels", labels.len() as u64);
    }
    labels
}

/// Label a corpus of public datasets (Algorithm 1's outer loop).
pub fn label_corpus(
    corpus: &[DataFrame],
    evaluator: &CachedEvaluator,
    thre: f64,
    compressor: &SampleCompressor,
) -> Result<Vec<LabeledFeature>> {
    let mut all = Vec::new();
    for frame in corpus {
        all.extend(label_dataset(frame, evaluator, thre, compressor)?);
    }
    Ok(all)
}

/// Score gains only (no compression) — used by the Figure 6 `thre` study,
/// which examines how the threshold splits the gain distribution.
pub fn score_gains_for_dataset(frame: &DataFrame, evaluator: &CachedEvaluator) -> Result<Vec<f64>> {
    if frame.n_cols() < 2 {
        return Ok(Vec::new());
    }
    let _span = telemetry::span("fpe.score_gains");
    let a0 = evaluator.evaluate(frame)?;
    WorkerPool::new()
        .map((0..frame.n_cols()).collect(), |_ctx, j| {
            Ok(a0 - evaluator.evaluate(&frame.drop_column(j)?)?)
        })
        .into_iter()
        .collect()
}

/// Relabel cached gains at a different threshold — lets the Figure 6 and
/// Figure 8 sweeps reuse the expensive leave-one-out evaluations.
pub fn relabel(gains: &[f64], thre: f64) -> Vec<usize> {
    gains.iter().map(|&g| usize::from(g > thre)).collect()
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit per-field tweaks read clearer in tests
mod tests {
    use super::*;
    use learners::Evaluator;
    use minhash::HashFamily;
    use tabular::{SynthSpec, Task};

    fn small_evaluator() -> CachedEvaluator {
        let mut e = Evaluator::default();
        e.folds = 3;
        e.forest.n_trees = 8;
        e.forest.tree.max_depth = 6;
        runtime::Evaluator::new(e)
    }

    fn compressor() -> SampleCompressor {
        SampleCompressor::new(HashFamily::Ccws, 16, 1).unwrap()
    }

    #[test]
    fn labels_have_compressed_representation() {
        let frame = SynthSpec::new("lab", 120, 6, Task::Classification)
            .with_seed(3)
            .generate()
            .unwrap();
        let labels = label_dataset(&frame, &small_evaluator(), 0.01, &compressor()).unwrap();
        assert_eq!(labels.len(), 6);
        for l in &labels {
            assert_eq!(l.compressed.len(), 16);
            assert!(l.label <= 1);
            assert!(l.score_gain.is_finite());
        }
    }

    #[test]
    fn single_feature_dataset_yields_no_labels() {
        let frame = SynthSpec::new("one", 60, 1, Task::Regression)
            .generate()
            .unwrap();
        let labels = label_dataset(&frame, &small_evaluator(), 0.01, &compressor()).unwrap();
        assert!(labels.is_empty());
    }

    #[test]
    fn corpus_concatenates_datasets() {
        let corpus = vec![
            SynthSpec::new("c1", 80, 4, Task::Classification)
                .generate()
                .unwrap(),
            SynthSpec::new("c2", 80, 3, Task::Regression)
                .generate()
                .unwrap(),
        ];
        let labels = label_corpus(&corpus, &small_evaluator(), 0.01, &compressor()).unwrap();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn higher_threshold_never_increases_positives() {
        let gains = vec![-0.05, 0.005, 0.02, 0.08, 0.0];
        let lo: usize = relabel(&gains, 0.0).iter().sum();
        let hi: usize = relabel(&gains, 0.05).iter().sum();
        assert!(hi <= lo);
        assert_eq!(relabel(&gains, 0.0), vec![0, 1, 1, 1, 0]);
        assert_eq!(relabel(&gains, 0.05), vec![0, 0, 0, 1, 0]);
    }

    #[test]
    fn gains_match_labels() {
        let frame = SynthSpec::new("gain", 100, 5, Task::Classification)
            .with_seed(9)
            .generate()
            .unwrap();
        let ev = small_evaluator();
        let gains = score_gains_for_dataset(&frame, &ev).unwrap();
        let labels = label_dataset(&frame, &ev, 0.01, &compressor()).unwrap();
        for (g, l) in gains.iter().zip(&labels) {
            assert!((g - l.score_gain).abs() < 1e-12);
            assert_eq!(usize::from(*g > 0.01), l.label);
        }
    }
}
