//! The Feature Pre-Evaluation (FPE) model (paper §III-B, Algorithm 1):
//! sample compression with weighted MinHash + a pre-trained binary
//! feature-effectiveness classifier, plus the hyper-parameter search over
//! hash families and signature dimensions.

pub mod labeling;
pub mod model;
pub mod repr;
pub mod search;

pub use labeling::{label_corpus, label_dataset, relabel, score_gains_for_dataset, LabeledFeature};
pub use model::{FpeMetrics, FpeModel};
pub use repr::{meta_features, quantile_sketch, FeatureRepr, META_FEATURE_DIM};
pub use search::{search, CandidateOutcome, FpeSearchResult, FpeSearchSpace, RawLabels};
