//! The Feature Pre-Evaluation (FPE) model: a sample compressor paired with
//! a binary feature-effectiveness classifier (paper §III-B, Eq. 4–6).
//!
//! Once pre-trained on public datasets, the model answers "is this
//! generated feature worth evaluating on the real downstream task?" with a
//! single compressed-vector classification — orders of magnitude cheaper
//! than a cross-validated Random Forest run, which is the entire source of
//! E-AFE's efficiency gain.

use crate::error::{EafeError, Result};
use crate::fpe::labeling::LabeledFeature;
use crate::fpe::repr::FeatureRepr;
use learners::metrics::binary_precision_recall;
use learners::{LinearConfig, LogisticRegression};
use minhash::{HashFamily, SampleCompressor};
use serde::{Deserialize, Serialize};

/// Recall/precision of the trained classifier on a validation corpus
/// (the paper's Eq. 5 quantities).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FpeMetrics {
    /// Recall of effective features — the paper's optimisation target.
    pub recall: f64,
    /// Precision on effective features — constrained to be > 0.
    pub precision: f64,
    /// Fraction of validation features classified positive (the expected
    /// pass rate of the stage-2 gate; the paper's "drop rate" is 1 − this).
    pub positive_rate: f64,
}

/// A trained FPE model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpeModel {
    repr: FeatureRepr,
    classifier: LogisticRegression,
    /// Validation metrics recorded at training time.
    pub metrics: FpeMetrics,
    /// Label threshold the training labels were produced with.
    pub thre: f64,
}

impl FpeModel {
    /// Train on labelled features whose `compressed` vectors were produced
    /// by `compressor` (dimension must match). Validation examples are used
    /// only for the recorded metrics.
    pub fn train(
        compressor: SampleCompressor,
        train: &[LabeledFeature],
        validation: &[LabeledFeature],
        thre: f64,
        seed: u64,
    ) -> Result<FpeModel> {
        Self::train_with_repr(
            FeatureRepr::MinHash(compressor),
            train,
            validation,
            thre,
            seed,
        )
    }

    /// Train with an arbitrary fixed-size representation — used by the
    /// representation ablation (MinHash vs quantile sketch vs
    /// meta-features; paper §V-B / Q6).
    pub fn train_with_repr(
        repr: FeatureRepr,
        train: &[LabeledFeature],
        validation: &[LabeledFeature],
        thre: f64,
        seed: u64,
    ) -> Result<FpeModel> {
        if train.is_empty() {
            return Err(EafeError::InvalidConfig(
                "FPE training corpus is empty".into(),
            ));
        }
        let d = repr.dim();
        for lf in train.iter().chain(validation) {
            if lf.compressed.len() != d {
                return Err(EafeError::InvalidConfig(format!(
                    "labelled feature has dimension {} but representation d = {d}",
                    lf.compressed.len()
                )));
            }
        }
        // Column-major design matrix: d feature columns, one row per example.
        let x = to_columns(train, d);
        let y: Vec<usize> = train.iter().map(|lf| lf.label).collect();
        let has_both = y.contains(&1) && y.contains(&0);
        if !has_both {
            return Err(EafeError::InvalidConfig(
                "FPE training corpus needs both positive and negative features; \
                 adjust thre or enlarge the corpus"
                    .into(),
            ));
        }
        let mut classifier = LogisticRegression::new(LinearConfig {
            epochs: 80,
            seed,
            ..LinearConfig::default()
        });
        classifier.fit(&x, &y, 2)?;

        let metrics = if validation.is_empty() {
            evaluate_classifier(&classifier, train, d)?
        } else {
            evaluate_classifier(&classifier, validation, d)?
        };
        Ok(FpeModel {
            repr,
            classifier,
            metrics,
            thre,
        })
    }

    /// The representation in use.
    pub fn repr(&self) -> &FeatureRepr {
        &self.repr
    }

    /// The MinHash sample compressor, when the representation is MinHash.
    pub fn compressor(&self) -> Option<&SampleCompressor> {
        match &self.repr {
            FeatureRepr::MinHash(c) => Some(c),
            _ => None,
        }
    }

    /// Representation dimension `d`.
    pub fn d(&self) -> usize {
        self.repr.dim()
    }

    /// Hash family in use, when the representation is MinHash.
    pub fn family(&self) -> Option<HashFamily> {
        self.compressor().map(|c| c.family())
    }

    /// Probability that a raw feature column is *effective* — the paper's
    /// Eq. (7) `p = C_D(MinHash(f̃, d))`, with `p` oriented so that higher
    /// means better (see [`crate::reward`] for the Eq. 8 mapping).
    pub fn score_feature(&self, values: &[f64]) -> Result<f64> {
        self.score_compressed(self.repr.represent(values)?)
    }

    /// Classify an externally assembled compressed representation.
    /// The chunk-at-a-time scoring path (`crate::chunked`) builds the
    /// vector by streaming a column's chunks through the compressor and
    /// hands the result here, so a candidate is scored without ever being
    /// materialized as a flat column.
    pub fn score_compressed(&self, compressed: Vec<f64>) -> Result<f64> {
        let x: Vec<Vec<f64>> = compressed.into_iter().map(|v| vec![v]).collect();
        Ok(self.classifier.predict_positive_proba(&x)?[0])
    }

    /// Hard decision at 0.5: keep as candidate or drop.
    pub fn is_positive(&self, values: &[f64]) -> Result<bool> {
        Ok(self.score_feature(values)? >= 0.5)
    }

    /// Serialise to JSON (persistence across sessions: the paper reuses one
    /// pre-trained FPE model for every target dataset).
    pub fn to_json(&self) -> Result<String> {
        Ok(serde_json::to_string(self)?)
    }

    /// Deserialise from JSON.
    pub fn from_json(json: &str) -> Result<FpeModel> {
        Ok(serde_json::from_str(json)?)
    }
}

fn to_columns(examples: &[LabeledFeature], d: usize) -> Vec<Vec<f64>> {
    let mut x = vec![Vec::with_capacity(examples.len()); d];
    for lf in examples {
        for (j, &v) in lf.compressed.iter().enumerate() {
            x[j].push(v);
        }
    }
    x
}

fn evaluate_classifier(
    classifier: &LogisticRegression,
    examples: &[LabeledFeature],
    d: usize,
) -> Result<FpeMetrics> {
    let x = to_columns(examples, d);
    let y: Vec<usize> = examples.iter().map(|lf| lf.label).collect();
    let preds = classifier.predict(&x)?;
    let (precision, recall) = binary_precision_recall(&y, &preds)?;
    let positive_rate = preds.iter().filter(|&&p| p == 1).count() as f64 / preds.len() as f64;
    Ok(FpeMetrics {
        recall,
        precision,
        positive_rate,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use minhash::HashFamily;

    /// Synthetic labelled corpus where effective features have a distinct
    /// compressed pattern (large positive tail values).
    fn corpus(n: usize, d: usize, seed: u64) -> Vec<LabeledFeature> {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                let label = i % 2;
                let compressed: Vec<f64> = (0..d)
                    .map(|j| {
                        let base: f64 = rng.gen_range(-0.5..0.5);
                        if label == 1 && j < d / 2 {
                            base + 1.5
                        } else {
                            base
                        }
                    })
                    .collect();
                LabeledFeature {
                    compressed,
                    label,
                    score_gain: if label == 1 { 0.05 } else { -0.01 },
                }
            })
            .collect()
    }

    fn compressor(d: usize) -> SampleCompressor {
        SampleCompressor::new(HashFamily::Ccws, d, 7).unwrap()
    }

    #[test]
    fn trains_and_separates_synthetic_corpus() {
        let train = corpus(200, 16, 1);
        let val = corpus(60, 16, 2);
        let m = FpeModel::train(compressor(16), &train, &val, 0.01, 0).unwrap();
        assert!(m.metrics.recall > 0.8, "recall {}", m.metrics.recall);
        assert!(
            m.metrics.precision > 0.8,
            "precision {}",
            m.metrics.precision
        );
        assert!(m.metrics.positive_rate > 0.2 && m.metrics.positive_rate < 0.8);
    }

    #[test]
    fn score_feature_is_probability() {
        let train = corpus(100, 8, 3);
        let m = FpeModel::train(compressor(8), &train, &[], 0.01, 0).unwrap();
        let values: Vec<f64> = (0..50).map(|i| i as f64 * 0.3).collect();
        let p = m.score_feature(&values).unwrap();
        assert!((0.0..=1.0).contains(&p));
        assert_eq!(m.is_positive(&values).unwrap(), p >= 0.5);
    }

    #[test]
    fn rejects_empty_or_single_class_corpus() {
        assert!(FpeModel::train(compressor(8), &[], &[], 0.01, 0).is_err());
        let all_pos: Vec<LabeledFeature> = corpus(50, 8, 4)
            .into_iter()
            .map(|mut lf| {
                lf.label = 1;
                lf
            })
            .collect();
        assert!(FpeModel::train(compressor(8), &all_pos, &[], 0.01, 0).is_err());
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let train = corpus(50, 8, 5);
        assert!(FpeModel::train(compressor(16), &train, &[], 0.01, 0).is_err());
    }

    #[test]
    fn json_round_trip_preserves_behaviour() {
        let train = corpus(120, 8, 6);
        let m = FpeModel::train(compressor(8), &train, &[], 0.01, 0).unwrap();
        let json = m.to_json().unwrap();
        let m2 = FpeModel::from_json(&json).unwrap();
        let values: Vec<f64> = (0..40).map(|i| (i as f64).sin() * 2.0).collect();
        assert_eq!(
            m.score_feature(&values).unwrap(),
            m2.score_feature(&values).unwrap()
        );
        assert_eq!(m.metrics, m2.metrics);
    }
}
