//! FPE hyper-parameter search (Algorithm 1, lines 1–2 and 21–23):
//! sweep the hash-function options and compression sizes `d`, training one
//! classifier per combination, and keep the combination maximising
//! validation **recall** subject to `precision > 0` and `recall < 1`
//! (paper Eq. 6).
//!
//! The expensive part of Algorithm 1 — leave-one-feature-out downstream
//! evaluations — does not depend on the compressor, so labels (score gains)
//! are computed once per corpus and only re-compressed per candidate.

use crate::config::CachedEvaluator;
use crate::error::{EafeError, Result};
use crate::fpe::labeling::{score_gains_for_dataset, LabeledFeature};
use crate::fpe::model::FpeModel;
use minhash::{HashFamily, SampleCompressor};
use runtime::WorkerPool;
use serde::{Deserialize, Serialize};
use tabular::DataFrame;

/// Search space over the sample compressor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FpeSearchSpace {
    /// Hash families to try (the paper compares CCWS, ICWS, PCWS, 0-bit).
    pub families: Vec<HashFamily>,
    /// Candidate signature dimensions `d` (the paper's default is 48).
    pub dims: Vec<usize>,
    /// Label threshold `thre`.
    pub thre: f64,
    /// Seed for compressors and classifier init.
    pub seed: u64,
}

impl Default for FpeSearchSpace {
    fn default() -> Self {
        Self {
            families: vec![
                HashFamily::Ccws,
                HashFamily::Icws,
                HashFamily::Pcws,
                HashFamily::ZeroBitCws,
            ],
            dims: vec![16, 32, 48, 64],
            thre: 0.01,
            seed: 0xE_AFE,
        }
    }
}

/// Per-candidate outcome, kept for reporting (Figure 8's `d` sweep).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateOutcome {
    /// Hash family tried.
    pub family: HashFamily,
    /// Signature dimension tried.
    pub d: usize,
    /// Validation recall.
    pub recall: f64,
    /// Validation precision.
    pub precision: f64,
    /// Whether the Eq. 6 constraints held.
    pub feasible: bool,
}

/// Result of the search: the winning model plus the full sweep trace.
#[derive(Debug, Clone)]
pub struct FpeSearchResult {
    /// The best model per Eq. 6.
    pub model: FpeModel,
    /// Every candidate's metrics.
    pub outcomes: Vec<CandidateOutcome>,
}

/// Raw labelling of a corpus: per-dataset feature columns with their
/// leave-one-out score gains. Compressor-independent, so it can be reused
/// across the sweep (and cached across threshold studies).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RawLabels {
    /// For each feature: the raw column values and its score gain.
    pub features: Vec<(Vec<f64>, f64)>,
}

impl RawLabels {
    /// Run the leave-one-feature-out evaluations over a corpus.
    pub fn compute(corpus: &[DataFrame], evaluator: &CachedEvaluator) -> Result<RawLabels> {
        let mut features = Vec::new();
        for frame in corpus {
            let gains = score_gains_for_dataset(frame, evaluator)?;
            for (j, gain) in gains.into_iter().enumerate() {
                features.push((frame.column(j)?.values.clone(), gain));
            }
        }
        Ok(RawLabels { features })
    }

    /// Like [`RawLabels::compute`], but additionally labels randomly
    /// *generated* features per dataset by their add-one-in score gain
    /// `A(D + f̃) − A(D)`.
    ///
    /// The paper labels only original features by leave-one-out (Eq. 3),
    /// yet the FPE gate is applied to *generated* features at run time;
    /// training on the actual input distribution markedly improves the
    /// gate's transfer (see DESIGN.md §2 — this is the one place we extend
    /// the paper's recipe, and the extension uses only machinery the paper
    /// already has).
    pub fn compute_augmented(
        corpus: &[DataFrame],
        evaluator: &CachedEvaluator,
        generated_per_dataset: usize,
        max_order: usize,
        seed: u64,
    ) -> Result<RawLabels> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut out = Self::compute(corpus, evaluator)?;
        for (i, frame) in corpus.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37));
            let pool = crate::baselines::random_feature_pool(
                frame,
                generated_per_dataset,
                max_order,
                &mut rng,
            );
            if pool.is_empty() {
                continue;
            }
            // Served from cache: `compute` above already evaluated `frame`.
            let a0 = evaluator.evaluate(frame)?;
            let labelled = WorkerPool::new().map(pool, |_ctx, feat| -> Result<_> {
                let candidate = frame.with_extra_columns(std::slice::from_ref(&feat.column))?;
                let gain = evaluator.evaluate(&candidate)? - a0;
                Ok((feat.column.values, gain))
            });
            for item in labelled {
                out.features.push(item?);
            }
        }
        Ok(out)
    }

    /// Materialise labelled examples for a specific compressor + threshold.
    pub fn compress(
        &self,
        compressor: &SampleCompressor,
        thre: f64,
    ) -> Result<Vec<LabeledFeature>> {
        self.represent(&crate::fpe::repr::FeatureRepr::MinHash(*compressor), thre)
    }

    /// Materialise labelled examples for an arbitrary representation. All
    /// columns are represented in one batch, so a MinHash sweep re-visiting
    /// this corpus under an already-seen `(family, d, seed)` is served
    /// entirely from the runtime's signature cache.
    pub fn represent(
        &self,
        repr: &crate::fpe::repr::FeatureRepr,
        thre: f64,
    ) -> Result<Vec<LabeledFeature>> {
        let cols: Vec<&[f64]> = self.features.iter().map(|(v, _)| v.as_slice()).collect();
        let compressed = repr.represent_batch(&cols)?;
        Ok(compressed
            .into_iter()
            .zip(&self.features)
            .map(|(compressed, (_, gain))| LabeledFeature {
                compressed,
                label: usize::from(*gain > thre),
                score_gain: *gain,
            })
            .collect())
    }

    /// Number of labelled features.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// True when no features were labelled.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }
}

/// Run the sweep of Algorithm 1 given pre-computed raw labels for the
/// training and validation corpora.
pub fn search(
    space: &FpeSearchSpace,
    train_labels: &RawLabels,
    val_labels: &RawLabels,
) -> Result<FpeSearchResult> {
    if space.families.is_empty() || space.dims.is_empty() {
        return Err(EafeError::InvalidConfig(
            "FPE search space must contain at least one family and one dim".into(),
        ));
    }
    if train_labels.is_empty() {
        return Err(EafeError::InvalidConfig(
            "FPE search needs a non-empty labelled corpus".into(),
        ));
    }
    let mut search_span = telemetry::span("fpe.search");
    search_span.field(
        "candidates",
        (space.families.len() * space.dims.len()) as f64,
    );
    let mut outcomes = Vec::new();
    let mut best: Option<(f64, FpeModel)> = None;
    for &family in &space.families {
        for &d in &space.dims {
            let mut cand_span = telemetry::span("fpe.search_candidate");
            cand_span.field("d", d as f64);
            let compressor =
                SampleCompressor::new(family, d, space.seed).map_err(EafeError::MinHash)?;
            let train = train_labels.compress(&compressor, space.thre)?;
            let val = val_labels.compress(&compressor, space.thre)?;
            let model = match FpeModel::train(compressor, &train, &val, space.thre, space.seed) {
                Ok(m) => m,
                Err(EafeError::InvalidConfig(_)) => continue, // single-class corpus
                Err(e) => return Err(e),
            };
            let m = model.metrics;
            // Eq. 6: maximise recall s.t. precision > 0 and recall < 1
            // (recall = 1 usually means "classify everything positive",
            // which would make the stage-2 gate useless).
            let feasible = m.precision > 0.0 && m.recall < 1.0;
            outcomes.push(CandidateOutcome {
                family,
                d,
                recall: m.recall,
                precision: m.precision,
                feasible,
            });
            if feasible && best.as_ref().is_none_or(|(r, _)| m.recall > *r) {
                best = Some((m.recall, model));
            }
        }
    }
    // If no candidate satisfied the strict constraints, fall back to the
    // highest-recall candidate overall rather than failing the pipeline.
    if best.is_none() {
        for &family in &space.families {
            for &d in &space.dims {
                let compressor =
                    SampleCompressor::new(family, d, space.seed).map_err(EafeError::MinHash)?;
                let train = train_labels.compress(&compressor, space.thre)?;
                let val = val_labels.compress(&compressor, space.thre)?;
                if let Ok(model) = FpeModel::train(compressor, &train, &val, space.thre, space.seed)
                {
                    let r = model.metrics.recall;
                    if best.as_ref().is_none_or(|(br, _)| r > *br) {
                        best = Some((r, model));
                    }
                }
            }
        }
    }
    let model = best.map(|(_, m)| m).ok_or_else(|| {
        EafeError::InvalidConfig(
            "no FPE candidate could be trained (corpus may be single-class at this thre)".into(),
        )
    })?;
    Ok(FpeSearchResult { model, outcomes })
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit per-field tweaks read clearer in tests
mod tests {
    use super::*;
    use learners::Evaluator;
    use tabular::registry::public_corpus;

    fn small_evaluator() -> CachedEvaluator {
        let mut e = Evaluator::default();
        e.folds = 3;
        e.forest.n_trees = 6;
        e.forest.tree.max_depth = 5;
        runtime::Evaluator::new(e)
    }

    fn labels() -> (RawLabels, RawLabels) {
        let corpus = public_corpus(4, 2, 31).unwrap();
        let ev = small_evaluator();
        let train = RawLabels::compute(&corpus[..4], &ev).unwrap();
        let val = RawLabels::compute(&corpus[4..], &ev).unwrap();
        (train, val)
    }

    #[test]
    fn raw_labels_cover_all_features() {
        let (train, val) = labels();
        assert!(!train.is_empty());
        assert!(!val.is_empty());
        // 4 classification datasets with 5..24 features each.
        assert!(train.len() >= 20, "train labels {}", train.len());
        assert!(val.len() >= 10);
    }

    #[test]
    fn search_returns_feasible_or_fallback_model() {
        let (train, val) = labels();
        let space = FpeSearchSpace {
            families: vec![HashFamily::Ccws, HashFamily::Icws],
            dims: vec![8, 16],
            thre: 0.0,
            seed: 1,
        };
        let result = search(&space, &train, &val).unwrap();
        assert!(!result.outcomes.is_empty());
        assert!(result.model.metrics.recall >= 0.0);
        assert_eq!(result.model.thre, 0.0);
    }

    #[test]
    fn search_rejects_empty_space() {
        let (train, val) = labels();
        let space = FpeSearchSpace {
            families: vec![],
            dims: vec![8],
            ..Default::default()
        };
        assert!(search(&space, &train, &val).is_err());
        assert!(search(
            &FpeSearchSpace::default(),
            &RawLabels { features: vec![] },
            &val
        )
        .is_err());
    }

    #[test]
    fn compress_respects_threshold() {
        let (train, _) = labels();
        let c = SampleCompressor::new(HashFamily::Ccws, 8, 0).unwrap();
        let lo = train.compress(&c, -10.0).unwrap(); // everything positive
        assert!(lo.iter().all(|l| l.label == 1));
        let hi = train.compress(&c, 10.0).unwrap(); // nothing positive
        assert!(hi.iter().all(|l| l.label == 0));
    }
}
