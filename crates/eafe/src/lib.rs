//! # eafe
//!
//! A from-scratch Rust implementation of **E-AFE** — *Toward Efficient
//! Automated Feature Engineering* (ICDE 2023): reinforcement-learning-based
//! automated feature engineering accelerated by a MinHash-compressed
//! Feature Pre-Evaluation (FPE) model and a two-stage policy-training
//! strategy.
//!
//! ## Quick start
//!
//! ```
//! use eafe::{bootstrap_fpe, EafeConfig, Engine, FpeSearchSpace};
//! use tabular::{SynthSpec, Task};
//!
//! // 1. A target dataset (here: synthetic; see `tabular::registry` for the
//! //    paper's 36 datasets).
//! let frame = SynthSpec::new("demo", 150, 5, Task::Classification)
//!     .generate()
//!     .unwrap();
//!
//! // 2. Pre-train the FPE model on a public corpus (done once, reusable).
//! let cfg = EafeConfig::fast();
//! let space = FpeSearchSpace {
//!     families: vec![minhash::HashFamily::Ccws],
//!     dims: vec![16],
//!     thre: 0.0,
//!     seed: 1,
//! };
//! let fpe = bootstrap_fpe(3, 1, &space, &cfg.evaluator, 7).unwrap();
//!
//! // 3. Run E-AFE.
//! let result = Engine::e_afe(cfg, fpe).run(&frame).unwrap();
//! assert!(result.best_score >= result.base_score);
//! ```
//!
//! ## Module map
//!
//! - [`ops`] — the 9 transformation operators (paper §II, "Action");
//! - [`fpe`] — sample compression + feature pre-selection (Algorithm 1);
//! - [`reward`] — the stage-1 surrogate reward (Eqs. 7–8);
//! - [`state`] — feature subgroups and the RL state;
//! - [`engine`] — the unified E-AFE / E-AFE_D / E-AFE_R / NFS loop
//!   (Algorithm 2);
//! - [`step`] — the resumable stepped state machine behind the engine
//!   (start/step/finish, serializable [`SearchState`] checkpoints);
//! - [`baselines`] — AutoFS_R and the deep-learning baselines;
//! - [`pipeline`] — pre-selection, FPE bootstrapping, Table V re-evaluation;
//! - [`report`] — instrumented results (timers, counters, learning curves).

#![warn(missing_docs)]

pub mod baselines;
pub mod chunked;
pub mod config;
pub mod engine;
pub mod error;
pub mod fpe;
pub mod ops;
pub mod pipeline;
pub mod report;
pub mod reward;
pub mod state;
pub mod step;

pub use chunked::ChunkedSearch;
pub use config::{CachedEvaluator, EafeConfig};
pub use engine::{Engine, Gate};
pub use error::{EafeError, Result};
pub use fpe::{FpeMetrics, FpeModel, FpeSearchSpace, RawLabels};
pub use learners::SplitMethod;
pub use ops::{GeneratedFeature, Operator};
pub use pipeline::{bootstrap_fpe, preselect_features, reevaluate};
pub use report::{
    EpochPoint, EpochReport, EvalCounter, PhaseTimer, RunResult, SearchStage, WeightedFeature,
};
pub use reward::SurrogateReward;
pub use state::{EngineState, FeatureSubgroup};
pub use step::{max_slices, SearchPhase, SearchState};
