//! RL state: feature subgroups and the engine state (paper §II).
//!
//! Each original feature owns a **subgroup** — itself plus every accepted
//! generated feature derived within that subgroup. The state `s` is the set
//! of selected features across subgroups; it expands as qualified features
//! are accepted. Agents act on their own subgroup by sampling two member
//! features (with replacement) and applying the chosen operator.

use crate::error::Result;
use crate::ops::GeneratedFeature;
use rand::Rng;
use serde::{Deserialize, Serialize};
use tabular::{Column, DataFrame};

/// One agent's feature subgroup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatureSubgroup {
    /// Index of the original feature in the base frame.
    pub origin_idx: usize,
    /// The original feature (order 0).
    pub original: Column,
    /// Accepted generated features, in acceptance order.
    pub generated: Vec<GeneratedFeature>,
}

impl FeatureSubgroup {
    /// New subgroup around one original feature.
    pub fn new(origin_idx: usize, original: Column) -> Self {
        Self {
            origin_idx,
            original,
            generated: Vec::new(),
        }
    }

    /// Total members (original + generated).
    pub fn len(&self) -> usize {
        1 + self.generated.len()
    }

    /// Never empty: always contains the original feature.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Member column and its order by subgroup-local index
    /// (0 = the original feature).
    pub fn member(&self, idx: usize) -> (&Column, usize) {
        if idx == 0 {
            (&self.original, 0)
        } else {
            let g = &self.generated[idx - 1];
            (&g.column, g.order)
        }
    }

    /// Sample a member index uniformly (with replacement across calls) —
    /// the paper's transition step samples two features this way.
    pub fn sample_member(&self, rng: &mut impl Rng) -> usize {
        rng.gen_range(0..self.len())
    }

    /// Mean transformation order across members.
    pub fn mean_order(&self) -> f64 {
        let total: usize = self.generated.iter().map(|g| g.order).sum();
        total as f64 / self.len() as f64
    }

    /// Accept a generated feature into the subgroup.
    pub fn accept(&mut self, feature: GeneratedFeature) {
        self.generated.push(feature);
    }
}

/// The full engine state: one subgroup per original feature plus the
/// current downstream score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineState {
    /// Per-agent subgroups.
    pub subgroups: Vec<FeatureSubgroup>,
    /// Most recent downstream score of the selected feature set.
    pub current_score: f64,
    /// Reward obtained by the most recent accepted action (for embeddings).
    pub last_reward: f64,
}

impl EngineState {
    /// Initial state: every original feature seeds its own subgroup.
    pub fn new(frame: &DataFrame, base_score: f64) -> Self {
        let subgroups = frame
            .columns()
            .iter()
            .enumerate()
            .map(|(i, c)| FeatureSubgroup::new(i, c.clone()))
            .collect();
        Self {
            subgroups,
            current_score: base_score,
            last_reward: 0.0,
        }
    }

    /// Number of agents (original features).
    pub fn n_agents(&self) -> usize {
        self.subgroups.len()
    }

    /// Total generated features accepted across subgroups.
    pub fn n_generated(&self) -> usize {
        self.subgroups.iter().map(|s| s.generated.len()).sum()
    }

    /// Build the selected-feature frame: all original columns plus every
    /// accepted generated column, sharing the base frame's label.
    pub fn selected_frame(&self, base: &DataFrame) -> Result<DataFrame> {
        let extra: Vec<Column> = self
            .subgroups
            .iter()
            .flat_map(|s| s.generated.iter().map(|g| g.column.clone()))
            .collect();
        Ok(base.with_extra_columns(&extra)?)
    }

    /// Names of all selected generated features.
    pub fn selected_names(&self) -> Vec<String> {
        self.subgroups
            .iter()
            .flat_map(|s| s.generated.iter().map(|g| g.column.name.clone()))
            .collect()
    }

    /// The fixed-size state embedding fed to agent `j`'s RNN policy.
    /// Eight cheap, bounded summary statistics of the current state.
    pub fn embedding(
        &self,
        agent: usize,
        step: usize,
        steps_per_epoch: usize,
        epoch_frac: f64,
        max_order: usize,
    ) -> Vec<f64> {
        let sub = &self.subgroups[agent];
        vec![
            1.0, // bias
            (sub.len() as f64).ln() / 4.0,
            (self.last_reward * 10.0).clamp(-1.0, 1.0),
            self.current_score.clamp(-1.0, 1.0),
            sub.mean_order() / max_order.max(1) as f64,
            (step as f64 + 0.5) / steps_per_epoch.max(1) as f64,
            epoch_frac.clamp(0.0, 1.0),
            (agent as f64 + 0.5) / self.n_agents().max(1) as f64,
        ]
    }

    /// Dimension of [`EngineState::embedding`]'s output.
    pub const EMBEDDING_DIM: usize = 8;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{GeneratedFeature, Operator};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tabular::{DataFrame, Label, SynthSpec, Task};

    fn base() -> DataFrame {
        DataFrame::new(
            "s",
            vec![
                Column::new("f0", vec![1.0, 2.0, 3.0]),
                Column::new("f1", vec![4.0, 5.0, 6.0]),
            ],
            Label::Class {
                y: vec![0, 1, 0],
                n_classes: 2,
            },
        )
        .unwrap()
    }

    fn gen_feature(state: &EngineState) -> GeneratedFeature {
        let (a, ao) = state.subgroups[0].member(0);
        GeneratedFeature::generate(Operator::Sqrt, a, ao, a, ao)
    }

    #[test]
    fn initial_state_mirrors_frame() {
        let f = base();
        let s = EngineState::new(&f, 0.7);
        assert_eq!(s.n_agents(), 2);
        assert_eq!(s.n_generated(), 0);
        assert_eq!(s.current_score, 0.7);
        assert_eq!(s.subgroups[0].len(), 1);
        assert_eq!(s.subgroups[0].member(0).1, 0); // order 0
    }

    #[test]
    fn accept_expands_state_and_frame() {
        let f = base();
        let mut s = EngineState::new(&f, 0.5);
        let g = gen_feature(&s);
        s.subgroups[0].accept(g);
        assert_eq!(s.n_generated(), 1);
        assert_eq!(s.subgroups[0].len(), 2);
        let sel = s.selected_frame(&f).unwrap();
        assert_eq!(sel.n_cols(), 3);
        assert_eq!(sel.columns()[2].name, "sqrt(f0)");
        assert_eq!(s.selected_names(), vec!["sqrt(f0)".to_string()]);
    }

    #[test]
    fn member_indexing_and_orders() {
        let f = base();
        let mut s = EngineState::new(&f, 0.5);
        let g = gen_feature(&s);
        s.subgroups[0].accept(g);
        let (col, order) = s.subgroups[0].member(1);
        assert_eq!(col.name, "sqrt(f0)");
        assert_eq!(order, 1);
        assert!((s.subgroups[0].mean_order() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sampling_stays_in_range() {
        let f = SynthSpec::new("x", 30, 3, Task::Classification)
            .generate()
            .unwrap();
        let s = EngineState::new(&f, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let idx = s.subgroups[2].sample_member(&mut rng);
            assert!(idx < s.subgroups[2].len());
        }
    }

    #[test]
    fn embedding_is_fixed_size_and_bounded() {
        let f = base();
        let mut s = EngineState::new(&f, 0.8);
        s.last_reward = 5.0; // deliberately out of range → clamped
        let e = s.embedding(1, 2, 4, 0.5, 5);
        assert_eq!(e.len(), EngineState::EMBEDDING_DIM);
        assert!(e.iter().all(|v| v.is_finite() && v.abs() <= 2.0), "{e:?}");
        assert_eq!(e[0], 1.0);
        assert_eq!(e[2], 1.0); // clamped reward
    }
}
