//! Error type for the `eafe` crate, aggregating substrate errors.

use std::fmt;

/// Errors produced by the E-AFE engine.
#[derive(Debug, Clone, PartialEq)]
pub enum EafeError {
    /// Propagated data-frame error.
    Tabular(tabular::TabularError),
    /// Propagated learner error.
    Learn(learners::LearnError),
    /// Propagated hashing error.
    MinHash(minhash::MinHashError),
    /// Propagated RL error.
    Rl(rl::RlError),
    /// A configuration value was outside its valid domain.
    InvalidConfig(String),
    /// The FPE model is required but has not been trained/loaded.
    FpeNotTrained,
    /// Serialisation failure (FPE persistence, reports).
    Serde(String),
}

impl fmt::Display for EafeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EafeError::Tabular(e) => write!(f, "tabular: {e}"),
            EafeError::Learn(e) => write!(f, "learners: {e}"),
            EafeError::MinHash(e) => write!(f, "minhash: {e}"),
            EafeError::Rl(e) => write!(f, "rl: {e}"),
            EafeError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            EafeError::FpeNotTrained => write!(f, "FPE model has not been trained"),
            EafeError::Serde(msg) => write!(f, "serialisation: {msg}"),
        }
    }
}

impl std::error::Error for EafeError {}

impl From<tabular::TabularError> for EafeError {
    fn from(e: tabular::TabularError) -> Self {
        EafeError::Tabular(e)
    }
}

impl From<learners::LearnError> for EafeError {
    fn from(e: learners::LearnError) -> Self {
        EafeError::Learn(e)
    }
}

impl From<minhash::MinHashError> for EafeError {
    fn from(e: minhash::MinHashError) -> Self {
        EafeError::MinHash(e)
    }
}

impl From<rl::RlError> for EafeError {
    fn from(e: rl::RlError) -> Self {
        EafeError::Rl(e)
    }
}

impl From<serde_json::Error> for EafeError {
    fn from(e: serde_json::Error) -> Self {
        EafeError::Serde(e.to_string())
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, EafeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: EafeError = tabular::TabularError::Empty("x".into()).into();
        assert!(e.to_string().contains("tabular"));
        let e: EafeError = learners::LearnError::NotFitted("RF").into();
        assert!(e.to_string().contains("RF"));
        let e: EafeError = minhash::MinHashError::EmptyInput.into();
        assert!(e.to_string().contains("minhash"));
        let e: EafeError = rl::RlError::InvalidParam("p".into()).into();
        assert!(e.to_string().contains("rl"));
        assert!(EafeError::FpeNotTrained.to_string().contains("FPE"));
    }
}
