//! Stage-1 surrogate reward (paper Eqs. 7–8).
//!
//! During quick initialisation the downstream task is never run; instead
//! the FPE classifier's output probability is mapped onto a pseudo-score
//! around the original dataset's score `A^O`:
//!
//! ```text
//! A_t^h = A^O + (0.5 − p)/0.5 · (ΔA_max − thre),  p ∈ [0, 0.5)
//! A_t^h = A^O + (0.5 − p)/0.5 · (thre − ΔA_min),  p ∈ [0.5, 1]
//! ```
//!
//! In Eq. (8) as printed, `p → 0` yields the maximal pseudo-score — i.e.
//! the equation's `p` is the probability of the *ineffective* class. Our
//! [`crate::fpe::FpeModel::score_feature`] returns the probability of the
//! **effective** class (the more natural orientation), so this module
//! applies Eq. (8) to `1 − p_effective`. The net behaviour matches the
//! paper: confidently-good features score near `A^O + ΔA_max − thre`,
//! confidently-bad ones near `A^O + ΔA_min − thre`.

use serde::{Deserialize, Serialize};

/// Parameters of the Eq. 8 mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurrogateReward {
    /// `A^O`: downstream score of the original dataset.
    pub base_score: f64,
    /// `ΔA_max`: maximum plausible score gain of a single feature.
    pub delta_max: f64,
    /// `ΔA_min`: minimum (most negative) plausible score gain.
    pub delta_min: f64,
    /// The FPE label threshold `thre`.
    pub thre: f64,
}

impl SurrogateReward {
    /// Sensible defaults when per-dataset gain bounds are unknown: the FPE
    /// labelling's empirical gains rarely exceed ±0.1 on the paper's metric
    /// scales.
    pub fn new(base_score: f64, thre: f64) -> Self {
        Self {
            base_score,
            delta_max: 0.1,
            delta_min: -0.1,
            thre,
        }
    }

    /// Eq. (8) pseudo-score for a feature whose *effective-class*
    /// probability is `p_effective`.
    pub fn pseudo_score(&self, p_effective: f64) -> f64 {
        let p = (1.0 - p_effective).clamp(0.0, 1.0); // Eq. 8's ineffective-class p
        let scale = (0.5 - p) / 0.5;
        if p < 0.5 {
            self.base_score + scale * (self.delta_max - self.thre)
        } else {
            self.base_score + scale * (self.thre - self.delta_min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sr() -> SurrogateReward {
        SurrogateReward {
            base_score: 0.8,
            delta_max: 0.1,
            delta_min: -0.1,
            thre: 0.01,
        }
    }

    #[test]
    fn confident_good_feature_scores_above_base() {
        let s = sr();
        // p_effective = 1 → Eq. 8 p = 0 → A^O + (ΔA_max − thre).
        assert!((s.pseudo_score(1.0) - (0.8 + 0.09)).abs() < 1e-12);
        assert!(s.pseudo_score(0.9) > s.base_score);
    }

    #[test]
    fn confident_bad_feature_scores_below_base() {
        let s = sr();
        // p_effective = 0 → Eq. 8 p = 1 → A^O − (thre − ΔA_min).
        assert!((s.pseudo_score(0.0) - (0.8 - 0.11)).abs() < 1e-12);
        assert!(s.pseudo_score(0.1) < s.base_score);
    }

    #[test]
    fn boundary_is_continuous_at_half() {
        let s = sr();
        let below = s.pseudo_score(0.5 + 1e-9);
        let above = s.pseudo_score(0.5 - 1e-9);
        assert!((below - above).abs() < 1e-6);
        assert!((s.pseudo_score(0.5) - s.base_score).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_effectiveness() {
        let s = sr();
        let ps: Vec<f64> = (0..=10).map(|i| s.pseudo_score(i as f64 / 10.0)).collect();
        for w in ps.windows(2) {
            assert!(w[1] >= w[0] - 1e-12, "not monotone: {ps:?}");
        }
    }

    #[test]
    fn out_of_range_probability_is_clamped() {
        let s = sr();
        assert_eq!(s.pseudo_score(2.0), s.pseudo_score(1.0));
        assert_eq!(s.pseudo_score(-1.0), s.pseudo_score(0.0));
    }
}
