//! High-level pipeline helpers: RF-importance feature pre-selection
//! (paper §IV-B: "E-AFE first conducts feature selection of less than
//! maximum features according to the feature importance via RF"), one-call
//! FPE bootstrapping from a synthetic public corpus, and Table V's
//! cached-feature re-evaluation with alternative downstream models.

use crate::config::EafeConfig;
use crate::error::Result;
use crate::fpe::{search, FpeModel, FpeSearchSpace, RawLabels};
use learners::{
    feature_matrix, Evaluator, ForestConfig, ModelKind, RandomForestClassifier,
    RandomForestRegressor,
};
use tabular::registry::public_corpus;
use tabular::{DataFrame, Label};

/// Keep the `max_features` most RF-important columns of a frame (identity
/// when the frame is already narrow enough).
pub fn preselect_features(frame: &DataFrame, max_features: usize, seed: u64) -> Result<DataFrame> {
    if frame.n_cols() <= max_features || max_features == 0 {
        return Ok(frame.clone());
    }
    let x = feature_matrix(frame);
    let cfg = ForestConfig {
        seed,
        ..ForestConfig::fast()
    };
    let importances = match frame.label() {
        Label::Class { y, n_classes } => {
            let mut rf = RandomForestClassifier::new(cfg);
            rf.fit(&x, y, *n_classes)?;
            rf.feature_importances()?
        }
        Label::Reg(y) => {
            let mut rf = RandomForestRegressor::new(cfg);
            rf.fit(&x, y)?;
            rf.feature_importances()?
        }
    };
    let keep = crate::baselines::top_k(&importances, max_features);
    Ok(frame.select_columns(&keep)?)
}

/// Pre-train an FPE model from a synthetic public corpus in one call —
/// the paper pre-trains on 239 OpenML datasets; `n_class`/`n_reg` scale
/// that corpus down for laptop runs (see DESIGN.md §2).
pub fn bootstrap_fpe(
    n_class: usize,
    n_reg: usize,
    space: &FpeSearchSpace,
    evaluator: &Evaluator,
    seed: u64,
) -> Result<FpeModel> {
    let corpus = public_corpus(n_class, n_reg, seed)?;
    let n_val = (corpus.len() / 5).max(1);
    let split = corpus.len().saturating_sub(n_val);
    // One cache across train and validation labelling: the corpora are
    // disjoint, but every per-frame baseline `A₀` is re-requested by the
    // augmented labelling and served from cache.
    let evaluator = runtime::Evaluator::new(evaluator.clone());
    // Augment the paper's leave-one-out labelling with add-one-in labels
    // for generated features: the gate's real input distribution.
    let gen_per_dataset = 8;
    let train =
        RawLabels::compute_augmented(&corpus[..split], &evaluator, gen_per_dataset, 3, seed)?;
    let val =
        RawLabels::compute_augmented(&corpus[split..], &evaluator, gen_per_dataset, 3, seed ^ 1)?;
    Ok(search(space, &train, &val)?.model)
}

/// Re-evaluate a cached engineered feature set with an alternative
/// downstream model (the paper's Table V: SVM, NB/GP, MLP).
pub fn reevaluate(engineered: &DataFrame, kind: ModelKind, base: &EafeConfig) -> Result<f64> {
    let mut evaluator = base.evaluator.clone();
    evaluator.kind = kind;
    Ok(evaluator.evaluate(engineered)?)
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)] // explicit per-field tweaks read clearer in tests
mod tests {
    use super::*;
    use minhash::HashFamily;
    use tabular::{SynthSpec, Task};

    fn fast_evaluator() -> Evaluator {
        let mut e = Evaluator::default();
        e.folds = 3;
        e.forest.n_trees = 6;
        e.forest.tree.max_depth = 5;
        e
    }

    #[test]
    fn preselect_keeps_top_features() {
        let frame = SynthSpec::new("pre", 150, 20, Task::Classification)
            .with_seed(21)
            .generate()
            .unwrap();
        let narrow = preselect_features(&frame, 8, 0).unwrap();
        assert_eq!(narrow.n_cols(), 8);
        assert_eq!(narrow.n_rows(), 150);
        // Identity when already narrow.
        let same = preselect_features(&narrow, 20, 0).unwrap();
        assert_eq!(same.n_cols(), 8);
    }

    #[test]
    fn preselect_works_for_regression() {
        let frame = SynthSpec::new("pre-r", 120, 15, Task::Regression)
            .with_seed(22)
            .generate()
            .unwrap();
        let narrow = preselect_features(&frame, 5, 0).unwrap();
        assert_eq!(narrow.n_cols(), 5);
    }

    #[test]
    fn bootstrap_fpe_trains_a_model() {
        let space = FpeSearchSpace {
            families: vec![HashFamily::Ccws],
            dims: vec![16],
            thre: 0.0,
            seed: 3,
        };
        let fpe = bootstrap_fpe(4, 2, &space, &fast_evaluator(), 51).unwrap();
        assert_eq!(fpe.d(), 16);
        assert!(fpe.metrics.recall >= 0.0);
        // The model must actually discriminate: score a couple of columns.
        let v: Vec<f64> = (0..60).map(|i| (i as f64 * 0.7).sin()).collect();
        let p = fpe.score_feature(&v).unwrap();
        assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn reevaluate_with_alternative_models() {
        let frame = SynthSpec::new("reval", 120, 6, Task::Classification)
            .with_seed(23)
            .generate()
            .unwrap();
        let mut cfg = EafeConfig::fast();
        cfg.evaluator = fast_evaluator();
        for kind in [ModelKind::Svm, ModelKind::NaiveBayesGp] {
            let score = reevaluate(&frame, kind, &cfg).unwrap();
            assert!(score.is_finite(), "{kind:?} score {score}");
        }
    }
}
