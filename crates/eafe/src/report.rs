//! Run results, phase timers, and evaluation counters — the instrumentation
//! behind Table I (generation vs evaluation time), Table IV (downstream
//! evaluation counts), and Figure 7 (learning curves).

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// One point on a learning curve (Figure 7 samples epochs
/// 0, 10, 30, 60, 90, 120, 150, 200).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochPoint {
    /// Epoch index (stage-2 epochs for two-stage methods).
    pub epoch: usize,
    /// Best downstream score achieved so far.
    pub score: f64,
    /// Cumulative downstream evaluations so far.
    pub downstream_evals: usize,
    /// Cumulative wall-clock seconds so far.
    pub elapsed_secs: f64,
}

/// Complete result of one AFE run on one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunResult {
    /// Method name (e.g. "E-AFE", "NFS", "E-AFE_D").
    pub method: String,
    /// Dataset name.
    pub dataset: String,
    /// Downstream score of the raw feature set.
    pub base_score: f64,
    /// Best downstream score achieved.
    pub best_score: f64,
    /// Per-epoch learning curve.
    pub trace: Vec<EpochPoint>,
    /// Number of generated features (before any gate).
    pub generated_features: usize,
    /// Number of candidate features evaluated on the downstream task.
    pub downstream_evals: usize,
    /// Names of the accepted generated features.
    pub selected: Vec<String>,
    /// Time spent generating features (policy steps + operator application).
    pub generation_secs: f64,
    /// Time spent on downstream evaluation.
    pub eval_secs: f64,
    /// Total wall-clock time.
    pub total_secs: f64,
    /// Downstream evaluations served from the runtime's score cache.
    pub cache_hits: u64,
    /// Downstream evaluations actually computed (cache misses).
    pub cache_misses: u64,
}

impl RunResult {
    /// Score improvement over the raw features.
    pub fn improvement(&self) -> f64 {
        self.best_score - self.base_score
    }

    /// Fraction of total time spent evaluating (the paper's Table I shows
    /// ~90% for NFS).
    pub fn eval_time_fraction(&self) -> f64 {
        if self.total_secs <= 0.0 {
            return 0.0;
        }
        self.eval_secs / self.total_secs
    }

    /// Fraction of downstream evaluations served from the score cache.
    pub fn cache_hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            return 0.0;
        }
        self.cache_hits as f64 / total as f64
    }
}

/// Wall-clock phase accounting.
#[derive(Debug, Default)]
pub struct PhaseTimer {
    generation: Duration,
    evaluation: Duration,
    started: Option<Instant>,
}

impl PhaseTimer {
    /// New timer; call [`PhaseTimer::start`] to begin total timing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark the start of the run.
    pub fn start(&mut self) {
        self.started = Some(Instant::now());
    }

    /// Time a generation-phase closure.
    pub fn generation<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.generation += t0.elapsed();
        out
    }

    /// Time an evaluation-phase closure.
    pub fn evaluation<T>(&mut self, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.evaluation += t0.elapsed();
        out
    }

    /// Seconds spent in generation.
    pub fn generation_secs(&self) -> f64 {
        self.generation.as_secs_f64()
    }

    /// Seconds spent in evaluation.
    pub fn eval_secs(&self) -> f64 {
        self.evaluation.as_secs_f64()
    }

    /// Total seconds since [`PhaseTimer::start`].
    pub fn total_secs(&self) -> f64 {
        self.started.map_or(0.0, |t| t.elapsed().as_secs_f64())
    }
}

/// Which kind of work slice an [`EpochReport`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchStage {
    /// A stage-1 (FPE-surrogate) training epoch.
    Stage1,
    /// The one-time replay of stage-1 positives against the downstream task.
    Seed,
    /// A stage-2 (downstream-task) training epoch.
    Stage2,
}

/// An accepted generated feature together with the downstream score gain
/// it delivered at acceptance — the ranked, weighted feature-set export.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedFeature {
    /// Feature expression (e.g. `log(f0) * f3`).
    pub name: String,
    /// Downstream score gain the feature delivered when accepted.
    pub weight: f64,
}

/// The anytime progress report returned by each `Engine::step` slice:
/// best-so-far score and weighted feature set plus cumulative budget
/// spent. Reports are monotone — `best_score` never decreases and
/// `best_features` only grows — so the latest report is always the best
/// answer available.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Which stage this slice ran.
    pub stage: SearchStage,
    /// Epoch index within its stage (0 for the seeding slice).
    pub epoch: usize,
    /// Total step slices completed so far across all stages.
    pub epochs_completed: usize,
    /// Downstream score of the raw feature set.
    pub base_score: f64,
    /// Best downstream score achieved so far.
    pub best_score: f64,
    /// Best-so-far weighted feature set, in acceptance order.
    pub best_features: Vec<WeightedFeature>,
    /// Cumulative features generated so far.
    pub generated: usize,
    /// Cumulative downstream evaluations so far.
    pub downstream_evals: usize,
    /// Cumulative compute seconds so far.
    pub elapsed_secs: f64,
    /// True once the search has finished (all epochs or early stop).
    pub done: bool,
}

/// Counter for generated features and downstream evaluations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvalCounter {
    /// Features generated by agents.
    pub generated: usize,
    /// Features submitted to the downstream task.
    pub evaluated: usize,
    /// Features dropped by the gate (FPE or random dropout).
    pub dropped: usize,
}

impl EvalCounter {
    /// Record a generated feature.
    pub fn generate(&mut self) {
        self.generated += 1;
    }

    /// Record a downstream evaluation.
    pub fn evaluate(&mut self) {
        self.evaluated += 1;
    }

    /// Record a gate drop.
    pub fn drop_feature(&mut self) {
        self.dropped += 1;
    }

    /// The paper's "drop rate": fraction of generated features never
    /// evaluated downstream.
    pub fn drop_rate(&self) -> f64 {
        if self.generated == 0 {
            return 0.0;
        }
        self.dropped as f64 / self.generated as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_result_derived_metrics() {
        let r = RunResult {
            method: "E-AFE".into(),
            dataset: "d".into(),
            base_score: 0.7,
            best_score: 0.75,
            trace: vec![],
            generated_features: 100,
            downstream_evals: 40,
            selected: vec![],
            generation_secs: 1.0,
            eval_secs: 9.0,
            total_secs: 10.0,
            cache_hits: 5,
            cache_misses: 35,
        };
        assert!((r.improvement() - 0.05).abs() < 1e-12);
        assert!((r.eval_time_fraction() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn timer_attributes_phases() {
        let mut t = PhaseTimer::new();
        t.start();
        t.generation(|| std::thread::sleep(Duration::from_millis(5)));
        t.evaluation(|| std::thread::sleep(Duration::from_millis(10)));
        assert!(t.generation_secs() >= 0.004);
        assert!(t.eval_secs() >= 0.009);
        assert!(t.total_secs() >= t.generation_secs() + t.eval_secs() - 1e-4);
    }

    #[test]
    fn counter_drop_rate() {
        let mut c = EvalCounter::default();
        assert_eq!(c.drop_rate(), 0.0);
        for _ in 0..10 {
            c.generate();
        }
        for _ in 0..6 {
            c.drop_feature();
        }
        for _ in 0..4 {
            c.evaluate();
        }
        assert!((c.drop_rate() - 0.6).abs() < 1e-12);
        assert_eq!(c.evaluated, 4);
    }

    #[test]
    fn run_result_serialises() {
        let r = RunResult {
            method: "NFS".into(),
            dataset: "x".into(),
            base_score: 0.5,
            best_score: 0.6,
            trace: vec![EpochPoint {
                epoch: 0,
                score: 0.5,
                downstream_evals: 1,
                elapsed_secs: 0.1,
            }],
            generated_features: 1,
            downstream_evals: 1,
            selected: vec!["log(f0)".into()],
            generation_secs: 0.0,
            eval_secs: 0.1,
            total_secs: 0.1,
            cache_hits: 0,
            cache_misses: 1,
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: RunResult = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
