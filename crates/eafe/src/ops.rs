//! The feature-transformation operator set (paper §II, "Action"):
//! four unary operators — logarithm, min-max normalisation, square root,
//! reciprocal — and five binary operators — addition, subtraction,
//! multiplication, division, and modulo.
//!
//! Every transformation is in the form `OPERATOR(feature₁, feature₂)`; for
//! unary operators both operands are the same feature. Operators are made
//! total (log of negatives, division by ~0, …) by the standard guards used
//! in the AFE literature, so generated columns are always finite.

use serde::{Deserialize, Serialize};
use std::fmt;
use tabular::Column;

/// Guard threshold below which a divisor is treated as zero.
const DIV_EPS: f64 = 1e-9;

/// A feature-transformation operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Operator {
    /// `ln(|x| + 1)` — safe logarithm.
    Log,
    /// `(x − min) / (max − min)` — min-max normalisation.
    MinMaxNorm,
    /// `√|x|` — safe square root.
    Sqrt,
    /// `1 / x`, 0 where `|x|` is tiny — safe reciprocal.
    Reciprocal,
    /// `a + b`.
    Add,
    /// `a − b`.
    Subtract,
    /// `a × b`.
    Multiply,
    /// `a / b`, 0 where `|b|` is tiny.
    Divide,
    /// `a mod b` (euclidean-ish remainder), 0 where `|b|` is tiny.
    Modulo,
}

impl Operator {
    /// All nine operators: the action space of each E-AFE agent.
    pub const ALL: [Operator; 9] = [
        Operator::Log,
        Operator::MinMaxNorm,
        Operator::Sqrt,
        Operator::Reciprocal,
        Operator::Add,
        Operator::Subtract,
        Operator::Multiply,
        Operator::Divide,
        Operator::Modulo,
    ];

    /// The four unary operators.
    pub const UNARY: [Operator; 4] = [
        Operator::Log,
        Operator::MinMaxNorm,
        Operator::Sqrt,
        Operator::Reciprocal,
    ];

    /// The five binary operators.
    pub const BINARY: [Operator; 5] = [
        Operator::Add,
        Operator::Subtract,
        Operator::Multiply,
        Operator::Divide,
        Operator::Modulo,
    ];

    /// Operator by action index (the RL policy's discrete action space).
    pub fn from_action(action: usize) -> Operator {
        Self::ALL[action % Self::ALL.len()]
    }

    /// True for the single-operand operators.
    pub fn is_unary(self) -> bool {
        matches!(
            self,
            Operator::Log | Operator::MinMaxNorm | Operator::Sqrt | Operator::Reciprocal
        )
    }

    /// Display symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            Operator::Log => "log",
            Operator::MinMaxNorm => "norm",
            Operator::Sqrt => "sqrt",
            Operator::Reciprocal => "recip",
            Operator::Add => "+",
            Operator::Subtract => "-",
            Operator::Multiply => "*",
            Operator::Divide => "/",
            Operator::Modulo => "%",
        }
    }

    /// Telemetry counter name for candidates generated with this operator
    /// (static, so counting never allocates).
    pub fn counter_name(self) -> &'static str {
        match self {
            Operator::Log => "ops.generated.log",
            Operator::MinMaxNorm => "ops.generated.norm",
            Operator::Sqrt => "ops.generated.sqrt",
            Operator::Reciprocal => "ops.generated.recip",
            Operator::Add => "ops.generated.add",
            Operator::Subtract => "ops.generated.sub",
            Operator::Multiply => "ops.generated.mul",
            Operator::Divide => "ops.generated.div",
            Operator::Modulo => "ops.generated.mod",
        }
    }

    /// True when [`Operator::apply`] needs whole-column min/max bounds
    /// before any element can be produced (min-max normalisation). Chunk
    /// pipelines run the [`Operator::column_bounds`] prepass first.
    pub fn needs_bounds(self) -> bool {
        matches!(self, Operator::MinMaxNorm)
    }

    /// The whole-column prepass for bounded operators: `(min, max)` via
    /// row-order `f64::min`/`f64::max` folds. Chunk pipelines reproduce
    /// this by folding across chunks in row order (the fold chains are
    /// element-wise identical, so bounds — and every value derived from
    /// them — match the flat computation bit for bit).
    pub fn column_bounds(values: &[f64]) -> (f64, f64) {
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        (lo, hi)
    }

    /// Apply the operator to one chunk of rows, appending to `out`.
    /// `bounds` must be `Some(column_bounds(a_full))` when
    /// [`Operator::needs_bounds`]; splitting a column into chunks and
    /// calling this per chunk is bit-identical to one [`Operator::apply`]
    /// over the flat column. Non-finite outputs are clamped to 0.
    pub fn apply_chunk(self, a: &[f64], b: &[f64], bounds: Option<(f64, f64)>, out: &mut Vec<f64>) {
        let start = out.len();
        out.reserve(a.len());
        match self {
            Operator::Log => out.extend(a.iter().map(|&x| (x.abs() + 1.0).ln())),
            Operator::Sqrt => out.extend(a.iter().map(|&x| x.abs().sqrt())),
            Operator::Reciprocal => {
                out.extend(
                    a.iter()
                        .map(|&x| if x.abs() < DIV_EPS { 0.0 } else { 1.0 / x }),
                )
            }
            Operator::MinMaxNorm => {
                let (lo, hi) = bounds.expect("MinMaxNorm requires column bounds");
                let span = hi - lo;
                if !span.is_finite() || span < DIV_EPS {
                    out.extend(std::iter::repeat_n(0.0, a.len()));
                } else {
                    out.extend(a.iter().map(|&x| (x - lo) / span));
                }
            }
            Operator::Add => {
                debug_assert_eq!(a.len(), b.len());
                out.extend(a.iter().zip(b).map(|(x, y)| x + y));
            }
            Operator::Subtract => {
                debug_assert_eq!(a.len(), b.len());
                out.extend(a.iter().zip(b).map(|(x, y)| x - y));
            }
            Operator::Multiply => {
                debug_assert_eq!(a.len(), b.len());
                out.extend(a.iter().zip(b).map(|(x, y)| x * y));
            }
            Operator::Divide => {
                debug_assert_eq!(a.len(), b.len());
                out.extend(
                    a.iter()
                        .zip(b)
                        .map(|(x, y)| if y.abs() < DIV_EPS { 0.0 } else { x / y }),
                );
            }
            Operator::Modulo => {
                debug_assert_eq!(a.len(), b.len());
                out.extend(a.iter().zip(b).map(|(&x, &y)| {
                    let m = y.abs();
                    if m < DIV_EPS {
                        0.0
                    } else {
                        x - m * (x / m).floor()
                    }
                }));
            }
        }
        for v in &mut out[start..] {
            if !v.is_finite() {
                *v = 0.0;
            }
        }
    }

    /// Apply the operator: binary operators use both operands, unary
    /// operators only the first (paper: "in this case, feature₁ and
    /// feature₂ are the same feature"). Non-finite outputs are clamped to 0.
    pub fn apply(self, a: &[f64], b: &[f64]) -> Vec<f64> {
        let bounds = if self.needs_bounds() {
            Some(Self::column_bounds(a))
        } else {
            None
        };
        let mut out = Vec::with_capacity(a.len());
        self.apply_chunk(a, b, bounds, &mut out);
        out
    }
}

impl fmt::Display for Operator {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// A generated feature: its values, a human-readable expression, and its
/// transformation order (composition depth; original features are order 0,
/// the paper caps order at 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedFeature {
    /// The feature column (name = expression string).
    pub column: Column,
    /// Composition depth.
    pub order: usize,
    /// The operator that produced it.
    pub operator: Operator,
}

impl GeneratedFeature {
    /// Apply `op` to two parent features, producing a child of order
    /// `max(parent orders) + 1` with an expression-string name.
    pub fn generate(
        op: Operator,
        a: &Column,
        a_order: usize,
        b: &Column,
        b_order: usize,
    ) -> GeneratedFeature {
        telemetry::count(op.counter_name(), 1);
        let values = op.apply(&a.values, &b.values);
        let (name, order) = if op.is_unary() {
            (format!("{}({})", op.symbol(), a.name), a_order + 1)
        } else {
            (
                format!("({}{}{})", a.name, op.symbol(), b.name),
                a_order.max(b_order) + 1,
            )
        };
        GeneratedFeature {
            column: Column::new(name, values),
            order,
            operator: op,
        }
    }

    /// True when the feature is degenerate: constant or non-finite, hence
    /// useless for any downstream model.
    pub fn is_degenerate(&self) -> bool {
        !self.column.is_finite() || self.column.is_constant(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(name: &str, v: &[f64]) -> Column {
        Column::new(name, v.to_vec())
    }

    #[test]
    fn action_space_has_nine_operators() {
        assert_eq!(Operator::ALL.len(), 9);
        assert_eq!(Operator::UNARY.len(), 4);
        assert_eq!(Operator::BINARY.len(), 5);
        assert!(Operator::UNARY.iter().all(|o| o.is_unary()));
        assert!(Operator::BINARY.iter().all(|o| !o.is_unary()));
        assert_eq!(Operator::from_action(0), Operator::Log);
        assert_eq!(Operator::from_action(9), Operator::Log); // wraps
    }

    #[test]
    fn counter_names_are_distinct_and_namespaced() {
        let names: std::collections::HashSet<_> =
            Operator::ALL.iter().map(|o| o.counter_name()).collect();
        assert_eq!(names.len(), Operator::ALL.len());
        assert!(names.iter().all(|n| n.starts_with("ops.generated.")));
    }

    #[test]
    fn log_is_safe_for_negatives() {
        let out = Operator::Log.apply(&[-1.0, 0.0, std::f64::consts::E - 1.0], &[]);
        assert!((out[0] - 2.0f64.ln()).abs() < 1e-12);
        assert_eq!(out[1], 0.0);
        assert!((out[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn minmax_normalises_to_unit_interval() {
        let out = Operator::MinMaxNorm.apply(&[2.0, 4.0, 6.0], &[]);
        assert_eq!(out, vec![0.0, 0.5, 1.0]);
        // Constant column normalises to zeros, not NaN.
        let konst = Operator::MinMaxNorm.apply(&[5.0, 5.0], &[]);
        assert_eq!(konst, vec![0.0, 0.0]);
    }

    #[test]
    fn sqrt_handles_negatives() {
        let out = Operator::Sqrt.apply(&[-4.0, 9.0], &[]);
        assert_eq!(out, vec![2.0, 3.0]);
    }

    #[test]
    fn reciprocal_guards_zero() {
        let out = Operator::Reciprocal.apply(&[2.0, 0.0, -0.5], &[]);
        assert_eq!(out, vec![0.5, 0.0, -2.0]);
    }

    #[test]
    fn binary_arithmetic() {
        let a = [6.0, 8.0];
        let b = [3.0, 2.0];
        assert_eq!(Operator::Add.apply(&a, &b), vec![9.0, 10.0]);
        assert_eq!(Operator::Subtract.apply(&a, &b), vec![3.0, 6.0]);
        assert_eq!(Operator::Multiply.apply(&a, &b), vec![18.0, 16.0]);
        assert_eq!(Operator::Divide.apply(&a, &b), vec![2.0, 4.0]);
    }

    #[test]
    fn divide_guards_zero_divisor() {
        assert_eq!(Operator::Divide.apply(&[5.0], &[0.0]), vec![0.0]);
        assert_eq!(Operator::Divide.apply(&[5.0], &[1e-12]), vec![0.0]);
    }

    #[test]
    fn modulo_matches_euclidean_remainder() {
        let out = Operator::Modulo.apply(&[7.0, -7.0, 7.5], &[3.0, 3.0, 0.0]);
        assert_eq!(out[0], 1.0);
        assert_eq!(out[1], 2.0); // floored remainder is non-negative
        assert_eq!(out[2], 0.0); // zero divisor guard
    }

    #[test]
    fn outputs_are_always_finite() {
        let a = [f64::MAX, -f64::MAX];
        let out = Operator::Multiply.apply(&a, &a); // overflows to ±Inf
        assert!(out.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn generate_tracks_order_and_name() {
        let a = col("f0", &[1.0, 2.0]);
        let b = col("f1", &[3.0, 4.0]);
        let g = GeneratedFeature::generate(Operator::Add, &a, 0, &b, 2);
        assert_eq!(g.order, 3);
        assert_eq!(g.column.name, "(f0+f1)");
        assert_eq!(g.column.values, vec![4.0, 6.0]);

        let u = GeneratedFeature::generate(Operator::Log, &a, 1, &a, 1);
        assert_eq!(u.order, 2);
        assert_eq!(u.column.name, "log(f0)");
    }

    #[test]
    fn degenerate_detection() {
        let a = col("f0", &[1.0, 1.0]);
        let g = GeneratedFeature::generate(Operator::MinMaxNorm, &a, 0, &a, 0);
        assert!(g.is_degenerate()); // constant → all zeros
        let b = col("f1", &[1.0, 2.0]);
        let h = GeneratedFeature::generate(Operator::Sqrt, &b, 0, &b, 0);
        assert!(!h.is_degenerate());
    }

    #[test]
    fn chunked_apply_matches_flat_apply_bitwise() {
        let a: Vec<f64> = (0..257)
            .map(|i| ((i as f64 * 0.37).sin() * 50.0).round() / 2.0 - 10.0)
            .collect();
        let mut b: Vec<f64> = (0..257)
            .map(|i| ((i as f64 * 0.61).cos() * 8.0).round())
            .collect();
        b[3] = 0.0;
        b[100] = -0.0;
        for op in Operator::ALL {
            let flat = op.apply(&a, &b);
            for chunk_rows in [1usize, 7, 64, 256, 257, 500] {
                let bounds = op.needs_bounds().then(|| Operator::column_bounds(&a));
                let mut chunked = Vec::new();
                for (ca, cb) in a.chunks(chunk_rows).zip(b.chunks(chunk_rows)) {
                    op.apply_chunk(ca, cb, bounds, &mut chunked);
                }
                assert_eq!(flat.len(), chunked.len());
                for (x, y) in flat.iter().zip(&chunked) {
                    assert_eq!(x.to_bits(), y.to_bits(), "{op} chunk_rows={chunk_rows}");
                }
            }
        }
    }

    #[test]
    fn subtract_same_feature_is_degenerate() {
        let a = col("f0", &[1.5, 2.5, 3.5]);
        let g = GeneratedFeature::generate(Operator::Subtract, &a, 0, &a, 0);
        assert!(g.is_degenerate());
    }
}
