//! Disabled-telemetry overhead smoke test.
//!
//! With no sink installed every instrumentation call must reduce to one
//! relaxed atomic load (plus constructing an inert guard for spans). The
//! bound below is deliberately generous — hundreds of times the expected
//! cost — so it only trips on a real regression (e.g. someone reading the
//! clock or allocating on the disabled path), never on machine noise.
//! `scripts/ci.sh` runs this in release mode.

use std::time::Instant;

const ITERS: u32 = 200_000;
// An uncontended relaxed load is ~1ns; an accidental Instant::now() or
// registry lookup on the disabled path costs 20-100ns+ per call site.
const MAX_NS_PER_OP: f64 = 2_000.0;

#[test]
fn disabled_instrumentation_is_near_free() {
    assert!(
        !telemetry::enabled(),
        "overhead test must run with no sink installed"
    );

    let start = Instant::now();
    for i in 0..ITERS {
        let mut s = telemetry::span("overhead.probe");
        s.field("i", i as f64);
        telemetry::count("overhead.count", 1);
        telemetry::record("overhead.hist", i as u64);
    }
    let elapsed = start.elapsed();

    let ns_per_op = elapsed.as_nanos() as f64 / ITERS as f64;
    assert!(
        ns_per_op < MAX_NS_PER_OP,
        "disabled telemetry cost {ns_per_op:.1}ns per span+count+record, budget {MAX_NS_PER_OP}ns"
    );
    // The disabled path must also leave no trace behind.
    assert_eq!(telemetry::global().snapshot().counter("overhead.count"), 0);
    assert_eq!(telemetry::current_span(), telemetry::SpanId::NONE);
}
