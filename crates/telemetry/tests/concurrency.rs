//! Metrics-registry concurrency: N threads hammering the same names must
//! produce exact totals, and the event stream must capture every span.

use std::sync::Arc;

#[test]
fn counter_and_histogram_totals_are_exact_under_contention() {
    const THREADS: u64 = 8;
    const ITERS: u64 = 10_000;

    let registry = telemetry::Registry::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let registry = &registry;
            scope.spawn(move || {
                let c = registry.counter("contended.counter");
                let h = registry.histogram("contended.histogram");
                for i in 0..ITERS {
                    c.inc();
                    // Resolving by name mid-flight must hit the same metric.
                    registry.counter("contended.counter").add(1);
                    h.record(t * ITERS + i);
                }
            });
        }
    });

    let snap = registry.snapshot();
    assert_eq!(snap.counter("contended.counter"), THREADS * ITERS * 2);
    let h = snap.histogram("contended.histogram").unwrap();
    assert_eq!(h.count, THREADS * ITERS);
    let n = THREADS * ITERS;
    assert_eq!(h.sum, n * (n - 1) / 2);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, n - 1);
}

#[test]
fn sink_receives_every_event_from_every_thread() {
    const THREADS: usize = 8;
    const SPANS: usize = 500;

    let collector = Arc::new(telemetry::MemorySink::new());
    telemetry::install(collector.clone());
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..SPANS {
                    let _s = telemetry::span("worker.unit");
                    telemetry::count("worker.units", 1);
                }
            });
        }
    });
    telemetry::uninstall();

    let events = collector.take();
    let spans: Vec<_> = events.iter().filter_map(|e| e.as_span()).collect();
    assert_eq!(spans.len(), THREADS * SPANS);
    // Ids are process-unique even across threads.
    let mut ids: Vec<u64> = spans.iter().map(|s| s.id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), THREADS * SPANS);
    assert_eq!(
        telemetry::global().snapshot().counter("worker.units"),
        (THREADS * SPANS) as u64
    );
}
