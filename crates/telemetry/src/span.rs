//! Hierarchical spans: RAII guards recording monotonic-clock durations.
//!
//! Each thread keeps the id of its innermost open span in a thread-local;
//! [`span`] parents the new span under it and restores it on drop, so
//! nesting falls out of ordinary scoping. Crossing a thread boundary (the
//! runtime's `WorkerPool` tasks) is explicit: capture [`current_span`] on
//! the submitting thread, then open a [`parent_scope`] on the worker
//! before running the task — spans opened inside the task then parent
//! under the submitting span even though they close on another thread.
//!
//! When telemetry is disabled ([`crate::enabled`] is false) a guard is
//! inert: no id is allocated, no clock is read, nothing is emitted.

use crate::event::{Event, SpanEvent};
use crate::sink;
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Process-unique identity of a span; `SpanId(0)` means "no span".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The "no enclosing span" sentinel.
    pub const NONE: SpanId = SpanId(0);

    /// True when this is a real span (non-zero id).
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT: Cell<u64> = const { Cell::new(0) };
}

/// The monotonic instant all `start_us` offsets are measured from.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Innermost open span on this thread ([`SpanId::NONE`] outside any span).
pub fn current_span() -> SpanId {
    SpanId(CURRENT.with(|c| c.get()))
}

/// Open a span named `name`, parented under this thread's current span.
/// The span closes (and its event is emitted) when the guard drops.
#[must_use = "a span measures the scope of its guard; dropping it immediately records nothing"]
pub fn span(name: &'static str) -> SpanGuard {
    if !sink::enabled() {
        return SpanGuard {
            name,
            id: 0,
            parent: 0,
            start: None,
            start_us: 0,
            fields: Vec::new(),
        };
    }
    let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
    let parent = CURRENT.with(|c| c.replace(id));
    SpanGuard {
        name,
        id,
        parent,
        start_us: epoch().elapsed().as_micros() as u64,
        start: Some(Instant::now()),
        fields: Vec::new(),
    }
}

/// RAII guard for an open span. See [`span`].
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    id: u64,
    parent: u64,
    /// `None` when telemetry was disabled at creation (inert guard).
    start: Option<Instant>,
    start_us: u64,
    fields: Vec<(String, f64)>,
}

impl SpanGuard {
    /// This span's id (pass into [`parent_scope`] on another thread to
    /// parent that thread's spans under this one). [`SpanId::NONE`] when
    /// telemetry is disabled.
    pub fn id(&self) -> SpanId {
        SpanId(self.id)
    }

    /// Attach a numeric attribute, recorded on the close event.
    pub fn field(&mut self, key: impl Into<String>, value: f64) {
        if self.start.is_some() {
            self.fields.push((key.into(), value));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        CURRENT.with(|c| c.set(self.parent));
        sink::emit(&Event::Span(SpanEvent {
            name: self.name.to_string(),
            id: self.id,
            parent: self.parent,
            start_us: self.start_us,
            dur_us: start.elapsed().as_micros() as u64,
            fields: std::mem::take(&mut self.fields),
        }));
    }
}

/// Adopt `parent` as this thread's current span until the guard drops
/// (restoring whatever was current before). This is how span parentage
/// crosses `WorkerPool` task boundaries.
#[must_use = "the parent scope lasts only as long as its guard"]
pub fn parent_scope(parent: SpanId) -> ParentScope {
    if !sink::enabled() {
        return ParentScope { prev: None };
    }
    ParentScope {
        prev: Some(CURRENT.with(|c| c.replace(parent.0))),
    }
}

/// RAII guard restoring the thread's previous current span. See
/// [`parent_scope`].
#[derive(Debug)]
pub struct ParentScope {
    prev: Option<u64>,
}

impl Drop for ParentScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev {
            CURRENT.with(|c| c.set(prev));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_inert() {
        assert!(!sink::enabled());
        let g = span("x");
        assert_eq!(g.id(), SpanId::NONE);
        assert_eq!(current_span(), SpanId::NONE);
        drop(g);
        assert_eq!(current_span(), SpanId::NONE);
    }

    #[test]
    fn span_id_sentinel() {
        assert!(!SpanId::NONE.is_some());
        assert!(SpanId(3).is_some());
    }
}
