//! Per-job event routing: tag the current thread with a route label and
//! fan events out to per-route sinks.
//!
//! A multi-tenant server interleaves work for many jobs on shared
//! threads, but each job wants its *own* progress feed. The global sink
//! slot is process-wide, so routing happens one level down: the server
//! wraps each work slice in a [`route`] guard naming the job, and
//! installs a [`RouterSink`] that forwards every event recorded while
//! that guard is live to the sink registered for that label. Events
//! emitted with no route set (or from threads the guard never touched,
//! e.g. pool workers) go to the router's fallback sink, so nothing is
//! silently dropped.
//!
//! ```
//! use std::sync::Arc;
//!
//! let job_feed = Arc::new(telemetry::MemorySink::new());
//! let router = Arc::new(telemetry::RouterSink::new());
//! router.add_route("job-1", job_feed.clone());
//! telemetry::install(router);
//!
//! {
//!     let _g = telemetry::route("job-1");
//!     let _s = telemetry::span("job.epoch"); // emits on drop → job_feed
//! }
//! {
//!     let _s = telemetry::span("job.epoch"); // no route → fallback (none)
//! }
//!
//! telemetry::uninstall();
//! assert_eq!(job_feed.len(), 1);
//! ```

use crate::event::Event;
use crate::sink::Sink;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

thread_local! {
    static ROUTE: RefCell<Option<Arc<str>>> = const { RefCell::new(None) };
}

/// RAII guard that labels the current thread's events with a route.
/// Restores the previous route (guards nest) on drop.
#[must_use = "the route is only set while the guard is alive"]
pub struct RouteGuard {
    prev: Option<Arc<str>>,
}

/// Label every event the current thread records — until the returned
/// guard drops — with `label`, for [`RouterSink`] dispatch.
pub fn route(label: &str) -> RouteGuard {
    let next: Arc<str> = Arc::from(label);
    let prev = ROUTE.with(|r| r.borrow_mut().replace(next));
    RouteGuard { prev }
}

/// The current thread's route label, if a [`route`] guard is live.
pub fn current_route() -> Option<Arc<str>> {
    ROUTE.with(|r| r.borrow().clone())
}

impl Drop for RouteGuard {
    fn drop(&mut self) {
        ROUTE.with(|r| *r.borrow_mut() = self.prev.take());
    }
}

/// Dispatches each event to the sink registered for the recording
/// thread's current route label; unrouted events go to the fallback
/// sink (if any).
///
/// Routes can be added and removed while the router is installed — a job
/// server registers a route at job admission and removes it at
/// completion without touching the global sink slot.
#[derive(Default)]
pub struct RouterSink {
    routes: RwLock<HashMap<String, Arc<dyn Sink>>>,
    fallback: Option<Arc<dyn Sink>>,
}

impl RouterSink {
    /// Router with no routes and no fallback (unrouted events dropped).
    pub fn new() -> RouterSink {
        RouterSink::default()
    }

    /// Router that sends unrouted events to `fallback`.
    pub fn with_fallback(fallback: Arc<dyn Sink>) -> RouterSink {
        RouterSink {
            routes: RwLock::new(HashMap::new()),
            fallback: Some(fallback),
        }
    }

    /// Register (or replace) the sink for `label`.
    pub fn add_route(&self, label: &str, sink: Arc<dyn Sink>) {
        self.routes.write().unwrap().insert(label.to_string(), sink);
    }

    /// Remove and return the sink for `label`.
    ///
    /// Synchronizes with in-flight [`Sink::record`] calls: dispatch holds
    /// the route-table read lock while delivering, so once the write lock
    /// here is acquired no further events can reach the removed sink —
    /// threads still holding the label fall back cleanly from the next
    /// event on.
    pub fn remove_route(&self, label: &str) -> Option<Arc<dyn Sink>> {
        self.routes.write().unwrap().remove(label)
    }

    /// Number of registered routes.
    pub fn len(&self) -> usize {
        self.routes.read().unwrap().len()
    }

    /// True when no routes are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for RouterSink {
    fn record(&self, event: &Event) {
        // Deliver while holding the read lock: `remove_route` takes the
        // write lock, so it cannot return while a routed delivery is in
        // flight — after it returns, the removed sink is guaranteed to
        // receive no further events even from threads still carrying the
        // label (they fall back from the next event on).
        if let Some(label) = current_route() {
            let routes = self.routes.read().unwrap();
            if let Some(sink) = routes.get(label.as_ref()) {
                sink.record(event);
                return;
            }
        }
        if let Some(fallback) = &self.fallback {
            fallback.record(event);
        }
    }

    fn flush(&self) {
        for sink in self.routes.read().unwrap().values() {
            sink.flush();
        }
        if let Some(fallback) = &self.fallback {
            fallback.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CountEvent;
    use crate::sink::MemorySink;

    fn count(name: &str) -> Event {
        Event::Count(CountEvent {
            name: name.into(),
            value: 1,
        })
    }

    #[test]
    fn events_follow_the_thread_route() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let fallback = Arc::new(MemorySink::new());
        let router = RouterSink::with_fallback(fallback.clone());
        router.add_route("a", a.clone());
        router.add_route("b", b.clone());

        router.record(&count("unrouted"));
        {
            let _g = route("a");
            router.record(&count("for-a"));
            {
                let _inner = route("b");
                router.record(&count("for-b"));
            }
            // Inner guard dropped: back on route "a".
            router.record(&count("for-a-again"));
        }
        router.record(&count("unrouted-again"));

        assert_eq!(a.len(), 2);
        assert_eq!(b.len(), 1);
        assert_eq!(fallback.len(), 2);
    }

    #[test]
    fn unknown_route_falls_back() {
        let fallback = Arc::new(MemorySink::new());
        let router = RouterSink::with_fallback(fallback.clone());
        let _g = route("nobody-registered-this");
        router.record(&count("x"));
        assert_eq!(fallback.len(), 1);
    }

    #[test]
    fn removing_a_route_redirects_to_fallback() {
        let a = Arc::new(MemorySink::new());
        let fallback = Arc::new(MemorySink::new());
        let router = RouterSink::with_fallback(fallback.clone());
        router.add_route("a", a.clone());
        let _g = route("a");
        router.record(&count("one"));
        router.remove_route("a");
        router.record(&count("two"));
        assert_eq!(a.len(), 1);
        assert_eq!(fallback.len(), 1);
        assert!(router.is_empty());
    }

    #[test]
    fn no_fallback_drops_unrouted_events() {
        let router = RouterSink::new();
        router.record(&count("dropped"));
        // Nothing to assert beyond "did not panic": the event is gone.
        assert!(router.is_empty());
    }

    #[test]
    fn remove_route_synchronizes_with_inflight_records() {
        // Emitters hammer the router on route labels that another thread
        // is concurrently adding and removing. Invariants: no panic, no
        // event lost (each lands in the route sink or the fallback), and
        // after remove_route returns, the removed sink's count is frozen.
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

        let fallback = Arc::new(MemorySink::new());
        let router = Arc::new(RouterSink::with_fallback(fallback.clone()));
        let stop = Arc::new(AtomicBool::new(false));
        let emitted = Arc::new(AtomicUsize::new(0));

        let emitters: Vec<_> = (0..4)
            .map(|i| {
                let router = Arc::clone(&router);
                let stop = Arc::clone(&stop);
                let emitted = Arc::clone(&emitted);
                std::thread::spawn(move || {
                    let label = format!("job-{}", i % 2);
                    let _g = route(&label);
                    while !stop.load(Ordering::Relaxed) {
                        router.record(&count("e"));
                        emitted.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();

        // Churn the route table while emitters run, checking the frozen-
        // after-remove guarantee on every cycle.
        let mut removed_total = 0usize;
        for cycle in 0..200 {
            let label = format!("job-{}", cycle % 2);
            let sink = Arc::new(MemorySink::new());
            router.add_route(&label, sink.clone());
            std::thread::yield_now();
            router.remove_route(&label);
            let frozen = sink.len();
            std::thread::yield_now();
            assert_eq!(
                sink.len(),
                frozen,
                "sink received events after remove_route returned"
            );
            removed_total += frozen;
        }

        stop.store(true, Ordering::Relaxed);
        for t in emitters {
            t.join().unwrap();
        }
        // Conservation: every emitted event reached exactly one sink.
        assert_eq!(
            emitted.load(Ordering::Relaxed),
            fallback.len() + removed_total
        );
    }

    #[test]
    fn routes_are_per_thread() {
        let a = Arc::new(MemorySink::new());
        let router = Arc::new(RouterSink::new());
        router.add_route("a", a.clone());
        let _g = route("a");
        let router2 = Arc::clone(&router);
        std::thread::spawn(move || {
            // Fresh thread: no route, no fallback → dropped.
            router2.record(&count("other-thread"));
        })
        .join()
        .unwrap();
        router.record(&count("this-thread"));
        assert_eq!(a.len(), 1);
    }
}
