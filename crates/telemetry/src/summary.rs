//! End-of-run aggregation of a recorded event stream.
//!
//! [`Summary::from_events`] folds the span events collected by a
//! [`crate::MemorySink`] into one row per span name: call count, total
//! inclusive time, and total *self* time (inclusive minus the inclusive
//! time of direct children — the share actually spent at that level).
//! [`Summary::render`] formats the rows as a fixed-width text table for
//! the bench bins' end-of-run report.

use crate::event::Event;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Aggregate timing for one span name.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SpanRow {
    /// Span name.
    pub name: String,
    /// Number of spans closed under this name.
    pub count: u64,
    /// Total inclusive duration, microseconds.
    pub total_us: u64,
    /// Total self (exclusive) duration, microseconds. Children that ran
    /// concurrently with their parent can push a row's self time to 0 but
    /// never below it.
    pub self_us: u64,
    /// Largest single inclusive duration, microseconds.
    pub max_us: u64,
}

impl SpanRow {
    /// Mean inclusive duration in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_us as f64 / self.count as f64
        }
    }
}

/// Per-name span aggregates for one run, sorted by total time descending.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Summary {
    /// One row per span name, heaviest first.
    pub spans: Vec<SpanRow>,
}

impl Summary {
    /// Aggregate the span events in `events` (count events are ignored).
    pub fn from_events(events: &[Event]) -> Summary {
        // Pass 1: inclusive time charged to each span id's parent, so
        // pass 2 can subtract children without materialising the tree.
        let mut child_us: HashMap<u64, u64> = HashMap::new();
        for span in events.iter().filter_map(|e| e.as_span()) {
            if span.parent != 0 {
                *child_us.entry(span.parent).or_insert(0) += span.dur_us;
            }
        }
        let mut rows: HashMap<&str, SpanRow> = HashMap::new();
        for span in events.iter().filter_map(|e| e.as_span()) {
            let row = rows.entry(span.name.as_str()).or_insert_with(|| SpanRow {
                name: span.name.clone(),
                ..SpanRow::default()
            });
            row.count += 1;
            row.total_us += span.dur_us;
            row.max_us = row.max_us.max(span.dur_us);
            let children = child_us.get(&span.id).copied().unwrap_or(0);
            row.self_us += span.dur_us.saturating_sub(children);
        }
        let mut spans: Vec<SpanRow> = rows.into_values().collect();
        spans.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.name.cmp(&b.name)));
        Summary { spans }
    }

    /// Row for `name`, if any span closed under it.
    pub fn row(&self, name: &str) -> Option<&SpanRow> {
        self.spans.iter().find(|r| r.name == name)
    }

    /// Render as a fixed-width text table (empty string when no spans).
    pub fn render(&self) -> String {
        if self.spans.is_empty() {
            return String::new();
        }
        let name_w = self
            .spans
            .iter()
            .map(|r| r.name.len())
            .max()
            .unwrap_or(4)
            .max("span".len());
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>10}  {:>10}\n",
            "span", "count", "total_ms", "self_ms", "mean_us", "max_us"
        ));
        for r in &self.spans {
            out.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>12.3}  {:>12.3}  {:>10.1}  {:>10}\n",
                r.name,
                r.count,
                r.total_us as f64 / 1e3,
                r.self_us as f64 / 1e3,
                r.mean_us(),
                r.max_us
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::SpanEvent;

    fn span(name: &str, id: u64, parent: u64, dur_us: u64) -> Event {
        Event::Span(SpanEvent {
            name: name.into(),
            id,
            parent,
            start_us: 0,
            dur_us,
            fields: Vec::new(),
        })
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let events = vec![
            span("child", 2, 1, 30),
            span("child", 3, 1, 20),
            span("grandchild", 4, 2, 10),
            span("root", 1, 0, 100),
        ];
        let s = Summary::from_events(&events);
        let root = s.row("root").unwrap();
        assert_eq!(root.count, 1);
        assert_eq!(root.total_us, 100);
        assert_eq!(root.self_us, 50); // 100 - (30 + 20); grandchild charges child, not root
        let child = s.row("child").unwrap();
        assert_eq!(child.total_us, 50);
        assert_eq!(child.self_us, 40); // 50 - 10
        assert_eq!(child.max_us, 30);
    }

    #[test]
    fn concurrent_children_saturate_at_zero() {
        // Parallel children's summed time can exceed the parent's wall time.
        let events = vec![
            span("task", 2, 1, 80),
            span("task", 3, 1, 90),
            span("map", 1, 0, 100),
        ];
        let s = Summary::from_events(&events);
        assert_eq!(s.row("map").unwrap().self_us, 0);
    }

    #[test]
    fn rows_sorted_heaviest_first_and_render_is_stable() {
        let events = vec![span("small", 1, 0, 5), span("big", 2, 0, 500)];
        let s = Summary::from_events(&events);
        assert_eq!(s.spans[0].name, "big");
        let text = s.render();
        assert!(text.starts_with("span"));
        assert_eq!(text.lines().count(), 3);
        assert!(Summary::default().render().is_empty());
    }
}
