//! The wire format of the JSON-lines event stream.
//!
//! One [`Event`] per line, externally tagged (`{"Span": {...}}`), written
//! by [`crate::JsonLinesSink`] and re-readable with [`Event::from_json`] —
//! the round trip is exact for every field.

use serde::{Deserialize, Serialize};

/// A closed span: name, identity, parentage, and monotonic-clock timing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Span name (static instrumentation-site label).
    pub name: String,
    /// Process-unique span id (never 0).
    pub id: u64,
    /// Parent span id; 0 = root (no enclosing span).
    pub parent: u64,
    /// Start offset in microseconds since the process telemetry epoch.
    pub start_us: u64,
    /// Wall-clock duration in microseconds (monotonic clock).
    pub dur_us: u64,
    /// Optional numeric attributes attached at the instrumentation site.
    pub fields: Vec<(String, f64)>,
}

/// A counter observation (emitted at end-of-run so trace files are
/// self-contained; live increments stay in the metrics registry).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountEvent {
    /// Counter name.
    pub name: String,
    /// Counter value at emission time.
    pub value: u64,
}

/// One telemetry event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A closed span.
    Span(SpanEvent),
    /// A counter total.
    Count(CountEvent),
}

impl Event {
    /// Serialise to one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("telemetry events always serialise")
    }

    /// Parse an event back from a JSON line.
    pub fn from_json(line: &str) -> Result<Event, serde_json::Error> {
        serde_json::from_str(line)
    }

    /// The span payload, when this is a span event.
    pub fn as_span(&self) -> Option<&SpanEvent> {
        match self {
            Event::Span(s) => Some(s),
            Event::Count(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_event_round_trips() {
        let e = Event::Span(SpanEvent {
            name: "engine.evaluate".into(),
            id: 7,
            parent: 3,
            start_us: 1234,
            dur_us: 567,
            fields: vec![("epoch".into(), 2.0), ("reward".into(), -0.25)],
        });
        let line = e.to_json();
        assert!(!line.contains('\n'), "one event must be one line");
        assert_eq!(Event::from_json(&line).unwrap(), e);
    }

    #[test]
    fn count_event_round_trips() {
        let e = Event::Count(CountEvent {
            name: "fpe.gate.accept".into(),
            value: u64::MAX - 1,
        });
        assert_eq!(Event::from_json(&e.to_json()).unwrap(), e);
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(Event::from_json("{not json").is_err());
        assert!(Event::from_json("{\"Other\": 1}").is_err());
    }
}
