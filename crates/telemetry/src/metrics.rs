//! Named counters and log-scale histograms.
//!
//! A [`Registry`] is a concurrent map from metric name to metric. Metrics
//! are plain atomics, so recording is lock-free once a handle has been
//! resolved; resolving a name takes a read lock (write lock only on first
//! use of a name). Totals are exact under any interleaving: `count` and
//! `sum` are single `fetch_add`s, never read-modify-write races.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A monotonic event counter.
///
/// [`Counter::set`] exists for *exporters* that mirror an externally
/// accumulated total (e.g. the score cache's per-shard hit counts) into a
/// registry; instrumentation sites should only ever [`Counter::add`].
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrite with an externally accumulated total.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: bucket `i > 0` counts values in
/// `[2^(i-1), 2^i)`, bucket 0 counts zeros, and the last bucket absorbs
/// everything `>= 2^63`.
pub const N_BUCKETS: usize = 65;

/// A log-scale (power-of-two bucket) histogram of `u64` samples.
///
/// `count` and `sum` are exact; quantiles are approximate (resolved to the
/// upper bound of the containing bucket, clamped to the observed max).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// Upper bound (inclusive) of bucket `i`.
fn bucket_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Snapshot the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            let target = ((count as f64) * q).ceil() as u64;
            let mut seen = 0u64;
            for (i, &b) in buckets.iter().enumerate() {
                seen += b;
                if seen >= target {
                    return bucket_bound(i).min(max);
                }
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max,
            p50: quantile(0.5),
            p90: quantile(0.9),
            p99: quantile(0.99),
        }
    }
}

/// Point-in-time view of a [`Histogram`], serialisable into artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Approximate median (bucket upper bound).
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A concurrent registry of named counters and histograms.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// New empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resolve (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self.counters.read().unwrap().get(name) {
            return Arc::clone(c);
        }
        Arc::clone(
            self.counters
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Resolve (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self.histograms.read().unwrap().get(name) {
            return Arc::clone(h);
        }
        Arc::clone(
            self.histograms
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_default(),
        )
    }

    /// Snapshot every metric, sorted by name (stable output ordering).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let mut counters: Vec<(String, u64)> = self
            .counters
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = self
            .histograms
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        RegistrySnapshot {
            counters,
            histograms,
        }
    }

    /// Drop every metric (fresh run boundaries in long-lived processes).
    pub fn clear(&self) {
        self.counters.write().unwrap().clear();
        self.histograms.write().unwrap().clear();
    }
}

/// Point-in-time view of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct RegistrySnapshot {
    /// `(name, value)` for every counter, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// `(name, snapshot)` for every histogram, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl RegistrySnapshot {
    /// Value of the named counter, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Snapshot of the named histogram, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let r = Registry::new();
        r.counter("a").add(3);
        r.counter("a").inc();
        assert_eq!(r.snapshot().counter("a"), 4);
        assert_eq!(r.snapshot().counter("missing"), 0);
    }

    #[test]
    fn histogram_buckets_are_log_scale() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(0), 0);
        assert_eq!(bucket_bound(3), 7);
    }

    #[test]
    fn histogram_exact_count_sum_and_sane_quantiles() {
        let h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!(s.p50 >= 500 && s.p50 <= 1000, "p50 {}", s.p50);
        assert!(s.p90 >= 900, "p90 {}", s.p90);
        assert!(s.p99 <= s.max);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s, HistogramSnapshot::default());
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn all_zero_histogram_snapshot() {
        // Zero is a real sample (bucket 0), not an empty histogram: count
        // and quantiles must reflect it, min must be 0 by observation.
        let h = Histogram::default();
        for _ in 0..5 {
            h.record(0);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!((s.p50, s.p90, s.p99), (0, 0, 0));
    }

    #[test]
    fn single_sample_histogram_snapshot() {
        let h = Histogram::default();
        h.record(42);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 42);
        assert_eq!(s.min, 42);
        assert_eq!(s.max, 42);
        // Quantiles clamp to the observed max, not the bucket bound (63).
        assert_eq!((s.p50, s.p90, s.p99), (42, 42, 42));
    }

    #[test]
    fn empty_histogram_min_is_zero_not_sentinel() {
        // The internal min register starts at u64::MAX; the snapshot must
        // never leak that sentinel.
        let s = Histogram::default().snapshot();
        assert_eq!(s.min, 0);
        assert_eq!(
            (s.p50, s.p90, s.p99),
            (0, 0, 0),
            "quantiles defined at count==0"
        );
    }

    #[test]
    fn snapshot_serialization_is_insertion_order_independent() {
        // Same metrics registered in opposite orders must serialise to
        // identical bytes — artifact diffing depends on it.
        let mk = |names: &[&str]| {
            let r = Registry::new();
            for n in names {
                r.counter(n).add(n.len() as u64);
                r.histogram(&format!("h.{n}")).record(7);
            }
            serde_json::to_string(&r.snapshot()).unwrap()
        };
        assert_eq!(
            mk(&["alpha", "beta", "gamma"]),
            mk(&["gamma", "beta", "alpha"])
        );
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        r.histogram("m").record(1);
        let s = r.snapshot();
        assert_eq!(s.counters[0].0, "a");
        assert_eq!(s.counters[1].0, "z");
        assert!(s.histogram("m").is_some());
    }

    #[test]
    fn clear_empties_registry() {
        let r = Registry::new();
        r.counter("a").inc();
        r.clear();
        assert!(r.snapshot().counters.is_empty());
    }
}
