//! Event sinks and the global sink slot.
//!
//! Telemetry is off by default: the global slot is empty, [`enabled`]
//! reads one relaxed atomic, and every instrumentation macro/function
//! bails out before touching the clock. [`install`]ing a sink flips the
//! flag; [`uninstall`] flips it back and returns the sink so callers can
//! drain or flush it.

use crate::event::Event;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Receives every telemetry event while installed.
pub trait Sink: Send + Sync {
    /// Record one event. Called from arbitrary threads.
    fn record(&self, event: &Event);
    /// Flush buffered output (default: no-op).
    fn flush(&self) {}
}

/// Discards everything (useful to measure instrumentation overhead with
/// the emission path "on" but no I/O).
#[derive(Debug, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn record(&self, _event: &Event) {}
}

/// Collects events in memory; the end-of-run summary is aggregated from
/// its contents.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<Event>>,
}

impl MemorySink {
    /// New empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copy of everything recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap().clone()
    }

    /// Drain, leaving the sink empty.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap())
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.lock().unwrap().push(event.clone());
    }
}

/// Streams events as JSON lines to a writer (typically a file opened by
/// a bench bin's `--trace-out` flag, or a live per-job progress feed).
///
/// By default every event is flushed through to the underlying writer as
/// soon as its line is written, so consumers tailing the feed see events
/// immediately instead of whenever an OS-sized buffer happens to fill.
/// Batch producers (trace files with millions of events) can amortize
/// the flush with [`JsonLinesSink::with_flush_every`].
pub struct JsonLinesSink {
    out: Mutex<JsonLinesInner>,
    /// Flush after this many recorded events; 0 = only on explicit
    /// [`Sink::flush`] (or the writer's own drop).
    flush_every: usize,
}

struct JsonLinesInner {
    out: Box<dyn Write + Send>,
    pending: usize,
}

impl JsonLinesSink {
    /// Create (truncate) `path` and stream events to it.
    pub fn create(path: &std::path::Path) -> std::io::Result<JsonLinesSink> {
        let file = std::fs::File::create(path)?;
        Ok(Self::new(Box::new(std::io::BufWriter::new(file))))
    }

    /// Stream events to an arbitrary writer, flushing after every event.
    pub fn new(out: Box<dyn Write + Send>) -> JsonLinesSink {
        JsonLinesSink {
            out: Mutex::new(JsonLinesInner { out, pending: 0 }),
            flush_every: 1,
        }
    }

    /// Flush after every `n` recorded events instead of every event.
    /// `n = 0` disables interval flushing entirely (explicit
    /// [`Sink::flush`] calls only) — the right choice for high-volume
    /// trace files where per-line flushing would dominate.
    pub fn with_flush_every(mut self, n: usize) -> JsonLinesSink {
        self.flush_every = n;
        self
    }
}

impl Sink for JsonLinesSink {
    fn record(&self, event: &Event) {
        let line = event.to_json();
        let mut inner = self.out.lock().unwrap();
        // Trace output is best-effort: losing a line (disk full) must not
        // poison the run being traced.
        let _ = writeln!(inner.out, "{line}");
        inner.pending += 1;
        if self.flush_every > 0 && inner.pending >= self.flush_every {
            let _ = inner.out.flush();
            inner.pending = 0;
        }
    }

    fn flush(&self) {
        let mut inner = self.out.lock().unwrap();
        let _ = inner.out.flush();
        inner.pending = 0;
    }
}

/// Broadcasts every event to several sinks (e.g. memory + trace file).
pub struct FanoutSink(pub Vec<Arc<dyn Sink>>);

impl Sink for FanoutSink {
    fn record(&self, event: &Event) {
        for sink in &self.0 {
            sink.record(event);
        }
    }

    fn flush(&self) {
        for sink in &self.0 {
            sink.flush();
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// True when a sink is installed. The *only* check on the disabled hot
/// path — one relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install `sink` as the process-global event sink and enable telemetry.
/// Replaces (and returns) any previously installed sink.
pub fn install(sink: Arc<dyn Sink>) -> Option<Arc<dyn Sink>> {
    let prev = SINK.write().unwrap().replace(sink);
    ENABLED.store(true, Ordering::SeqCst);
    prev
}

/// Disable telemetry and return the previously installed sink (if any).
pub fn uninstall() -> Option<Arc<dyn Sink>> {
    ENABLED.store(false, Ordering::SeqCst);
    SINK.write().unwrap().take()
}

/// Emit one event to the installed sink (no-op when disabled).
pub fn emit(event: &Event) {
    if !enabled() {
        return;
    }
    if let Some(sink) = SINK.read().unwrap().as_ref() {
        sink.record(event);
    }
}

/// Flush the installed sink's buffered output.
pub fn flush() {
    if let Some(sink) = SINK.read().unwrap().as_ref() {
        sink.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CountEvent;

    fn count(name: &str, value: u64) -> Event {
        Event::Count(CountEvent {
            name: name.into(),
            value,
        })
    }

    #[test]
    fn memory_sink_collects_and_drains() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.record(&count("a", 1));
        sink.record(&count("b", 2));
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let sink = JsonLinesSink::new(Box::new(Shared(Arc::clone(&buf))));
        sink.record(&count("x", 1));
        sink.record(&count("y", 2));
        sink.flush();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(Event::from_json(lines[0]).unwrap(), count("x", 1));
        assert_eq!(Event::from_json(lines[1]).unwrap(), count("y", 2));
    }

    #[test]
    fn json_lines_sink_flushes_every_event_by_default() {
        use std::sync::atomic::AtomicUsize;
        struct FlushCounter(Arc<AtomicUsize>);
        impl Write for FlushCounter {
            fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
                Ok(data.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }
        let flushes = Arc::new(AtomicUsize::new(0));
        let sink = JsonLinesSink::new(Box::new(FlushCounter(Arc::clone(&flushes))));
        sink.record(&count("a", 1));
        sink.record(&count("b", 2));
        assert_eq!(flushes.load(Ordering::SeqCst), 2, "per-event flushing");

        let flushes = Arc::new(AtomicUsize::new(0));
        let sink =
            JsonLinesSink::new(Box::new(FlushCounter(Arc::clone(&flushes)))).with_flush_every(3);
        for i in 0..7 {
            sink.record(&count("x", i));
        }
        assert_eq!(flushes.load(Ordering::SeqCst), 2, "bounded interval");
        sink.flush();
        assert_eq!(flushes.load(Ordering::SeqCst), 3, "explicit flush");

        let flushes = Arc::new(AtomicUsize::new(0));
        let sink =
            JsonLinesSink::new(Box::new(FlushCounter(Arc::clone(&flushes)))).with_flush_every(0);
        for i in 0..10 {
            sink.record(&count("y", i));
        }
        assert_eq!(flushes.load(Ordering::SeqCst), 0, "interval disabled");
    }

    #[test]
    fn fanout_broadcasts() {
        let a = Arc::new(MemorySink::new());
        let b = Arc::new(MemorySink::new());
        let fan = FanoutSink(vec![a.clone(), b.clone()]);
        fan.record(&count("c", 3));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }
}
