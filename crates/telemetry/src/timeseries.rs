//! Fixed-capacity in-process time series for trend queries.
//!
//! Counters and histograms answer "how much, in total" — they cannot
//! answer "is the eval rate falling" or "how fast is tenant-b's budget
//! burning down" without end-of-run diffing. [`TimeSeriesStore`] keeps a
//! bounded ring buffer of `(tick, value)` points per named series, fed at
//! epoch boundaries by whoever owns the tick clock (the serve scheduler
//! uses `epochs_completed`). Old points fall off the front once a series
//! reaches capacity, so memory stays bounded no matter how long a job
//! runs.
//!
//! Ticks are caller-supplied logical time, never wall-clock reads — the
//! store stays deterministic when fed deterministic values.
//!
//! ```
//! let store = telemetry::TimeSeriesStore::new(4);
//! for tick in 0..6 {
//!     store.record("job-1.best_score", tick, 0.5 + tick as f64 / 100.0);
//! }
//! let points = store.get("job-1.best_score").unwrap().points();
//! assert_eq!(points.len(), 4); // capacity bounds retention
//! assert_eq!(points.first().unwrap().tick, 2); // oldest evicted first
//! ```

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, RwLock};

/// One observation: a logical tick (epoch number, slice number — never
/// wall-clock) and the value sampled there.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Caller-supplied logical time.
    pub tick: u64,
    /// Sampled value.
    pub value: f64,
}

/// A single bounded ring buffer of [`TimePoint`]s.
#[derive(Debug)]
pub struct TimeSeries {
    cap: usize,
    points: Mutex<VecDeque<TimePoint>>,
}

impl TimeSeries {
    /// New empty series retaining at most `cap` points (`cap` ≥ 1).
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            points: Mutex::new(VecDeque::new()),
        }
    }

    /// Append a point, evicting the oldest if at capacity.
    pub fn push(&self, tick: u64, value: f64) {
        let mut points = self.points.lock().unwrap();
        if points.len() == self.cap {
            points.pop_front();
        }
        points.push_back(TimePoint { tick, value });
    }

    /// All retained points, oldest first.
    pub fn points(&self) -> Vec<TimePoint> {
        self.points.lock().unwrap().iter().copied().collect()
    }

    /// The most recent point, if any.
    pub fn last(&self) -> Option<TimePoint> {
        self.points.lock().unwrap().back().copied()
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.lock().unwrap().len()
    }

    /// True when no point has been recorded (or all were evicted — which
    /// cannot happen, eviction only makes room for a newer point).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Average change in value per tick across the retained window:
    /// `(last.value - first.value) / (last.tick - first.tick)`. `None`
    /// with fewer than two points or a zero tick span.
    pub fn rate(&self) -> Option<f64> {
        let points = self.points.lock().unwrap();
        let (first, last) = (points.front()?, points.back()?);
        let span = last.tick.checked_sub(first.tick)?;
        if span == 0 {
            return None;
        }
        Some((last.value - first.value) / span as f64)
    }
}

/// A concurrent map of named [`TimeSeries`], all sharing one capacity.
#[derive(Debug)]
pub struct TimeSeriesStore {
    cap: usize,
    series: RwLock<HashMap<String, Arc<TimeSeries>>>,
}

impl TimeSeriesStore {
    /// New store whose series each retain at most `cap` points.
    pub fn new(cap: usize) -> Self {
        Self {
            cap: cap.max(1),
            series: RwLock::new(HashMap::new()),
        }
    }

    /// Resolve (creating on first use) the series named `name`. Callers
    /// on a hot path can hold the returned `Arc` and push directly.
    pub fn series(&self, name: &str) -> Arc<TimeSeries> {
        if let Some(s) = self.series.read().unwrap().get(name) {
            return Arc::clone(s);
        }
        Arc::clone(
            self.series
                .write()
                .unwrap()
                .entry(name.to_string())
                .or_insert_with(|| Arc::new(TimeSeries::new(self.cap))),
        )
    }

    /// Append `(tick, value)` to the series named `name`.
    pub fn record(&self, name: &str, tick: u64, value: f64) {
        self.series(name).push(tick, value);
    }

    /// The series named `name`, if it exists (does not create).
    pub fn get(&self, name: &str) -> Option<Arc<TimeSeries>> {
        self.series.read().unwrap().get(name).cloned()
    }

    /// All series names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.series.read().unwrap().keys().cloned().collect();
        names.sort();
        names
    }

    /// `(name, points)` for every series, sorted by name — deterministic
    /// to serialise when fed deterministic values.
    pub fn snapshot(&self) -> Vec<(String, Vec<TimePoint>)> {
        let mut out: Vec<(String, Vec<TimePoint>)> = self
            .series
            .read()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.points()))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Drop every series.
    pub fn clear(&self) {
        self.series.write().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest() {
        let s = TimeSeries::new(3);
        for tick in 0..5 {
            s.push(tick, tick as f64 * 10.0);
        }
        let points = s.points();
        assert_eq!(points.len(), 3);
        assert_eq!(
            points[0],
            TimePoint {
                tick: 2,
                value: 20.0
            }
        );
        assert_eq!(
            points[2],
            TimePoint {
                tick: 4,
                value: 40.0
            }
        );
        assert_eq!(s.last().unwrap().tick, 4);
    }

    #[test]
    fn rate_over_window() {
        let s = TimeSeries::new(10);
        assert!(s.rate().is_none());
        s.push(0, 100.0);
        assert!(s.rate().is_none(), "one point has no rate");
        s.push(4, 80.0);
        assert_eq!(s.rate(), Some(-5.0), "burn-down of 20 over 4 ticks");
        // Non-monotone ticks (resume replays an earlier epoch number)
        // must not panic — checked_sub yields None.
        let s2 = TimeSeries::new(10);
        s2.push(5, 1.0);
        s2.push(2, 2.0);
        assert!(s2.rate().is_none());
    }

    #[test]
    fn store_snapshot_sorted_and_isolated() {
        let store = TimeSeriesStore::new(8);
        store.record("z.rate", 1, 3.0);
        store.record("a.rate", 1, 1.0);
        store.record("a.rate", 2, 2.0);
        assert_eq!(
            store.names(),
            vec!["a.rate".to_string(), "z.rate".to_string()]
        );
        let snap = store.snapshot();
        assert_eq!(snap[0].0, "a.rate");
        assert_eq!(snap[0].1.len(), 2);
        assert_eq!(snap[1].1.len(), 1);
        assert!(store.get("missing").is_none());
        store.clear();
        assert!(store.names().is_empty());
    }

    #[test]
    fn capacity_floor_is_one() {
        let s = TimeSeries::new(0);
        s.push(0, 1.0);
        s.push(1, 2.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.last().unwrap().value, 2.0);
    }

    #[test]
    fn concurrent_pushes_retain_capacity() {
        let store = Arc::new(TimeSeriesStore::new(16));
        let threads: Vec<_> = (0..4)
            .map(|i| {
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    for tick in 0..100u64 {
                        store.record(&format!("t{i}"), tick, tick as f64);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        for i in 0..4 {
            let s = store.get(&format!("t{i}")).unwrap();
            assert_eq!(s.len(), 16);
            assert_eq!(s.last().unwrap().tick, 99);
        }
    }
}
