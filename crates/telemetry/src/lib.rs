//! Structured tracing, metrics, and per-phase profiling for the E-AFE
//! evaluation runtime.
//!
//! Three pieces, designed to stay out of the way until switched on:
//!
//! - **Spans** ([`span`], [`SpanGuard`]): RAII guards that record
//!   monotonic-clock durations with hierarchical parentage, including
//!   across `runtime::WorkerPool` task boundaries via [`current_span`] +
//!   [`parent_scope`].
//! - **Metrics** ([`global`], [`Registry`]): named monotonic [`Counter`]s
//!   and log-scale [`Histogram`]s with exact totals, snapshotted into the
//!   bench artifact envelope.
//! - **Sinks** ([`install`], [`Sink`]): a process-global consumer of the
//!   [`Event`] stream — [`MemorySink`] for the end-of-run [`Summary`],
//!   [`JsonLinesSink`] for `--trace-out` files and live progress feeds,
//!   [`FanoutSink`] for both, and [`RouterSink`] + [`route`] to split one
//!   multi-tenant process's events into per-job feeds.
//!
//! # Zero cost when disabled
//!
//! All instrumentation funnels through [`enabled`], one relaxed atomic
//! load. With no sink installed, [`span`] allocates no id and never reads
//! the clock, and [`count`]/[`record`] return immediately — verified by
//! the crate's overhead smoke test.
//!
//! # Typical use
//!
//! ```
//! use std::sync::Arc;
//!
//! let collector = Arc::new(telemetry::MemorySink::new());
//! telemetry::install(collector.clone());
//!
//! {
//!     let mut s = telemetry::span("engine.epoch");
//!     s.field("epoch", 0.0);
//!     telemetry::count("evals", 3);
//!     telemetry::record("queue_us", 12);
//! }
//!
//! telemetry::uninstall();
//! let summary = telemetry::Summary::from_events(&collector.events());
//! assert_eq!(summary.row("engine.epoch").unwrap().count, 1);
//! assert_eq!(telemetry::global().snapshot().counter("evals"), 3);
//! ```

#![warn(missing_docs)]

mod event;
mod metrics;
mod route;
mod scoped;
mod sink;
mod span;
mod summary;
mod timeseries;

pub use event::{CountEvent, Event, SpanEvent};
pub use metrics::{Counter, Histogram, HistogramSnapshot, Registry, RegistrySnapshot, N_BUCKETS};
pub use route::{current_route, route, RouteGuard, RouterSink};
pub use scoped::{LabelSet, Scope, ScopedRegistry, ScopedSnapshot};
pub use sink::{
    emit, enabled, flush, install, uninstall, FanoutSink, JsonLinesSink, MemorySink, NullSink, Sink,
};
pub use span::{current_span, parent_scope, span, ParentScope, SpanGuard, SpanId};
pub use summary::{SpanRow, Summary};
pub use timeseries::{TimePoint, TimeSeries, TimeSeriesStore};

use std::sync::OnceLock;

/// The process-global metrics registry.
///
/// Shared by every instrumented crate; bench bins snapshot it at
/// end-of-run. Unlike the event stream it accumulates even while no sink
/// is installed *if* callers bypass the [`count`]/[`record`] helpers and
/// hold metric handles directly — the helpers themselves are gated on
/// [`enabled`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Add `n` to the global counter `name` (no-op while telemetry is
/// disabled).
#[inline]
pub fn count(name: &str, n: u64) {
    if enabled() {
        global().counter(name).add(n);
    }
}

/// Record one sample into the global histogram `name` (no-op while
/// telemetry is disabled).
#[inline]
pub fn record(name: &str, v: u64) {
    if enabled() {
        global().histogram(name).record(v);
    }
}
